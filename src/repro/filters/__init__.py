"""Probabilistic membership filters used inside the simulated enclave."""

from repro.filters.bloom import BloomFilter, optimal_num_hashes, required_bits

__all__ = ["BloomFilter", "optimal_num_hashes", "required_bits"]
