"""Bloom filters (Sec. 4.1.2).

The BF pruning technique builds one bloom filter per candidate ball over the
canonical encodings of the ball center's 2-label binary trees, transmits it
into the enclave, and tests the query's encodings against it.  The paper
sizes filters by Eq. 1: ``m = -n ln p / (ln 2)^2`` with the hash count
``m/n * ln 2``; both formulas are implemented here and exercised by the
experiments (default setting: n = 10K trees, p = 0.3 -> m = 25K bits,
"smaller than 4KB", Sec. 5).
"""

from __future__ import annotations

import hashlib
import math


def required_bits(num_items: int, false_positive_rate: float) -> int:
    """Eq. 1: the bit count achieving ``false_positive_rate`` for
    ``num_items`` insertions with the optimal hash count."""
    if num_items < 1:
        raise ValueError("num_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    return max(1, math.ceil(-num_items * math.log(false_positive_rate)
                            / (math.log(2) ** 2)))


def optimal_num_hashes(num_bits: int, num_items: int) -> int:
    """``m/n * ln 2``, clamped to at least one hash."""
    if num_bits < 1 or num_items < 1:
        raise ValueError("num_bits and num_items must be positive")
    return max(1, round(num_bits / num_items * math.log(2)))


class BloomFilter:
    """A classic bloom filter over non-negative integer items.

    Double hashing: ``h_i(x) = h1(x) + i * h2(x) mod m`` with h1/h2 derived
    from one SHA-256 digest, so membership is deterministic across processes
    (the filter is built outside the enclave and tested inside it).
    """

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    @classmethod
    def for_capacity(cls, num_items: int,
                     false_positive_rate: float) -> "BloomFilter":
        """Size by Eq. 1 for the expected insertion count."""
        m = required_bits(num_items, false_positive_rate)
        return cls(m, optimal_num_hashes(m, num_items))

    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def count(self) -> int:
        """Number of (not necessarily distinct) insertions."""
        return self._count

    def size_bytes(self) -> int:
        return len(self._bits)

    def _positions(self, item: int) -> list[int]:
        if item < 0:
            raise ValueError("items must be non-negative integers")
        digest = hashlib.sha256(item.to_bytes((item.bit_length() + 8) // 8,
                                              "big")).digest()
        h1 = int.from_bytes(digest[:16], "big")
        h2 = int.from_bytes(digest[16:], "big") | 1
        return [(h1 + i * h2) % self._num_bits
                for i in range(self._num_hashes)]

    def add(self, item: int) -> None:
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def update(self, items) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: int) -> bool:
        return all(self._bits[pos // 8] & (1 << (pos % 8))
                   for pos in self._positions(item))

    def expected_false_positive_rate(self) -> float:
        """``(1 - e^(-kn/m))^k`` for the current fill."""
        if self._count == 0:
            return 0.0
        k, n, m = self._num_hashes, self._count, self._num_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Wire format: header (m, k, count) + bit array; what crosses the
        enclave boundary and is metered by the EPC accounting."""
        header = (self._num_bits.to_bytes(8, "big")
                  + self._num_hashes.to_bytes(4, "big")
                  + self._count.to_bytes(8, "big"))
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        if len(blob) < 20:
            raise ValueError("truncated bloom filter blob")
        num_bits = int.from_bytes(blob[:8], "big")
        num_hashes = int.from_bytes(blob[8:12], "big")
        count = int.from_bytes(blob[12:20], "big")
        filt = cls(num_bits, num_hashes)
        body = blob[20:]
        if len(body) != len(filt._bits):
            raise ValueError("bloom filter body length mismatch")
        filt._bits = bytearray(body)
        filt._count = count
        return filt
