"""Edge-labeled graphs via the paper's footnote-2 transformation.

Footnote 2: some works also require the labels of edges ``(u, v)`` and
``(H(u), H(v))`` to agree; "it can be efficiently handled by transforming
each edge (u, v) into an intermediate vertex with (u, v)'s edge label".

This module implements exactly that reduction so the whole framework
(candidate enumeration, verification, pruning, retrieval) supports
edge-labeled LGPQs without any change: an edge ``u --l--> v`` becomes
``u -> m -> v`` where ``m`` is a fresh vertex labeled ``("edge", l)``.
Matches of the transformed query in the transformed graph are in bijection
with edge-label-respecting matches of the original (each intermediate
vertex can only map to an intermediate vertex of the same edge label, and
its two incident edges pin the endpoints).

Note: transformed distances double, so a query of original diameter ``d``
has transformed diameter ``2d`` -- callers must index balls accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.query import Query, Semantics

#: Tag marking intermediate vertices; a tuple so it cannot collide with
#: ordinary string/int vertex labels.
EDGE_TAG = "edge"


def edge_label(label: Label) -> tuple[str, Label]:
    """The vertex label carried by the intermediate vertex of an edge."""
    return (EDGE_TAG, label)


@dataclass
class EdgeLabeledGraph:
    """A directed graph with labels on both vertices and edges."""

    _vertex_labels: dict[Vertex, Label] = field(default_factory=dict)
    _edges: dict[tuple[Vertex, Vertex], Label] = field(default_factory=dict)

    def add_vertex(self, v: Vertex, label: Label) -> None:
        if v in self._vertex_labels and self._vertex_labels[v] != label:
            raise ValueError(f"vertex {v!r} already labeled")
        self._vertex_labels[v] = label

    def add_edge(self, u: Vertex, v: Vertex, label: Label) -> None:
        if u not in self._vertex_labels or v not in self._vertex_labels:
            raise KeyError("both endpoints must exist")
        if u == v:
            raise ValueError("self loops are not supported")
        self._edges[(u, v)] = label

    @classmethod
    def from_edges(
        cls,
        vertex_labels: Mapping[Vertex, Label],
        edges: Mapping[tuple[Vertex, Vertex], Label],
    ) -> "EdgeLabeledGraph":
        graph = cls()
        for v, label in vertex_labels.items():
            graph.add_vertex(v, label)
        for (u, v), label in edges.items():
            graph.add_edge(u, v, label)
        return graph

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertex_labels)

    def edges(self) -> Iterator[tuple[Vertex, Vertex, Label]]:
        for (u, v), label in self._edges.items():
            yield u, v, label

    def vertex_label(self, v: Vertex) -> Label:
        return self._vertex_labels[v]

    # ------------------------------------------------------------------
    def transform(self) -> LabeledGraph:
        """The footnote-2 reduction to a purely vertex-labeled graph."""
        graph = LabeledGraph()
        for v, label in self._vertex_labels.items():
            graph.add_vertex(("v", v), label)
        for index, ((u, v), label) in enumerate(sorted(
                self._edges.items(), key=lambda kv: repr(kv[0]))):
            mid: Hashable = ("e", index, u, v)
            graph.add_vertex(mid, edge_label(label))
            graph.add_edge(("v", u), mid)
            graph.add_edge(mid, ("v", v))
        return graph


def transform_query(query: EdgeLabeledGraph,
                    semantics: Semantics = Semantics.HOM) -> Query:
    """Transform an edge-labeled pattern into a runnable LGPQ query.

    The resulting query's diameter is twice the original's, matching the
    transformed data graph's metric.
    """
    return Query(pattern=query.transform(), semantics=semantics)


def strip_match(match: Mapping[Vertex, Vertex]) -> dict[Vertex, Vertex]:
    """Project a transformed-space match function back to original
    vertices (intermediate assignments are dropped)."""
    projected: dict[Vertex, Vertex] = {}
    for u, v in match.items():
        if isinstance(u, tuple) and u and u[0] == "v":
            if not (isinstance(v, tuple) and v and v[0] == "v"):
                raise ValueError("original vertex mapped to an edge vertex")
            projected[u[1]] = v[1]
    return projected
