"""Graph deltas: the value type of one dynamic-graph update.

A :class:`GraphDelta` is a batch of mutations against a specific parent
graph -- edge insertions/deletions plus vertex additions (with labels)
and removals.  It is deliberately *strict*: applying it to any graph
other than the one it was built against raises (``remove_edge`` on a
missing edge, ``add_vertex`` on a colliding label), which is what lets
the delta log pin every record to a parent graph digest and detect a
merely-unapplied log as stale rather than silently diverging.

Application order is fixed -- removed edges, removed vertices, added
vertices, added edges -- so a delta can relabel a vertex (remove + re-add
under the new label) and wire new vertices into the surviving graph in
one record.

:func:`touched_min_distances` / :func:`dirty_ball_keys` implement the
incremental-maintenance core: the set of balls ``G[w, r]`` whose content
a delta can change is exactly the set of centers within undirected
distance ``r`` of a *touched* vertex in the pre- or post-delta graph
(any vertex entering/leaving a ball, or any changed induced edge, routes
through a touched vertex inside the ball) -- so bounded BFS from the
touched set on both sides yields a sound dirty set whose size is
proportional to the delta, not the graph.
"""

from __future__ import annotations

import ast
import json
import random
from dataclasses import dataclass

from repro.graph.labeled_graph import Label, LabeledGraph, Vertex

#: Versioned wire tag of a serialized delta.
DELTA_FORMAT = "prilo-graph-delta/1"


@dataclass(frozen=True)
class GraphDelta:
    """One batch of graph mutations (see module docstring for ordering).

    Vertices and labels round-trip through JSON by ``repr`` /
    ``ast.literal_eval`` -- the same canonical encoding the ball packs
    and candidate catalogs use -- so any literal-representable vertex
    type (the datasets use ``int``) survives the delta log.
    """

    added_vertices: tuple[tuple[Vertex, Label], ...] = ()
    removed_vertices: tuple[Vertex, ...] = ()
    added_edges: tuple[tuple[Vertex, Vertex], ...] = ()
    removed_edges: tuple[tuple[Vertex, Vertex], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "added_vertices",
                           tuple((v, label)
                                 for v, label in self.added_vertices))
        object.__setattr__(self, "removed_vertices",
                           tuple(self.removed_vertices))
        object.__setattr__(self, "added_edges",
                           tuple((u, v) for u, v in self.added_edges))
        object.__setattr__(self, "removed_edges",
                           tuple((u, v) for u, v in self.removed_edges))

    @property
    def is_empty(self) -> bool:
        return not (self.added_vertices or self.removed_vertices
                    or self.added_edges or self.removed_edges)

    @property
    def size(self) -> int:
        """Total mutation count -- what update cost must be proportional to."""
        return (len(self.added_vertices) + len(self.removed_vertices)
                + len(self.added_edges) + len(self.removed_edges))

    def touched_vertices(self) -> frozenset[Vertex]:
        """Every vertex the delta names: the BFS seeds of the dirty set."""
        touched: set[Vertex] = set(self.removed_vertices)
        touched.update(v for v, _ in self.added_vertices)
        for u, v in self.added_edges:
            touched.add(u)
            touched.add(v)
        for u, v in self.removed_edges:
            touched.add(u)
            touched.add(v)
        return frozenset(touched)

    def apply(self, graph: LabeledGraph) -> LabeledGraph:
        """Mutate ``graph`` in place (fixed order, strict); returns it."""
        for u, v in self.removed_edges:
            graph.remove_edge(u, v)
        for v in self.removed_vertices:
            graph.remove_vertex(v)
        for v, label in self.added_vertices:
            if v in graph:
                raise ValueError(
                    f"delta re-adds existing vertex {v!r}; remove it first")
            graph.add_vertex(v, label)
        for u, v in self.added_edges:
            if graph.has_edge(u, v):
                raise ValueError(f"delta re-adds existing edge "
                                 f"{u!r} -> {v!r}")
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------
    # serialization (delta-log payload)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "v": DELTA_FORMAT,
            "added_vertices": [[repr(v), repr(label)]
                               for v, label in self.added_vertices],
            "removed_vertices": [repr(v) for v in self.removed_vertices],
            "added_edges": [[repr(u), repr(v)]
                            for u, v in self.added_edges],
            "removed_edges": [[repr(u), repr(v)]
                              for u, v in self.removed_edges],
        }

    def to_bytes(self) -> bytes:
        """Canonical bytes -- what the delta log's keyed digest covers."""
        return json.dumps(self.to_jsonable(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_jsonable(cls, payload: dict) -> "GraphDelta":
        if payload.get("v") != DELTA_FORMAT:
            raise ValueError(
                f"not a graph delta (v={payload.get('v')!r})")
        parse = ast.literal_eval
        return cls(
            added_vertices=tuple((parse(v), parse(label)) for v, label
                                 in payload.get("added_vertices", ())),
            removed_vertices=tuple(parse(v) for v
                                   in payload.get("removed_vertices", ())),
            added_edges=tuple((parse(u), parse(v)) for u, v
                              in payload.get("added_edges", ())),
            removed_edges=tuple((parse(u), parse(v)) for u, v
                                in payload.get("removed_edges", ())),
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "GraphDelta":
        return cls.from_jsonable(json.loads(blob.decode("utf-8")))

    def __repr__(self) -> str:
        return (f"GraphDelta(+V={len(self.added_vertices)}, "
                f"-V={len(self.removed_vertices)}, "
                f"+E={len(self.added_edges)}, "
                f"-E={len(self.removed_edges)})")


def touched_min_distances(graph: LabeledGraph, touched, cutoff: int,
                          into: dict | None = None) -> dict[Vertex, int]:
    """Min undirected distance from any touched vertex, bounded by
    ``cutoff``, folded into ``into``.

    Called once on the pre-delta graph and once on the post-delta graph
    (the delta mutates in place, so the two sides are two calls on the
    same object around ``delta.apply``): removals only widen distances
    visible pre-side, additions only post-side, and the dirty set needs
    the union.
    """
    dists: dict[Vertex, int] = {} if into is None else into
    for seed in touched:
        if seed not in graph:
            continue
        for v, d in graph.undirected_distances(seed, cutoff=cutoff).items():
            if d < dists.get(v, cutoff + 1):
                dists[v] = d
    return dists


def dirty_ball_keys(min_dists: dict[Vertex, int], radii, *,
                    exclude=()) -> set[tuple[Vertex, int]]:
    """The ``(center, radius)`` pairs whose balls a delta may have
    changed: centers within radius of a touched vertex on either side.

    ``exclude`` drops centers handled separately (removed vertices lose
    their balls outright, added vertices get fresh ones).
    """
    skip = set(exclude)
    radii = tuple(sorted(set(radii)))
    keys: set[tuple[Vertex, int]] = set()
    for center, dist in min_dists.items():
        if center in skip:
            continue
        for radius in radii:
            if radius >= dist:
                keys.add((center, radius))
    return keys


def random_delta(graph: LabeledGraph, *, edge_fraction: float = 0.01,
                 remove_vertices: int = 0, seed: int = 0) -> GraphDelta:
    """Synthesize a deterministic churn delta against ``graph``.

    Removes ``edge_fraction`` of the edges, adds the same number of
    fresh edges between surviving vertices, and optionally removes
    ``remove_vertices`` vertices outright -- the update mix the dynamic
    benchmarks and the ``store make-delta`` command exercise.  The delta
    is valid against the *current* state of ``graph`` (it is not
    applied here).
    """
    if not 0.0 <= edge_fraction <= 1.0:
        raise ValueError("edge_fraction must be in [0, 1]")
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    vertices = sorted(graph.vertices(), key=repr)
    num_edge_ops = int(len(edges) * edge_fraction)

    removed_vertex_set: set[Vertex] = set()
    if remove_vertices:
        if remove_vertices > len(vertices):
            raise ValueError("cannot remove more vertices than exist")
        removed_vertex_set = set(rng.sample(vertices, remove_vertices))
    survivors = [v for v in vertices if v not in removed_vertex_set]

    # Edge removals must not name edges the vertex removals already take
    # with them (apply() removes edges first, so both naming an incident
    # edge would double-remove).
    removable = [e for e in edges
                 if e[0] not in removed_vertex_set
                 and e[1] not in removed_vertex_set]
    removed_edges = tuple(
        rng.sample(removable, min(num_edge_ops, len(removable))))
    removed_edge_set = set(removed_edges)

    added_edges: list[tuple[Vertex, Vertex]] = []
    if len(survivors) >= 2:
        seen: set[tuple[Vertex, Vertex]] = set()
        attempts = 0
        while len(added_edges) < num_edge_ops and attempts < 50 * (
                num_edge_ops + 1):
            attempts += 1
            u, v = rng.sample(survivors, 2)
            edge = (u, v)
            if edge in seen or edge in removed_edge_set:
                continue
            if graph.has_edge(u, v):
                continue
            seen.add(edge)
            added_edges.append(edge)

    return GraphDelta(removed_vertices=tuple(sorted(removed_vertex_set,
                                                    key=repr)),
                      added_edges=tuple(added_edges),
                      removed_edges=removed_edges)


__all__ = [
    "DELTA_FORMAT",
    "GraphDelta",
    "dirty_ball_keys",
    "random_delta",
    "touched_min_distances",
]
