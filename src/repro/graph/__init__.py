"""Graph substrate: labeled directed graphs, balls, generators, and queries.

This subpackage implements everything the Prilo framework needs from the data
graph side:

* :class:`~repro.graph.labeled_graph.LabeledGraph` -- the directed,
  vertex-labeled graph used for both data graphs and query patterns.
* :class:`~repro.graph.ball.Ball` and :class:`~repro.graph.ball.BallIndex` --
  the ball ``G[u, r]`` abstraction of Ma et al. that localizes LGPQ answers.
* :mod:`~repro.graph.generators` -- synthetic dataset generators standing in
  for the SNAP datasets used in the paper (no network access is available).
* :mod:`~repro.graph.qgen` -- the ``QGen`` random query generator of [57].
* :mod:`~repro.graph.ldbc` -- an LDBC-SNB-like social graph plus the ten
  business-intelligence workload patterns of Table 5.
"""

from repro.graph.ball import Ball, BallIndex, StaleIndexError, extract_ball
from repro.graph.delta import GraphDelta, dirty_ball_keys, touched_min_distances
from repro.graph.generators import (
    fig3_graph,
    fig3_query,
    power_law_graph,
    uniform_random_graph,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.matrix import CandidateMappingMatrix, adjacency_matrix
from repro.graph.qgen import QGen
from repro.graph.query import Query, Semantics

__all__ = [
    "Ball",
    "BallIndex",
    "CandidateMappingMatrix",
    "GraphDelta",
    "LabeledGraph",
    "QGen",
    "Query",
    "Semantics",
    "StaleIndexError",
    "adjacency_matrix",
    "dirty_ball_keys",
    "extract_ball",
    "fig3_graph",
    "fig3_query",
    "power_law_graph",
    "touched_min_distances",
    "uniform_random_graph",
]
