"""Balls ``G[u, r]`` and the data owner's precomputed ball index.

A ball (Sec. 2.1, following Ma et al.) is the subgraph of ``G`` induced by
all vertices within undirected distance ``r`` of the center ``u``.  Balls are
the privacy-preserving processing unit of Prilo: each one is encrypted and
shipped to the service provider, and every localized match is fully contained
in at least one ball whose center it touches (Props. 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.labeled_graph import Label, LabeledGraph, Vertex


class StaleIndexError(RuntimeError):
    """The graph mutated after this index memoized its balls.

    :class:`BallIndex` captures ``graph.mutation_epoch`` at construction;
    every accessor that can serve a (possibly memoized) ball re-checks it.
    A moved epoch means the cached balls and deterministic ids no longer
    describe the graph -- callers must rebuild the index (or, for stores,
    run ``apply_delta``) rather than silently serve stale state.
    """


@dataclass(frozen=True)
class Ball:
    """A ball ``G[center, radius]``.

    ``graph`` is the induced subgraph (original vertex identifiers are kept),
    ``center`` its center and ``radius`` the extraction radius.  The ball id
    (``BId`` in Sec. 4.3) is assigned by :class:`BallIndex`.
    """

    graph: LabeledGraph
    center: Vertex
    radius: int
    ball_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.center not in self.graph:
            raise ValueError(f"center {self.center!r} not in ball subgraph")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")

    @property
    def size(self) -> int:
        """The paper's ball size metric ``|V_B|`` (Sec. 6.1)."""
        return self.graph.num_vertices

    @property
    def center_label(self) -> Label:
        return self.graph.label(self.center)

    def __repr__(self) -> str:
        return (f"Ball(id={self.ball_id}, center={self.center!r}, "
                f"r={self.radius}, |V|={self.size}, "
                f"|E|={self.graph.num_edges})")


def extract_ball(graph: LabeledGraph, center: Vertex, radius: int,
                 ball_id: int = -1) -> Ball:
    """Extract ``G[center, radius]`` by a bounded undirected BFS."""
    members = graph.undirected_distances(center, cutoff=radius)
    return Ball(graph=graph.induced_subgraph(members),
                center=center, radius=radius, ball_id=ball_id)


class BallIndex:
    """All balls of a graph for a set of radii, as the data owner builds them.

    The data owner "generates all balls of graph G with various diameters
    offline" (Sec. 2.3).  The index supports Prop. 1's filter: given a label
    ``l`` and radius ``d_Q``, iterate only the balls whose center carries
    ``l``.  Extraction is lazy with memoization so tests and benchmarks do
    not pay for balls they never touch; ``materialize()`` forces the offline
    behaviour.
    """

    def __init__(self, graph: LabeledGraph, radii: tuple[int, ...],
                 ids: dict[tuple[Vertex, int], int] | None = None) -> None:
        if not radii:
            raise ValueError("at least one radius is required")
        if any(r < 0 for r in radii):
            raise ValueError("radii must be non-negative")
        self._graph = graph
        self._radii = tuple(sorted(set(radii)))
        self._epoch = graph.mutation_epoch
        self._cache: dict[tuple[Vertex, int], Ball] = {}
        if ids is None:
            # Deterministic ball ids: (vertex order) x (radius order).
            self._ids: dict[tuple[Vertex, int], int] = {}
            next_id = 0
            for v in graph.vertices():
                for r in self._radii:
                    self._ids[(v, r)] = next_id
                    next_id += 1
        else:
            # Explicit ids survive deltas: an incrementally maintained
            # store keeps surviving balls' ids stable instead of the
            # positional renumbering a rebuild would impose.
            expected = graph.num_vertices * len(self._radii)
            if len(ids) != expected:
                raise ValueError(f"id map has {len(ids)} entries, expected "
                                 f"{expected} (|V| x |radii|)")
            if len(set(ids.values())) != len(ids):
                raise ValueError("id map assigns duplicate ball ids")
            for (v, r) in ids:
                if v not in graph:
                    raise ValueError(f"id map names unknown vertex {v!r}")
                if r not in self._radii:
                    raise ValueError(f"id map names unindexed radius {r}")
            self._ids = dict(ids)

    def _check_epoch(self) -> None:
        if self._graph.mutation_epoch != self._epoch:
            raise StaleIndexError(
                f"graph mutated since index construction (epoch "
                f"{self._graph.mutation_epoch} != {self._epoch}); "
                f"rebuild the index or apply the delta to the store")

    @property
    def graph(self) -> LabeledGraph:
        return self._graph

    @property
    def radii(self) -> tuple[int, ...]:
        return self._radii

    def __len__(self) -> int:
        return len(self._ids)

    def id_map(self) -> dict[tuple[Vertex, int], int]:
        """Copy of the ``(center, radius) -> ball id`` assignment."""
        return dict(self._ids)

    def ball_id(self, center: Vertex, radius: int) -> int:
        self._check_epoch()
        return self._ids[(center, radius)]

    def ball(self, center: Vertex, radius: int) -> Ball:
        """The ball ``G[center, radius]`` (memoized)."""
        self._check_epoch()
        key = (center, radius)
        if key not in self._ids:
            raise KeyError(f"no ball for center={center!r} radius={radius}")
        cached = self._cache.get(key)
        if cached is None:
            cached = extract_ball(self._graph, center, radius,
                                  ball_id=self._ids[key])
            self._cache[key] = cached
        return cached

    def ball_by_id(self, ball_id: int) -> Ball:
        self._check_epoch()
        for key, bid in self._ids.items():
            if bid == ball_id:
                return self.ball(*key)
        raise KeyError(f"unknown ball id {ball_id}")

    def candidate_balls(self, label: Label, radius: int) -> Iterator[Ball]:
        """Prop. 1: the balls with centers labeled ``label`` and the given
        radius -- the only balls a query with that label must inspect."""
        self._check_epoch()
        if radius not in self._radii:
            raise KeyError(f"radius {radius} not indexed (have {self._radii})")
        centers = sorted(self._graph.vertices_with_label(label), key=repr)

        def _iter() -> Iterator[Ball]:
            for v in centers:
                yield self.ball(v, radius)

        return _iter()

    def candidate_count(self, label: Label, radius: int) -> int:
        self._check_epoch()
        if radius not in self._radii:
            raise KeyError(f"radius {radius} not indexed (have {self._radii})")
        return len(self._graph.vertices_with_label(label))

    def materialize(self) -> int:
        """Force extraction of every indexed ball (data owner offline step).

        Returns the number of balls extracted.
        """
        for (v, r) in self._ids:
            self.ball(v, r)
        return len(self._ids)
