"""Directed vertex-labeled graphs.

The paper (Sec. 2.1) models a graph as ``G = (V_G, E_G, Sigma_G, L_G)`` with
directed edges and a labeling function.  Distances and diameters are measured
on the *undirected* version of the graph, which is what makes balls connected
supersets of localized matches.

Vertices are arbitrary hashable identifiers (the datasets use ``int``).
Labels are arbitrary hashable values (the datasets use small ``int`` codes,
the worked examples use single-letter strings).
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping

Vertex = Hashable
Label = Hashable


class LabeledGraph:
    """A directed graph with a label on every vertex.

    The structure keeps successor and predecessor sets per vertex plus a
    label index (label -> set of vertices), so the common Prilo operations
    (Prop. 1 label filtering, ``CV(u)`` construction in Alg. 1, neighbor
    walks in Alg. 4/5) are O(1) lookups.
    """

    def __init__(self) -> None:
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}
        self._labels: dict[Vertex, Label] = {}
        self._label_index: dict[Label, set[Vertex]] = {}
        self._num_edges = 0
        self._epoch = 0

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    @property
    def mutation_epoch(self) -> int:
        """Monotone counter bumped by every *effective* mutation.

        Derived structures that memoize against the graph (ball indexes,
        artifact stores) capture the epoch at build time and can detect
        that the graph moved under them instead of silently serving
        stale state.  No-op calls (re-adding an existing vertex with the
        same label, re-adding an existing edge) do not bump it.
        """
        return self._epoch

    def add_vertex(self, v: Vertex, label: Label) -> None:
        """Add vertex ``v`` with ``label``; relabeling an existing vertex is
        an error (remove and re-add to relabel)."""
        if v in self._labels:
            if self._labels[v] != label:
                raise ValueError(f"vertex {v!r} already exists with label "
                                 f"{self._labels[v]!r}, cannot relabel to {label!r}")
            return
        self._labels[v] = label
        self._succ[v] = set()
        self._pred[v] = set()
        self._label_index.setdefault(label, set()).add(v)
        self._epoch += 1

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the directed edge ``(u, v)``.  Both endpoints must exist.

        Parallel edges collapse (the adjacency matrix is boolean); self loops
        are rejected because neither balls nor the paper's semantics use them.
        """
        if u == v:
            raise ValueError(f"self loop on {u!r} is not supported")
        if u not in self._labels:
            raise KeyError(f"unknown vertex {u!r}")
        if v not in self._labels:
            raise KeyError(f"unknown vertex {v!r}")
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._num_edges += 1
            self._epoch += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the directed edge ``(u, v)``.

        Removing an edge that does not exist is an error, so a delta that
        was already applied (or was built against another graph) fails
        loudly instead of silently diverging.
        """
        if u not in self._labels:
            raise KeyError(f"unknown vertex {u!r}")
        if v not in self._labels:
            raise KeyError(f"unknown vertex {v!r}")
        if v not in self._succ[u]:
            raise KeyError(f"no edge {u!r} -> {v!r}")
        self._succ[u].remove(v)
        self._pred[v].remove(u)
        self._num_edges -= 1
        self._epoch += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and every incident edge (both directions).

        The label index entry is dropped (and its bucket deleted when it
        empties, so ``alphabet`` shrinks exactly when the last carrier of
        a label disappears) and ``num_edges`` accounts for every removed
        incident edge.
        """
        if v not in self._labels:
            raise KeyError(f"unknown vertex {v!r}")
        for w in self._succ.pop(v):
            self._pred[w].remove(v)
            self._num_edges -= 1
        for w in self._pred.pop(v):
            self._succ[w].remove(v)
            self._num_edges -= 1
        label = self._labels.pop(v)
        bucket = self._label_index[label]
        bucket.remove(v)
        if not bucket:
            del self._label_index[label]
        self._epoch += 1

    @classmethod
    def from_edges(
        cls,
        labels: Mapping[Vertex, Label],
        edges: Iterable[tuple[Vertex, Vertex]],
    ) -> "LabeledGraph":
        """Build a graph from a label mapping and an edge iterable."""
        graph = cls()
        for v, label in labels.items():
            graph.add_vertex(v, label)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for u, succ in self._succ.items():
            for v in succ:
                yield (u, v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def label(self, v: Vertex) -> Label:
        return self._labels[v]

    def labels(self) -> Mapping[Vertex, Label]:
        """Read-only view of the vertex -> label mapping."""
        return dict(self._labels)

    @property
    def alphabet(self) -> frozenset[Label]:
        """``Sigma_G``: the set of labels that occur in the graph."""
        return frozenset(self._label_index)

    def vertices_with_label(self, label: Label) -> frozenset[Vertex]:
        return frozenset(self._label_index.get(label, frozenset()))

    def label_frequency(self, label: Label) -> int:
        return len(self._label_index.get(label, ()))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        succ = self._succ.get(u)
        return succ is not None and v in succ

    def successors(self, v: Vertex) -> frozenset[Vertex]:
        return frozenset(self._succ[v])

    def predecessors(self, v: Vertex) -> frozenset[Vertex]:
        return frozenset(self._pred[v])

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        """Undirected neighborhood: successors union predecessors."""
        return frozenset(self._succ[v] | self._pred[v])

    def out_degree(self, v: Vertex) -> int:
        return len(self._succ[v])

    def in_degree(self, v: Vertex) -> int:
        return len(self._pred[v])

    def degree(self, v: Vertex) -> int:
        """Undirected degree (distinct neighbors)."""
        return len(self._succ[v] | self._pred[v])

    def max_degree(self) -> int:
        """``d_max``: largest undirected degree, 0 for the empty graph."""
        return max((self.degree(v) for v in self._labels), default=0)

    # ------------------------------------------------------------------
    # traversal and metric structure
    # ------------------------------------------------------------------
    def undirected_distances(
        self, source: Vertex, cutoff: int | None = None
    ) -> dict[Vertex, int]:
        """BFS distances from ``source`` in the undirected graph.

        ``cutoff`` bounds the radius (used for ball extraction); vertices
        farther than ``cutoff`` are omitted.
        """
        if source not in self._labels:
            raise KeyError(f"unknown vertex {source!r}")
        distances = {source: 0}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            d = distances[u]
            if cutoff is not None and d >= cutoff:
                continue
            for w in self._succ[u]:
                if w not in distances:
                    distances[w] = d + 1
                    frontier.append(w)
            for w in self._pred[u]:
                if w not in distances:
                    distances[w] = d + 1
                    frontier.append(w)
        return distances

    def eccentricity(self, v: Vertex) -> int:
        """Largest undirected distance from ``v`` to any reachable vertex."""
        return max(self.undirected_distances(v).values(), default=0)

    def diameter(self) -> int:
        """Undirected diameter ``d_G`` (Sec. 2.1).

        Raises :class:`ValueError` when the undirected graph is disconnected,
        because the paper's distance (and hence the diameter) is undefined
        across components.  Intended for small graphs (queries, balls).
        """
        if not self._labels:
            return 0
        worst = 0
        for v in self._labels:
            distances = self.undirected_distances(v)
            if len(distances) != len(self._labels):
                raise ValueError("diameter undefined: graph is disconnected")
            worst = max(worst, max(distances.values()))
        return worst

    def is_connected(self) -> bool:
        """Whether the undirected version of the graph is connected."""
        if not self._labels:
            return True
        start = next(iter(self._labels))
        return len(self.undirected_distances(start)) == len(self._labels)

    # ------------------------------------------------------------------
    # subgraphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "LabeledGraph":
        """Induced subgraph over ``vertices`` keeping original identifiers."""
        keep = set(vertices)
        missing = keep - self._labels.keys()
        if missing:
            raise KeyError(f"unknown vertices {sorted(map(repr, missing))}")
        sub = LabeledGraph()
        for v in keep:
            sub.add_vertex(v, self._labels[v])
        for u in keep:
            for v in self._succ[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "LabeledGraph":
        return self.induced_subgraph(self._labels)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (self._labels == other._labels
                and self._succ == other._succ)

    def __hash__(self) -> int:
        """Digest-backed hash consistent with ``__eq__``.

        Defining ``__eq__`` alone sets ``__hash__ = None``, making graphs
        unusable as set members or dict keys.  The hash digests the same
        canonical ``repr``-sorted (labels, edges) view ``__eq__`` compares,
        so equal graphs always hash equal.  Like any mutable container
        used as a key, a graph must not be mutated while it lives in a
        hash-based collection.
        """
        h = hashlib.sha256()
        for v, label in sorted(self._labels.items(),
                               key=lambda kv: repr(kv[0])):
            h.update(f"{v!r}={label!r};".encode("utf-8"))
        for u, v in sorted(self.edges(),
                           key=lambda e: (repr(e[0]), repr(e[1]))):
            h.update(f"{u!r}>{v!r};".encode("utf-8"))
        return int.from_bytes(h.digest()[:8], "big")

    def __repr__(self) -> str:
        return (f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
                f"|Sigma|={len(self._label_index)})")
