"""LGPQ queries.

A localized graph pattern query (Sec. 2.1) is a connected labeled pattern
``Q`` together with a semantics ``F`` in {hom, sub-iso, ssim}.  The query
diameter ``d_Q`` fixes the radius of the candidate balls (Prop. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from repro.graph.labeled_graph import Label, LabeledGraph, Vertex


class Semantics(str, Enum):
    """The three LGPQ semantics handled by the framework."""

    HOM = "hom"
    SUB_ISO = "sub-iso"
    SSIM = "ssim"


@dataclass(frozen=True)
class Query:
    """A connected LGPQ query pattern with a fixed vertex order.

    ``vertex_order`` fixes the CMM row order once so that every component
    (user, players, tests) agrees on matrix positions.  Construction computes
    and caches ``d_Q``.
    """

    pattern: LabeledGraph
    semantics: Semantics = Semantics.HOM
    vertex_order: tuple[Vertex, ...] = field(default=())
    diameter: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.pattern.num_vertices == 0:
            raise ValueError("query pattern must be non-empty")
        if not self.pattern.is_connected():
            raise ValueError("query pattern must be connected (Def. 1)")
        if not self.vertex_order:
            object.__setattr__(
                self, "vertex_order",
                tuple(sorted(self.pattern.vertices(), key=repr)))
        elif set(self.vertex_order) != set(self.pattern.vertices()):
            raise ValueError("vertex_order must enumerate the pattern's "
                             "vertices exactly once")
        if self.diameter < 0:
            object.__setattr__(self, "diameter", self.pattern.diameter())

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        labels: Mapping[Vertex, Label],
        edges: Iterable[tuple[Vertex, Vertex]],
        semantics: Semantics = Semantics.HOM,
        vertex_order: tuple[Vertex, ...] = (),
    ) -> "Query":
        return cls(pattern=LabeledGraph.from_edges(labels, edges),
                   semantics=semantics, vertex_order=vertex_order)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|V_Q|``."""
        return self.pattern.num_vertices

    @property
    def alphabet(self) -> frozenset[Label]:
        """``Sigma_Q``."""
        return self.pattern.alphabet

    def label(self, u: Vertex) -> Label:
        return self.pattern.label(u)

    def row_of(self, u: Vertex) -> int:
        return self.vertex_order.index(u)

    def most_frequent_label(self, data_graph: LabeledGraph) -> Label:
        """Alg. 3 line 2: the query label maximizing the number of candidate
        balls in the data graph (ties broken deterministically)."""
        return max(sorted(self.alphabet, key=repr),
                   key=lambda l: data_graph.label_frequency(l))

    def least_frequent_label(self, data_graph: LabeledGraph) -> Label:
        """The opposite selectivity choice, exposed for ablations: fewer
        candidate balls means less SP work at the same answer set
        (Props. 1-2 hold for any label choice)."""
        return min(sorted(self.alphabet, key=repr),
                   key=lambda l: data_graph.label_frequency(l))

    def __repr__(self) -> str:
        return (f"Query({self.semantics.value}, |V|={self.size}, "
                f"|Sigma|={len(self.alphabet)}, d_Q={self.diameter})")


@dataclass(frozen=True)
class QueryLabelView:
    """The SP-visible projection of a query: vertices, labels, diameter.

    The Player side must never hold the query's edges (they are the privacy
    target); every label-only algorithm (Alg. 1's enumeration, the ssim
    candidate step) is written against this duck-typed view, which the
    Player reconstructs from the public fields of the encrypted query
    message.  Vertex identifiers are the row indices ``0..n-1``, matching
    the encrypted matrix layout.
    """

    labels: tuple[Label, ...]
    diameter: int
    semantics: Semantics = Semantics.HOM

    @property
    def vertex_order(self) -> tuple[int, ...]:
        return tuple(range(len(self.labels)))

    @property
    def size(self) -> int:
        return len(self.labels)

    @property
    def alphabet(self) -> frozenset[Label]:
        return frozenset(self.labels)

    def label(self, u: int) -> Label:
        return self.labels[u]

    @classmethod
    def of(cls, query: Query) -> "QueryLabelView":
        return cls(labels=tuple(query.label(u) for u in query.vertex_order),
                   diameter=query.diameter, semantics=query.semantics)
