"""QGen: the random query generator of Xu et al. [57] (Sec. 6.1).

"Taking a query size |V_Q|, a diameter d_Q and a graph G as inputs, QGen
returned random subgraphs of G as output queries."

The generator grows a connected induced subgraph of the data graph by a
randomized neighborhood expansion, then accepts it when its undirected
diameter matches the request.  Because an induced subgraph of a labeled
graph always admits at least one match (itself), queries produced this way
are guaranteed non-empty workloads for hom and sub-iso.
"""

from __future__ import annotations

import random

from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.query import Query, Semantics


class QGen:
    """Random connected-subgraph query generator.

    Parameters
    ----------
    graph:
        The data graph to sample patterns from.
    seed:
        RNG seed; every generated query is deterministic in (seed, call #).
    max_attempts:
        How many sampled subgraphs to try before relaxing the diameter
        requirement from ``== d_Q`` to ``<= d_Q`` (QGen in the paper is
        best-effort as well; degenerate graphs may not contain an induced
        subgraph of the exact requested diameter).
    """

    def __init__(self, graph: LabeledGraph, seed: int = 0,
                 max_attempts: int = 200) -> None:
        if graph.num_vertices == 0:
            raise ValueError("cannot sample queries from an empty graph")
        self._graph = graph
        self._rng = random.Random(seed)
        self._max_attempts = max_attempts
        self._vertices = sorted(graph.vertices(), key=repr)

    # ------------------------------------------------------------------
    def _sample_connected(self, size: int) -> LabeledGraph | None:
        """One randomized expansion producing a connected induced subgraph."""
        start = self._rng.choice(self._vertices)
        chosen: list[Vertex] = [start]
        frontier = set(self._graph.neighbors(start))
        while len(chosen) < size and frontier:
            v = self._rng.choice(sorted(frontier, key=repr))
            chosen.append(v)
            frontier.discard(v)
            frontier |= (self._graph.neighbors(v) - set(chosen))
        if len(chosen) < size:
            return None
        return self._graph.induced_subgraph(chosen)

    def generate(
        self,
        size: int,
        diameter: int,
        semantics: Semantics = Semantics.HOM,
    ) -> Query:
        """A random connected query with ``|V_Q| = size``.

        Prefers an exact undirected diameter of ``diameter``; falls back to
        the largest achievable diameter ``<= diameter`` after
        ``max_attempts`` samples.  Raises :class:`RuntimeError` when the
        graph contains no connected induced subgraph of the requested size.
        """
        if size < 1:
            raise ValueError("query size must be positive")
        if diameter < 0:
            raise ValueError("diameter must be non-negative")
        best: LabeledGraph | None = None
        best_diameter = -1
        for _ in range(self._max_attempts):
            pattern = self._sample_connected(size)
            if pattern is None:
                continue
            d = pattern.diameter()
            if d == diameter:
                return Query(pattern=pattern, semantics=semantics)
            if d < diameter and d > best_diameter:
                best, best_diameter = pattern, d
        if best is None:
            raise RuntimeError(
                f"no connected induced subgraph of size {size} with diameter "
                f"<= {diameter} found in {self._max_attempts} attempts")
        return Query(pattern=best, semantics=semantics)

    def generate_batch(
        self,
        count: int,
        size: int,
        diameter: int,
        semantics: Semantics = Semantics.HOM,
    ) -> list[Query]:
        """The paper's per-experiment workload: ``count`` random queries
        (10 in Sec. 6.1) of the same size/diameter."""
        return [self.generate(size, diameter, semantics)
                for _ in range(count)]
