"""LDBC-SNB-like workload (Sec. 6.4, Table 5, Fig. 18).

The paper transforms the LDBC social network (scale factor 1) by using each
vertex's *tag-class* as its label (213 labels) and derives LGPQ structures
from 10 of the 20 business-intelligence workloads.  This module provides:

* :func:`ldbc_like_graph` -- a scaled synthetic social graph whose labels
  follow a Zipf-like skew (tag-class popularity is heavily skewed in SNB).
* :data:`WORKLOAD_SHAPES` -- the ten usable query structures of Table 5
  (path / star / triangle / twig / circle with the table's |V|, |Sigma| and
  d_Q), plus the ten omitted ones with the table's omission reason.
* :func:`workload_queries` -- instantiates the ten tested patterns against a
  concrete graph by sampling labels that actually occur in it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.generators import power_law_graph
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.query import Query, Semantics


def _zipf_labels(num_vertices: int, num_labels: int, exponent: float,
                 rng: random.Random) -> list[int]:
    """Zipf-skewed label sample: label k has weight (k+1)^-exponent."""
    weights = [(k + 1) ** -exponent for k in range(num_labels)]
    return rng.choices(range(num_labels), weights=weights, k=num_vertices)


def ldbc_like_graph(
    num_vertices: int = 4000,
    edges_per_vertex: int = 3,
    num_labels: int = 213,
    skew: float = 0.9,
    seed: int = 7,
) -> LabeledGraph:
    """A scaled LDBC-SNB stand-in: power-law topology, skewed tag-class labels.

    The real SF1 graph has 3.16M vertices / 10.4M edges / 213 labels; we keep
    the edge/vertex ratio (~3.3) and the alphabet, and scale the vertex count
    so experiments run locally.  The Zipf skew reproduces the fact that a few
    tag classes dominate, which is what drives the large PPCR differences
    between the Fig. 18 workloads.
    """
    topology = power_law_graph(num_vertices, edges_per_vertex,
                               num_labels=1, seed=seed)
    rng = random.Random(seed + 1)
    labels = _zipf_labels(num_vertices, num_labels, skew, rng)
    mapping = {v: labels[v] for v in range(num_vertices)}
    return LabeledGraph.from_edges(mapping, topology.edges())


# ----------------------------------------------------------------------
# Table 5: workload characteristics.
# ----------------------------------------------------------------------
# Edge lists are over vertex indices 0..|V|-1; "undirected" table entries get
# a fixed forward orientation (the paper keeps the LDBC relationship
# directions; only the match structure matters for Fig. 18).
@dataclass(frozen=True)
class WorkloadShape:
    """One row of Table 5."""

    name: str
    num_vertices: int
    num_labels: int
    diameter: int
    tested: bool
    remark: str
    edges: tuple[tuple[int, int], ...] = ()


WORKLOAD_SHAPES: tuple[WorkloadShape, ...] = (
    WorkloadShape("Q1", 1, 1, 0, False, "single vertex"),
    WorkloadShape("Q2", 3, 2, 2, False, "path (undirected), always exists"),
    WorkloadShape("Q3", 4, 4, 3, True, "path (undirected)",
                  ((0, 1), (1, 2), (2, 3))),
    WorkloadShape("Q4", 3, 3, 2, True, "path (undirected)",
                  ((0, 1), (1, 2))),
    WorkloadShape("Q5", 4, 3, 2, True, "star (undirected)",
                  ((0, 1), (0, 2), (0, 3))),
    WorkloadShape("Q6", 3, 2, 2, True, "path (directed)",
                  ((0, 1), (1, 2))),
    WorkloadShape("Q7", 4, 2, 2, False, "contain negation"),
    WorkloadShape("Q8", 2, 2, 1, False, "pair, always exists"),
    WorkloadShape("Q9", 3, 3, 2, True, "path (directed)",
                  ((0, 1), (1, 2))),
    WorkloadShape("Q10", 6, 4, 3, False, "non-localized"),
    WorkloadShape("Q11", 3, 1, 1, True, "triangle (undirected)",
                  ((0, 1), (1, 2), (2, 0))),
    WorkloadShape("Q12", 3, 3, 2, True, "path (undirected)",
                  ((0, 1), (1, 2))),
    WorkloadShape("Q13", 4, 2, 2, True, "twig (directed)",
                  ((0, 1), (1, 2), (1, 3))),
    WorkloadShape("Q14", 2, 1, 1, False, "pair, always exists"),
    WorkloadShape("Q15", 5, 4, 3, True, "tree",
                  ((0, 1), (1, 2), (1, 3), (3, 4))),
    WorkloadShape("Q16", 1, 1, 0, False, "single vertex"),
    WorkloadShape("Q17", 11, 6, 4, False, "contain negation"),
    WorkloadShape("Q18", 4, 2, 2, False, "contain negation"),
    WorkloadShape("Q19", 4, 3, 2, True, "circle (undirected)",
                  ((0, 1), (1, 2), (2, 3), (3, 0))),
    WorkloadShape("Q20", 2, 1, 1, False, "non-localized"),
)

TESTED_WORKLOADS: tuple[WorkloadShape, ...] = tuple(
    shape for shape in WORKLOAD_SHAPES if shape.tested)


def _assign_labels(shape: WorkloadShape, graph: LabeledGraph,
                   rng: random.Random) -> dict[int, Label]:
    """Exactly ``shape.num_labels`` distinct labels over the shape's vertices
    (Table 5's |Sigma| column), sampled frequency-weighted from the graph.

    The BI workloads query the popular tag classes (person, post, tag...),
    not the long tail, so label choice is weighted by occurrence count --
    uniform sampling over 213 Zipf-skewed labels would produce queries
    whose labels barely occur, collapsing every workload to zero
    candidates.
    """
    alphabet = sorted(graph.alphabet, key=repr)
    if len(alphabet) < shape.num_labels:
        raise ValueError(
            f"graph alphabet too small for {shape.name}: need "
            f"{shape.num_labels} labels, have {len(alphabet)}")
    weights = [graph.label_frequency(label) for label in alphabet]
    chosen: list[Label] = []
    while len(chosen) < shape.num_labels:
        pick = rng.choices(alphabet, weights=weights, k=1)[0]
        if pick not in chosen:
            chosen.append(pick)
    labels: dict[int, Label] = {}
    for v in range(shape.num_vertices):
        if v < shape.num_labels:
            labels[v] = chosen[v]
        else:
            labels[v] = rng.choice(chosen)
    return labels


def instantiate_workload(
    shape: WorkloadShape,
    graph: LabeledGraph,
    semantics: Semantics = Semantics.HOM,
    seed: int = 0,
) -> Query:
    """One concrete query for a Table 5 shape, labeled from ``graph``'s
    alphabet ("randomly assigning a label to each query vertex by using the
    tag-class of LDBC", Sec. 6.4)."""
    if not shape.tested:
        raise ValueError(f"workload {shape.name} was omitted in the paper "
                         f"({shape.remark})")
    rng = random.Random(seed)
    labels = _assign_labels(shape, graph, rng)
    return Query.from_edges(labels, shape.edges, semantics=semantics)


def workload_queries(
    graph: LabeledGraph,
    semantics: Semantics = Semantics.HOM,
    seed: int = 0,
) -> dict[str, Query]:
    """All ten tested Table 5 workloads instantiated against ``graph``."""
    return {
        shape.name: instantiate_workload(shape, graph, semantics,
                                         seed=seed + index)
        for index, shape in enumerate(TESTED_WORKLOADS)
    }
