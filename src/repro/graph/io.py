"""Serialization of labeled graphs.

Two formats:

* SNAP-style labeled edge list -- a ``# vertex <id> <label>`` header section
  followed by ``<src> <dst>`` lines; round-trips the datasets the paper
  downloads from SNAP (plus the labels the paper adds).
* JSON -- used as the plaintext payload of encrypted balls (the data owner
  encrypts serialized ball data before shipping it to the SP, Sec. 2.3).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.graph.ball import Ball
from repro.graph.labeled_graph import LabeledGraph


def dump_edge_list(graph: LabeledGraph, path: str | Path) -> None:
    """Write ``graph`` as a labeled edge list."""
    lines = [f"# vertex {v!r} {graph.label(v)!r}"
             for v in sorted(graph.vertices(), key=repr)]
    lines.extend(f"{u!r} {v!r}" for u, v in
                 sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_edge_list(path: str | Path) -> LabeledGraph:
    """Read a labeled edge list written by :func:`dump_edge_list`.

    Vertex ids and labels are parsed with ``ast.literal_eval`` so ints and
    strings round-trip exactly.
    """
    import ast

    graph = LabeledGraph()
    edges: list[tuple[object, object]] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# vertex "):
            v_repr, label_repr = line[len("# vertex "):].split(" ", 1)
            graph.add_vertex(ast.literal_eval(v_repr),
                             ast.literal_eval(label_repr))
        elif line.startswith("#"):
            continue
        else:
            u_repr, v_repr = line.split(" ", 1)
            edges.append((ast.literal_eval(u_repr),
                          ast.literal_eval(v_repr)))
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def graph_to_json(graph: LabeledGraph) -> str:
    """Canonical JSON form (deterministic ordering) of a labeled graph."""
    payload = {
        "vertices": [[repr(v), repr(graph.label(v))]
                     for v in sorted(graph.vertices(), key=repr)],
        "edges": [[repr(u), repr(v)] for u, v in
                  sorted(graph.edges(),
                         key=lambda e: (repr(e[0]), repr(e[1])))],
    }
    return json.dumps(payload, separators=(",", ":"))


def graph_from_json(text: str) -> LabeledGraph:
    import ast

    payload = json.loads(text)
    graph = LabeledGraph()
    # Every edge endpoint also appears in the vertex section, so parsing a
    # repr once per *distinct* value (instead of once per occurrence) cuts
    # the ``literal_eval`` count from O(V + 2E) to O(V) -- the dominant
    # cost when cold-loading ball packs.
    seen: dict[str, object] = {}

    def parse(value_repr: str):
        try:
            return seen[value_repr]
        except KeyError:
            value = ast.literal_eval(value_repr)
            seen[value_repr] = value
            return value

    for v_repr, label_repr in payload["vertices"]:
        graph.add_vertex(parse(v_repr), parse(label_repr))
    for u_repr, v_repr in payload["edges"]:
        graph.add_edge(parse(u_repr), parse(v_repr))
    return graph


def ball_to_bytes(ball: Ball) -> bytes:
    """The plaintext the data owner encrypts per ball (Sec. 2.3, step 1)."""
    payload = {
        "ball_id": ball.ball_id,
        "center": repr(ball.center),
        "radius": ball.radius,
        "graph": graph_to_json(ball.graph),
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def ball_from_bytes(data: bytes) -> Ball:
    import ast

    payload = json.loads(data.decode("utf-8"))
    return Ball(graph=graph_from_json(payload["graph"]),
                center=ast.literal_eval(payload["center"]),
                radius=payload["radius"],
                ball_id=payload["ball_id"])
