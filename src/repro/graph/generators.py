"""Synthetic labeled graph generators.

The paper evaluates on the SNAP datasets *Slashdot*, *DBLP*, and *Twitter*
with uniformly random vertex labels ("the vertices of these datasets do not
have labels ... we generated a random label for each vertex", Sec. 6.1).  No
network access is available in this environment, so this module provides the
closest synthetic equivalents:

* :func:`power_law_graph` -- a preferential-attachment style generator that
  reproduces the heavy-tailed degree distributions of social/collaboration
  networks, with the edge/vertex ratio as a parameter.
* :func:`uniform_random_graph` -- an Erdos-Renyi style control.
* :func:`fig3_query` / :func:`fig3_graph` -- the exact worked example of
  Fig. 3, reconstructed from Examples 2-8, used throughout the tests.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query, Semantics


def _random_labels(n: int, num_labels: int, rng: random.Random) -> list[int]:
    """Uniform labels ``0..num_labels-1`` as in the paper's Sec. 6.1."""
    if num_labels < 1:
        raise ValueError("num_labels must be positive")
    return [rng.randrange(num_labels) for _ in range(n)]


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    seed: int = 0,
) -> LabeledGraph:
    """A directed Erdos-Renyi-style graph with ``num_edges`` distinct edges."""
    if num_vertices < 2 and num_edges > 0:
        raise ValueError("need at least two vertices to place edges")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} edges on "
                         f"{num_vertices} vertices (max {max_edges})")
    rng = random.Random(seed)
    graph = LabeledGraph()
    for v, label in enumerate(_random_labels(num_vertices, num_labels, rng)):
        graph.add_vertex(v, label)
    placed = 0
    while placed < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed += 1
    return graph


def power_law_graph(
    num_vertices: int,
    edges_per_vertex: int,
    num_labels: int,
    seed: int = 0,
    reciprocity: float = 0.2,
) -> LabeledGraph:
    """A preferential-attachment graph with heavy-tailed degrees.

    Each new vertex attaches ``edges_per_vertex`` directed edges to targets
    sampled proportionally to current degree (Barabasi-Albert style, using
    the classic repeated-endpoints trick).  With probability ``reciprocity``
    an attachment also adds the reverse edge, mimicking the partially
    reciprocal links of Slashdot/Twitter follower graphs.
    """
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be positive")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    if not 0.0 <= reciprocity <= 1.0:
        raise ValueError("reciprocity must be in [0, 1]")
    rng = random.Random(seed)
    graph = LabeledGraph()
    for v, label in enumerate(_random_labels(num_vertices, num_labels, rng)):
        graph.add_vertex(v, label)

    # Seed clique over the first edges_per_vertex + 1 vertices.
    seed_size = edges_per_vertex + 1
    endpoints: list[int] = []  # degree-weighted sampling pool
    for u in range(seed_size):
        for v in range(seed_size):
            if u != v:
                graph.add_edge(u, v)
        endpoints.extend([u] * (seed_size - 1))

    for v in range(seed_size, num_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            targets.add(rng.choice(endpoints))
        for u in sorted(targets):
            graph.add_edge(v, u)
            endpoints.append(u)
            endpoints.append(v)
            if rng.random() < reciprocity and not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


def social_graph(
    num_vertices: int,
    lattice_neighbors: int,
    rewire_probability: float,
    num_labels: int,
    seed: int = 0,
    reciprocity: float = 0.2,
    hubs: int = 0,
    hub_degree: int = 0,
) -> LabeledGraph:
    """A small-world social-network stand-in with tunable locality.

    Watts-Strogatz construction (ring lattice with ``lattice_neighbors``
    per side, shortcuts with probability ``rewire_probability``) plus
    ``hubs`` high-degree vertices.  Unlike pure preferential attachment at
    small scale, this keeps graph distances large enough that radius-3
    balls stay a small fraction of the graph -- matching the ball-size
    regime of Table 4, which the candidate-enumeration costs depend on.
    Edge directions are random; ``reciprocity`` adds back edges.
    """
    if lattice_neighbors < 1:
        raise ValueError("lattice_neighbors must be positive")
    if num_vertices <= 2 * lattice_neighbors:
        raise ValueError("num_vertices must exceed 2 * lattice_neighbors")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError("rewire_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = LabeledGraph()
    for v, label in enumerate(_random_labels(num_vertices, num_labels, rng)):
        graph.add_vertex(v, label)

    def add_undirected(u: int, v: int) -> None:
        if u == v or graph.has_edge(u, v) or graph.has_edge(v, u):
            return
        if rng.random() < 0.5:
            u, v = v, u
        graph.add_edge(u, v)
        if rng.random() < reciprocity:
            graph.add_edge(v, u)

    for v in range(num_vertices):
        for offset in range(1, lattice_neighbors + 1):
            target = (v + offset) % num_vertices
            if rng.random() < rewire_probability:
                target = rng.randrange(num_vertices)
            add_undirected(v, target)

    for _ in range(hubs):
        hub = rng.randrange(num_vertices)
        for _ in range(hub_degree):
            add_undirected(hub, rng.randrange(num_vertices))
    return graph


def relabel_uniform(graph: LabeledGraph, num_labels: int,
                    seed: int = 0) -> LabeledGraph:
    """A copy of ``graph`` with fresh uniform labels ``0..num_labels-1``.

    Used to derive the two label-alphabet variants of each dataset in
    Table 3 (``|Sigma^H|`` for hom vs ``|Sigma^S|`` for ssim) from one
    underlying topology.
    """
    rng = random.Random(seed)
    order = sorted(graph.vertices(), key=repr)
    labels = {v: rng.randrange(num_labels) for v in order}
    return LabeledGraph.from_edges(labels, graph.edges())


# ----------------------------------------------------------------------
# The worked example of Fig. 3 (reconstructed from Examples 2-8).
# ----------------------------------------------------------------------
def fig3_query(semantics: Semantics = Semantics.HOM) -> Query:
    """The query ``Q`` of Fig. 3.

    Labels: u1=B, u2=A, u3=C, u4=C, u5=D.  Edges (from the ``M_Qe`` rows in
    Example 5): (u2,u1), (u3,u1), (u4,u2), (u5,u2).  ``d_Q = 3``.
    """
    labels = {"u1": "B", "u2": "A", "u3": "C", "u4": "C", "u5": "D"}
    edges = [("u2", "u1"), ("u3", "u1"), ("u4", "u2"), ("u5", "u2")]
    return Query.from_edges(labels, edges, semantics=semantics,
                            vertex_order=("u1", "u2", "u3", "u4", "u5"))


def fig3_graph() -> LabeledGraph:
    """The data graph ``G`` of Fig. 3.

    Labels (from the ``CV`` sets of Example 4): v1=C, v2=A, v3=D, v4=A,
    v5=C, v6=B, v7=C.  Edges chosen to satisfy every claim the paper makes
    about this graph: the projected matrix rows of Example 5, the neighbor
    label sets of Example 7, and the twiglet existence facts of Example 8.
    """
    labels = {"v1": "C", "v2": "A", "v3": "D", "v4": "A",
              "v5": "C", "v6": "B", "v7": "C"}
    edges = [
        ("v2", "v6"),  # M_p(u2) = (1,0,0,0,0): H(u2)=v2 -> H(u1)=v6
        ("v5", "v6"),  # M_p(u3/u4) first column
        ("v5", "v2"),  # M_p(u3/u4) second column
        ("v3", "v2"),  # M_p(u5) = (0,1,0,0,0)
        ("v4", "v6"),  # v6's neighbors are v2, v4, v5 (Example 7)
        ("v4", "v7"),  # L(v4) = {C} (Example 7)
        ("v1", "v3"),  # places v1 within d=3 of v6 so CV(u3) contains it
    ]
    return LabeledGraph.from_edges(labels, edges)
