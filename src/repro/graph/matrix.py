"""Adjacency matrices and candidate mapping matrices (CMMs).

Prilo expresses all three LGPQ semantics through matrix operations
(Sec. 2.1).  A candidate mapping matrix ``C`` (Def. 2) is a 0/1 matrix with
exactly one 1 per row that maps each query vertex to one ball vertex with the
same label.  Because of that one-hot structure, the projected adjacency
matrix ``M_p = C . M_G . C^T`` of Alg. 2 reduces to index lookups:
``M_p[i, j] = M_G[assignment[i], assignment[j]]``.  We keep both views: the
compact assignment tuple used by the algorithms, and the explicit matrices
used by the tests to validate the algebra literally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.labeled_graph import LabeledGraph, Vertex


def vertex_order(graph: LabeledGraph) -> tuple[Vertex, ...]:
    """A deterministic vertex ordering used to index matrix rows/columns."""
    return tuple(sorted(graph.vertices(), key=repr))


def adjacency_matrix(
    graph: LabeledGraph, order: Sequence[Vertex] | None = None
) -> np.ndarray:
    """Boolean adjacency matrix ``M_G`` over ``order`` (Sec. 2.1)."""
    if order is None:
        order = vertex_order(graph)
    index = {v: i for i, v in enumerate(order)}
    if len(index) != len(order):
        raise ValueError("vertex order contains duplicates")
    matrix = np.zeros((len(order), len(order)), dtype=np.uint8)
    for u, v in graph.edges():
        if u in index and v in index:
            matrix[index[u], index[v]] = 1
    return matrix


@dataclass(frozen=True)
class CandidateMappingMatrix:
    """A CMM (Def. 2) in compact form.

    ``query_order`` fixes the row order (query vertices), ``assignment``
    holds, per row, the ball vertex that row is mapped to.  The class offers
    the dense matrix view for validation and the projection shortcut used by
    the verification algorithm.
    """

    query_order: tuple[Vertex, ...]
    assignment: tuple[Vertex, ...]

    def __post_init__(self) -> None:
        if len(self.query_order) != len(self.assignment):
            raise ValueError("one assignment per query vertex is required")

    def mapping(self) -> dict[Vertex, Vertex]:
        """The match function ``H`` as a dict (query vertex -> ball vertex)."""
        return dict(zip(self.query_order, self.assignment))

    def image(self) -> tuple[Vertex, ...]:
        return self.assignment

    def uses(self, ball_vertex: Vertex) -> bool:
        return ball_vertex in self.assignment

    def dense(self, ball_order: Sequence[Vertex]) -> np.ndarray:
        """The explicit ``|V_Q| x |V_B|`` 0/1 matrix of Def. 2."""
        column = {v: j for j, v in enumerate(ball_order)}
        matrix = np.zeros((len(self.query_order), len(ball_order)),
                          dtype=np.uint8)
        for i, target in enumerate(self.assignment):
            matrix[i, column[target]] = 1
        return matrix

    def project(self, ball: LabeledGraph) -> np.ndarray:
        """``M_p = C . M_B . C^T`` exploiting the one-hot rows of ``C``.

        ``M_p[i, j] = 1`` iff the ball has the edge between the images of
        query rows ``i`` and ``j``.
        """
        n = len(self.assignment)
        projected = np.zeros((n, n), dtype=np.uint8)
        for i, u in enumerate(self.assignment):
            for j, v in enumerate(self.assignment):
                if i != j and ball.has_edge(u, v):
                    projected[i, j] = 1
        return projected

    def project_rows(self, cache: "ProjectionCache") -> list[list[int]]:
        """``M_p`` as plain nested lists via a shared :class:`ProjectionCache`.

        Row-list form avoids per-element numpy scalar boxing on the hot
        verification path; entries equal :meth:`project`'s exactly.
        """
        return cache.project(self.assignment)

    def project_dense(self, ball: LabeledGraph,
                      ball_order: Sequence[Vertex] | None = None) -> np.ndarray:
        """The literal matrix product of Alg. 2 line 2 (for validation)."""
        if ball_order is None:
            ball_order = vertex_order(ball)
        c = self.dense(ball_order).astype(np.int64)
        m_b = adjacency_matrix(ball, ball_order).astype(np.int64)
        product = c @ m_b @ c.T
        # Same-row self products can exceed 1 only if the ball had self
        # loops, which LabeledGraph forbids; clamp defensively anyway.
        return np.minimum(product, 1).astype(np.uint8)

    def __len__(self) -> int:
        return len(self.query_order)


class ProjectionCache:
    """Incremental ``M_p`` projection over one ball's adjacency.

    Alg. 1 yields CMMs in depth-first order, so consecutive assignments
    share a (usually long) prefix.  Entries ``M_p[i, j]`` with both rows
    inside the shared prefix are unchanged between consecutive CMMs, so the
    cache keeps the previous projection and recomputes only the rows and
    columns from the first differing position on -- ``O(n * delta)`` edge
    lookups per CMM instead of ``O(n^2)``.  Per-vertex successor sets are
    materialized once per ball so each lookup is one set-membership test.

    The returned row lists are reused across calls; callers must consume a
    projection before requesting the next one (the verification loop does).
    """

    def __init__(self, ball: LabeledGraph) -> None:
        self._ball = ball
        self._succ: dict[Vertex, frozenset[Vertex]] = {}
        self._rows: list[list[int]] | None = None
        self._previous: tuple[Vertex, ...] = ()
        self._mask: int | None = None
        self._mask_previous: tuple[Vertex, ...] = ()

    def _successors(self, v: Vertex) -> frozenset[Vertex]:
        cached = self._succ.get(v)
        if cached is None:
            cached = frozenset(self._ball.successors(v))
            self._succ[v] = cached
        return cached

    def project(self, assignment: tuple[Vertex, ...]) -> list[list[int]]:
        """``M_p[i][j] = 1`` iff the ball has the edge between the images
        of query rows ``i`` and ``j`` (diagonal kept 0, as in Alg. 2)."""
        n = len(assignment)
        rows = self._rows
        previous = self._previous
        if rows is None or len(previous) != n:
            rows = [[0] * n for _ in range(n)]
            self._rows = rows
            prefix = 0
        else:
            prefix = 0
            while prefix < n and assignment[prefix] == previous[prefix]:
                prefix += 1
        for i in range(n):
            row = rows[i]
            succ = self._successors(assignment[i])
            if i < prefix:
                # Row inside the shared prefix: only columns >= prefix moved.
                for j in range(prefix, n):
                    row[j] = 1 if i != j and assignment[j] in succ else 0
            else:
                for j in range(n):
                    row[j] = 1 if i != j and assignment[j] in succ else 0
        self._previous = assignment
        return rows

    def project_mask(self, assignment: tuple[Vertex, ...]) -> int:
        """``M_p`` packed as an off-diagonal int bitmap.

        Bit layout follows :func:`repro.crypto.kernels.mask_of_pattern`:
        position ``i*(n-1) + (j if j < i else j - 1)`` holds
        ``M_p[i][j]`` (the diagonal carries no bit).  Same prefix-
        incremental update as :meth:`project`, against its own previous
        state, so the two views may be used independently -- the kernel
        path never materializes row lists at all.
        """
        n = len(assignment)
        width = n - 1
        mask = self._mask
        previous = self._mask_previous
        if mask is None or len(previous) != n:
            mask = 0
            prefix = 0
        else:
            prefix = 0
            while prefix < n and assignment[prefix] == previous[prefix]:
                prefix += 1
        row_full = (1 << width) - 1
        for i in range(n):
            base = i * width
            succ = self._successors(assignment[i])
            if i < prefix:
                # Row inside the shared prefix: only columns >= prefix
                # moved, and since i < prefix <= j those occupy the
                # contiguous bit range [base+prefix-1, base+n-1).
                segment = 0
                for j in range(prefix, n):
                    if assignment[j] in succ:
                        segment |= 1 << (j - prefix)
                low = base + prefix - 1
                mask = (mask & ~(((1 << (n - prefix)) - 1) << low)) \
                    | (segment << low)
            else:
                segment = 0
                for j in range(n):
                    if j != i and assignment[j] in succ:
                        segment |= 1 << (j if j < i else j - 1)
                mask = (mask & ~(row_full << base)) | (segment << base)
        self._mask = mask
        self._mask_previous = assignment
        return mask
