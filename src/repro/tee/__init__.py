"""Simulated trusted execution environment (Intel SGX stand-in).

No SGX hardware or SDK is available, so this subpackage provides a
*behavioural* simulation (see DESIGN.md):

* :class:`~repro.tee.enclave.Enclave` -- an isolated container object with a
  bounded protected-memory budget (the ~128 MB EPC of Sec. 2.2), metered
  ecall/ocall boundary crossings (the paper stresses that "the cost of
  interaction with the enclave is huge"), and sealed per-session state.
* :class:`~repro.tee.channel.SecureChannel` -- the user <-> enclave session
  key establishment.
* :mod:`~repro.tee.attestation` -- a measurement/report stub so the user can
  check which trusted application it is talking to.

This is NOT a security boundary: everything runs in one address space.  It
exists so the algorithms, data flows, and cost trade-offs of the paper's BF
pruning are executed faithfully and measurably.
"""

from repro.tee.attestation import AttestationReport, measure
from repro.tee.channel import SecureChannel
from repro.tee.enclave import Enclave, EnclaveMemoryError, EnclaveMetrics

__all__ = [
    "AttestationReport",
    "Enclave",
    "EnclaveMemoryError",
    "EnclaveMetrics",
    "SecureChannel",
    "measure",
]
