"""User <-> enclave secure channel (Sec. 2.2: "a secure channel is
established between users and the enclave").

Establishment simulates remote attestation followed by key provisioning:
the user verifies the enclave's report names the expected trusted
application, then installs a session key.  Afterwards the user seals
payloads with :meth:`SecureChannel.seal`; only the enclave can open them.
"""

from __future__ import annotations

from repro.crypto.stream_cipher import StreamCipher
from repro.tee.enclave import Enclave


class AttestationFailure(PermissionError):
    """The enclave's report did not match the expected application."""


class SecureChannel:
    """The user's end of an attested session with one enclave."""

    def __init__(self, cipher: StreamCipher, enclave_id: int) -> None:
        self._cipher = cipher
        self._enclave_id = enclave_id
        self.bytes_sealed = 0

    @classmethod
    def establish(cls, enclave: Enclave, session_key: bytes,
                  expected_identity: str = Enclave.APP_IDENTITY,
                  ) -> "SecureChannel":
        """Attest ``enclave`` and provision ``session_key`` into it."""
        report = enclave.attest()
        if not report.verify(expected_identity):
            raise AttestationFailure(
                f"enclave measurement does not match {expected_identity!r}")
        enclave._install_session_key(session_key)
        return cls(StreamCipher(session_key), report.enclave_id)

    @property
    def enclave_id(self) -> int:
        return self._enclave_id

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt a payload for the enclave."""
        blob = self._cipher.encrypt(plaintext)
        self.bytes_sealed += len(blob)
        return blob

    def open(self, blob: bytes) -> bytes:
        """Decrypt an enclave-produced payload (e.g. ``c_sgx``)."""
        return self._cipher.decrypt(blob)
