"""User <-> enclave secure channel (Sec. 2.2: "a secure channel is
established between users and the enclave").

Establishment simulates remote attestation followed by key provisioning:
the user verifies the enclave's report names the expected trusted
application, then installs a session key.  Afterwards the user seals
payloads with :meth:`SecureChannel.seal`; only the enclave can open them.
"""

from __future__ import annotations

from repro.crypto.stream_cipher import StreamCipher
from repro.tee.enclave import Enclave


class AttestationFailure(PermissionError):
    """The enclave's report did not match the expected application."""


class SecureChannel:
    """The user's end of an attested session with one enclave."""

    def __init__(self, cipher: StreamCipher, enclave_id: int) -> None:
        self._cipher = cipher
        self._enclave_id = enclave_id
        self.bytes_sealed = 0

    @classmethod
    def establish(cls, enclave: Enclave, session_key: bytes,
                  expected_identity: str = Enclave.APP_IDENTITY,
                  *, faults=None, fault_key: str | None = None,
                  ) -> "SecureChannel":
        """Attest ``enclave`` and provision ``session_key`` into it.

        ``faults`` (a :class:`repro.framework.faults.FaultInjector`) may
        decide the report is rejected -- the chaos stand-in for a revoked
        measurement or an unreachable attestation service.  Injected and
        genuine failures raise the same :class:`AttestationFailure`, so
        callers recover from both identically.
        """
        report = enclave.attest()
        injected = False
        if faults is not None:
            from repro.framework.faults import FaultKind

            injected = faults.should(
                FaultKind.ENCLAVE_ATTESTATION,
                fault_key if fault_key is not None else "enclave",
                detail="attestation report rejected")
        if injected or not report.verify(expected_identity):
            raise AttestationFailure(
                f"enclave measurement does not match {expected_identity!r}"
                + (" [injected]" if injected else ""))
        enclave._install_session_key(session_key)
        return cls(StreamCipher(session_key), report.enclave_id)

    @property
    def enclave_id(self) -> int:
        return self._enclave_id

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt a payload for the enclave."""
        blob = self._cipher.encrypt(plaintext)
        self.bytes_sealed += len(blob)
        return blob

    def open(self, blob: bytes) -> bytes:
        """Decrypt an enclave-produced payload (e.g. ``c_sgx``)."""
        return self._cipher.decrypt(blob)
