"""The simulated SGX enclave hosting the BF-pruning trusted application.

Sec. 4.1.2 splits BF pruning across three locations:

* *user*: computes and encrypts eta canonical tree encodings per query vertex
  and sends them into the enclave over a secure channel;
* *player, outside the enclave*: builds a per-ball bloom filter and
  transmits it through the enclave boundary;
* *player, inside the enclave*: decrypts the query encodings, tests them
  against the ball's filter query-obliviously (always exactly eta probes per
  matching query vertex -- no early exits), aggregates the outcome into one
  integer and encrypts it as the pruning message ``c_sgx``.

This class enforces the two properties SGX contributes to the paper:
isolation of the plaintext encodings (only ciphertext crosses the boundary,
and the host-side code in :mod:`repro.core.bf_pruning` never touches the
internals), and the cost model (an EPC byte budget and metered boundary
crossings, because "the cost of interaction with the enclave is huge").
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field

from repro.crypto.stream_cipher import StreamCipher
from repro.filters.bloom import BloomFilter
from repro.observability.spans import NULL_TRACER, ROLE_ENCLAVE
from repro.tee.attestation import AttestationReport, measure

#: Usable protected memory; the paper cites ~128 MB (Sec. 2.2).
DEFAULT_EPC_BYTES = 128 * 1024 * 1024

_enclave_ids = itertools.count(1)


class EnclaveMemoryError(MemoryError):
    """A load would exceed the enclave's protected-memory budget."""


class ChannelIntegrityError(ValueError):
    """A sealed user->enclave payload failed authentication or parsing.

    One exception type for every corruption symptom (MAC failure, garbage
    JSON, malformed entries) so the Player-side recovery path can treat
    "the sealed blob did not survive transit" uniformly: re-request the
    payload, and degrade to twiglet-only pruning if it keeps failing.
    """


@dataclass
class EnclaveMetrics:
    """Boundary-crossing and memory accounting for one enclave instance."""

    ecalls: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    current_memory: int = 0
    peak_memory: int = field(default=0)

    def charge_in(self, nbytes: int) -> None:
        self.ecalls += 1
        self.bytes_in += nbytes

    def charge_out(self, nbytes: int) -> None:
        self.bytes_out += nbytes

    def allocate(self, nbytes: int, limit: int) -> None:
        if self.current_memory + nbytes > limit:
            raise EnclaveMemoryError(
                f"enclave allocation of {nbytes} B exceeds the "
                f"{limit} B EPC budget ({self.current_memory} B in use)")
        self.current_memory += nbytes
        self.peak_memory = max(self.peak_memory, self.current_memory)

    def free(self, nbytes: int) -> None:
        self.current_memory = max(0, self.current_memory - nbytes)


class Enclave:
    """One SGX enclave instance on a Player server."""

    APP_IDENTITY = "prilo-bf-checker/1.0"

    def __init__(self, memory_limit_bytes: int = DEFAULT_EPC_BYTES) -> None:
        if memory_limit_bytes < 1:
            raise ValueError("memory limit must be positive")
        self._memory_limit = memory_limit_bytes
        self._enclave_id = next(_enclave_ids)
        self.metrics = EnclaveMetrics()
        #: Per-ECALL boundary tracing (``enclave`` scope).  Only sizes and
        #: call counts are emitted -- never payloads; the plaintext
        #: encodings and the ``c_sgx`` contents stay inside, exactly like
        #: the cost model's metering.  Inert by default.
        self.tracer = NULL_TRACER
        self._session: StreamCipher | None = None
        # Sealed query state: list of (label_repr, encodings tuple).
        self._encodings: list[tuple[str, tuple[int, ...]]] = []
        self._encodings_bytes = 0
        self._eta = 0

    # ------------------------------------------------------------------
    # attestation and session establishment
    # ------------------------------------------------------------------
    def attest(self) -> AttestationReport:
        return AttestationReport(measurement=measure(self.APP_IDENTITY),
                                 enclave_id=self._enclave_id)

    def _install_session_key(self, key: bytes) -> None:
        """Endpoint of the (simulated) attested key exchange; called by
        :class:`repro.tee.channel.SecureChannel` only."""
        self._session = StreamCipher(key)

    @property
    def has_session(self) -> bool:
        return self._session is not None

    # ------------------------------------------------------------------
    # trusted application: BF pruning
    # ------------------------------------------------------------------
    def load_query_encodings(self, encrypted_blob: bytes) -> None:
        """ECALL: install the user's encrypted 2-label-binary-tree encodings.

        Payload (after in-enclave decryption) is JSON
        ``{"eta": int, "entries": [[label_repr, [enc, ...]], ...]}``; every
        entry must carry exactly ``eta`` encodings (the user pads with 0s,
        Sec. 4.1.2), which is what makes the later checks oblivious.
        """
        if self._session is None:
            raise PermissionError("no attested session established")
        self.metrics.charge_in(len(encrypted_blob))
        try:
            payload = json.loads(self._session.decrypt(encrypted_blob))
            eta = int(payload["eta"])
            if eta < 1:
                raise ValueError("eta must be positive")
            entries: list[tuple[str, tuple[int, ...]]] = []
            for label_repr, encodings in payload["entries"]:
                if len(encodings) != eta:
                    raise ValueError(
                        f"entry for label {label_repr} has {len(encodings)} "
                        f"encodings, expected eta={eta}")
                entries.append((label_repr,
                                tuple(int(e) for e in encodings)))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            # Includes StreamCipher's AuthenticationError (a ValueError):
            # the sealed payload was corrupted in transit or is malformed.
            raise ChannelIntegrityError(
                f"sealed query-encoding payload rejected: {exc}") from exc
        nbytes = sum(8 * eta + len(l) for l, _ in entries)
        self._free_encodings()
        self.metrics.allocate(nbytes, self._memory_limit)
        self._encodings = entries
        self._encodings_bytes = nbytes
        self._eta = eta
        self.tracer.event("ecall_load_encodings", ROLE_ENCLAVE,
                          bytes_in=len(encrypted_blob),
                          ecalls=self.metrics.ecalls)

    def _free_encodings(self) -> None:
        if self._encodings_bytes:
            self.metrics.free(self._encodings_bytes)
            self._encodings = []
            self._encodings_bytes = 0
            self._eta = 0

    def check_ball(self, filter_blob: bytes, center_label_repr: str) -> bytes:
        """ECALL: test the loaded encodings against one ball's bloom filter.

        Returns the encrypted pruning message ``c_sgx`` whose plaintext is
        the number of query vertices (with the ball center's label) whose
        eta encodings all pass the filter.  A plaintext of 0 marks the ball
        spurious (Prop. 3).

        The probe loop is deliberately free of early exits: every matching
        query vertex always issues exactly eta membership tests, so the
        enclave's memory access pattern is independent of the query's edge
        structure (Prop. 7).
        """
        if self._session is None:
            raise PermissionError("no attested session established")
        if not self._encodings:
            raise RuntimeError("query encodings not loaded")
        self.metrics.charge_in(len(filter_blob))
        self.metrics.allocate(len(filter_blob), self._memory_limit)
        try:
            ball_filter = BloomFilter.from_bytes(filter_blob)
            matched_vertices = 0
            for label_repr, encodings in self._encodings:
                if label_repr != center_label_repr:
                    continue
                hits = 0
                for encoding in encodings:  # constant eta probes, no break
                    hits += 1 if encoding in ball_filter else 0
                matched_vertices += 1 if hits == self._eta else 0
            plaintext = matched_vertices.to_bytes(8, "big")
            result = self._session.encrypt(plaintext)
            self.metrics.charge_out(len(result))
            self.tracer.event("ecall_check_ball", ROLE_ENCLAVE,
                              bytes_in=len(filter_blob),
                              bytes_out=len(result))
            return result
        finally:
            self.metrics.free(len(filter_blob))

    # ------------------------------------------------------------------
    @property
    def memory_limit_bytes(self) -> int:
        return self._memory_limit
