"""Attestation stub for the simulated enclave.

Real SGX remote attestation proves to the user that a specific enclave
binary (identified by its measurement, MRENCLAVE) runs on genuine hardware.
The simulation reduces this to a measurement hash over the trusted
application's identity string, carried in a report the user verifies before
provisioning the session key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def measure(app_identity: str) -> bytes:
    """The simulated MRENCLAVE of a trusted application."""
    return hashlib.sha256(f"mrenclave:{app_identity}"
                          .encode("utf-8")).digest()


@dataclass(frozen=True)
class AttestationReport:
    """A (simulated) quote: measurement + enclave instance id."""

    measurement: bytes
    enclave_id: int

    def verify(self, expected_app_identity: str) -> bool:
        """User-side check that the report names the expected application."""
        return self.measurement == measure(expected_app_identity)
