"""Role-scoped protocol tracing spans with construction-time redaction.

Every span is stamped with the protocol party that *observed* it:
``user``, ``dealer``, ``player:<k>``, ``enclave``, or ``sp`` (the
service-provider-side serving machinery: admission, journal, store I/O).
The role is not cosmetic -- it is the enforcement boundary.  The paper's
privacy analysis (Sec. 5/6) bounds what the SP side may learn about a
query to its *access pattern*: counts, sizes, orderings, wall-clocks and
public protocol coordinates.  A tracing layer that casually attached a
decrypted verdict or a ``c_sgx`` payload to a dealer-scope span would
widen that bound through the back door of the ops stack.

So redaction is not a filter applied at export time: it is enforced **at
span construction**.  Building a :class:`Span` whose role is in a
restricted scope (``dealer``/``player``/``enclave``/``sp``) with an
attribute key outside the allowed-observation model, or with a value of
a type that could smuggle plaintext (bytes, arbitrary strings, nested
containers), raises :class:`RedactionError` on the spot -- the trace
file can only ever contain what the paper already concedes the SP sees.
The allowed-observation model itself lives in
:mod:`repro.analysis.leakage` (``SPAN_OBSERVABLE_KEYS`` /
``SPAN_STRING_KEYS``) next to the rest of the leakage accounting, and
the ``leakage-audit`` CLI mode (:mod:`repro.observability.audit`)
re-checks a *serialized* trace against the same model -- catching spans
injected past the constructor through :class:`UncheckedAttrs` (the
audit's negative-control hook) or edited on disk.

``user``-scope spans are exempt: the user holds the keys and owns the
plaintext; redacting their own view would protect nobody.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

#: The five role scopes of the protocol (Sec. 2.2's parties plus the
#: serving-layer ``sp`` umbrella for machinery no single Player owns).
ROLE_USER = "user"
ROLE_DEALER = "dealer"
ROLE_ENCLAVE = "enclave"
ROLE_SP = "sp"

#: Role classes whose spans are redaction-checked (everything the
#: service provider side could observe or exfiltrate through a trace).
RESTRICTED_ROLE_CLASSES = frozenset({"dealer", "player", "enclave", "sp"})

#: Every legal role class (``player:<k>`` normalizes to ``player``).
VALID_ROLE_CLASSES = frozenset({"user"}) | RESTRICTED_ROLE_CLASSES


def player_role(player_id: int) -> str:
    """The role string of Player ``k``: ``player:<k>``."""
    return f"player:{player_id}"


def role_class(role: str) -> str:
    """Normalize a role to its class (``player:3`` -> ``player``)."""
    return "player" if role.startswith("player:") else role


class RedactionError(ValueError):
    """A span attribute violates the role's redaction policy.

    Raised at :class:`Span` construction -- never at export -- so a
    leaking attribute can not even transiently exist in a trace buffer.
    """


class UncheckedAttrs(dict):
    """Attribute dict that bypasses construction-time redaction.

    This exists for exactly one purpose: the leakage audit's negative
    control.  Tests (and the hidden ``--trace-taint`` CLI hook) use it to
    plant a query-dependent attribute in a restricted-scope span and then
    assert that ``repro run --leakage-audit`` fails with a nonzero exit.
    Production code never constructs one.
    """


def _policy_model() -> tuple[frozenset, frozenset]:
    """The allowed-observation model, imported lazily from
    :mod:`repro.analysis.leakage` (a module-level import would cycle:
    leakage -> framework.prilo -> executor -> this module)."""
    global _ALLOWED_KEYS, _STRING_KEYS
    if _ALLOWED_KEYS is None:
        from repro.analysis.leakage import (
            SPAN_OBSERVABLE_KEYS,
            SPAN_STRING_KEYS,
        )
        _ALLOWED_KEYS = SPAN_OBSERVABLE_KEYS
        _STRING_KEYS = SPAN_STRING_KEYS
    return _ALLOWED_KEYS, _STRING_KEYS


_ALLOWED_KEYS: frozenset | None = None
_STRING_KEYS: frozenset | None = None


class RedactionPolicy:
    """The construction-time check every restricted-scope span passes.

    Two rules, both keyed on the allowed-observation model of
    :mod:`repro.analysis.leakage`:

    1. **Key allowlist** -- the attribute key must be one the paper's
       access-pattern bound already concedes (a count, a size, a public
       protocol coordinate).  ``ball_answer``, ``verdict``, ``c_sgx`` or
       anything else query-dependent has no key to hide under.
    2. **Value shape** -- values must be ``int``/``float``/``bool``/
       ``None``; strings are allowed only under the few keys that name
       public coordinates (share keys, modes, backends), and bytes or
       containers are never allowed.  A ciphertext, a decrypted verdict
       or a subgraph cannot be encoded into a number without the code
       doing so visibly at the call site.
    """

    def check(self, role: str, name: str,
              attrs: Mapping[str, object]) -> None:
        cls = role_class(role)
        if cls not in VALID_ROLE_CLASSES:
            raise RedactionError(
                f"span {name!r} has unknown role {role!r}; valid roles: "
                f"user, dealer, player:<k>, enclave, sp")
        if cls not in RESTRICTED_ROLE_CLASSES:
            return
        allowed, string_keys = _policy_model()
        for key, value in attrs.items():
            if key not in allowed:
                raise RedactionError(
                    f"span {name!r} ({role}): attribute {key!r} is not in "
                    f"the allowed-observation model for SP-side scopes "
                    f"(repro.analysis.leakage.SPAN_OBSERVABLE_KEYS)")
            if value is None or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                continue
            if isinstance(value, str):
                if key in string_keys:
                    continue
                raise RedactionError(
                    f"span {name!r} ({role}): attribute {key!r} carries a "
                    f"string but is not a declared public coordinate "
                    f"(repro.analysis.leakage.SPAN_STRING_KEYS)")
            raise RedactionError(
                f"span {name!r} ({role}): attribute {key!r} has type "
                f"{type(value).__name__}; restricted scopes may only "
                f"carry numbers, bools, and declared coordinate strings")


#: The process-wide policy; a singleton because the model is static.
REDACTION_POLICY = RedactionPolicy()


@dataclass(frozen=True)
class Span:
    """One traced protocol step.

    ``start_s`` is seconds since the owning tracer's epoch,
    ``duration_s`` the step's wall time (0.0 for point events).  The
    redaction policy runs in ``__post_init__`` -- i.e. at construction
    -- unless ``attrs`` is an :class:`UncheckedAttrs` (the audit's
    negative-control hook).
    """

    name: str
    role: str
    start_s: float
    duration_s: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.attrs, UncheckedAttrs):
            REDACTION_POLICY.check(self.role, self.name, self.attrs)

    def as_dict(self) -> dict:
        return {"name": self.name, "role": self.role,
                "start_s": round(self.start_s, 9),
                "duration_s": round(self.duration_s, 9),
                "attrs": dict(self.attrs)}


class _SpanContext:
    """``with tracer.span(...)`` body: times the block, lets the call
    site add attributes, and constructs (hence redaction-checks) the
    span at ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_role", "_attrs", "_started")

    def __init__(self, tracer: "Tracer", name: str, role: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._role = role
        self._attrs = attrs
        self._started = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (checked when the span is built)."""
        self._attrs[key] = value

    def __enter__(self) -> "_SpanContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        ended = time.perf_counter()
        tracer = self._tracer
        tracer.record(Span(
            name=self._name, role=self._role,
            start_s=self._started - tracer.epoch,
            duration_s=ended - self._started,
            attrs=self._attrs))


class _NullSpanContext:
    """No-op stand-in so untraced runs pay one attribute lookup, not a
    span allocation."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    Installed by default on every traceable component so the hot paths
    stay branch-light when tracing is off (the <3% overhead bound of
    ``benchmarks/bench_trace_overhead.py`` is measured against *this*).
    """

    enabled = False

    @property
    def spans(self) -> tuple:
        return ()

    def span(self, name: str, role: str, **attrs: object):
        return _NULL_CONTEXT

    def event(self, name: str, role: str, duration_s: float = 0.0,
              **attrs: object) -> None:
        pass

    def record(self, span: Span) -> None:
        pass


#: Shared inert instance (stateless, safe to share and to pickle).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects redaction-checked spans for one run/serve invocation.

    Not thread-safe by design: the engine serves queries strictly in
    submission order, and executor spans are emitted in the parent at
    harvest time, so a single-threaded append list suffices.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: perf_counter value all ``start_s`` offsets are relative to.
        self.epoch = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self.epoch

    def span(self, name: str, role: str, **attrs: object) -> _SpanContext:
        """Context manager timing a block into one span."""
        return _SpanContext(self, name, role, attrs)

    def event(self, name: str, role: str, duration_s: float = 0.0,
              **attrs: object) -> None:
        """Record a point (or externally-timed) span immediately."""
        self.record(Span(name=name, role=role, start_s=self.now(),
                         duration_s=duration_s, attrs=attrs))

    def record(self, span: Span) -> None:
        self.spans.append(span)

    def inject_unchecked(self, name: str, role: str,
                         **attrs: object) -> None:
        """Plant a span that bypasses construction-time redaction.

        The leakage audit's negative control: an honest trace never
        contains one, and ``--leakage-audit`` must flag any trace that
        does.  See :class:`UncheckedAttrs`.
        """
        self.record(Span(name=name, role=role, start_s=self.now(),
                         duration_s=0.0, attrs=UncheckedAttrs(attrs)))


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "REDACTION_POLICY",
    "RESTRICTED_ROLE_CLASSES",
    "ROLE_DEALER",
    "ROLE_ENCLAVE",
    "ROLE_SP",
    "ROLE_USER",
    "RedactionError",
    "RedactionPolicy",
    "Span",
    "Tracer",
    "UncheckedAttrs",
    "VALID_ROLE_CLASSES",
    "player_role",
    "role_class",
]
