"""The ``leakage-audit`` mode: diff a full trace against the paper's
access-pattern bound.

Construction-time redaction (:mod:`repro.observability.spans`) is the
first line of defense, but it only binds spans built through the public
constructor *in this process*.  The audit closes the loop on the
artifact itself: given the spans of a run -- live objects or a trace
file read back from disk -- it re-checks every restricted-scope span
against the allowed-observation model in
:mod:`repro.analysis.leakage` and reports every attribute that exceeds
the bound.  ``repro run --leakage-audit`` fails with exit code 5 when
the report is non-empty, which is exactly what happens when a test hook
plants a query-dependent attribute via
:meth:`~repro.observability.spans.Tracer.inject_unchecked`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.spans import (
    RESTRICTED_ROLE_CLASSES,
    Span,
    role_class,
)


@dataclass(frozen=True)
class LeakageViolation:
    """One attribute that leaks beyond the access-pattern bound."""

    span_name: str
    role: str
    attribute: str
    reason: str

    def __str__(self) -> str:
        return (f"span {self.span_name!r} ({self.role}) attribute "
                f"{self.attribute!r}: {self.reason}")


@dataclass
class LeakageAuditReport:
    """Outcome of auditing one trace."""

    checked_spans: int = 0
    restricted_spans: int = 0
    violations: list[LeakageViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "checked_spans": self.checked_spans,
            "restricted_spans": self.restricted_spans,
            "violations": [vars(v) for v in self.violations],
            "ok": self.ok,
        }

    def summary_line(self) -> str:
        verdict = "ok" if self.ok else "LEAKAGE"
        return (f"leakage-audit: {verdict} ({self.restricted_spans} "
                f"restricted of {self.checked_spans} spans, "
                f"{len(self.violations)} violation(s))")


def _allowed_model() -> tuple[frozenset, frozenset]:
    from repro.analysis.leakage import (
        SPAN_OBSERVABLE_KEYS,
        SPAN_STRING_KEYS,
    )
    return SPAN_OBSERVABLE_KEYS, SPAN_STRING_KEYS


def _check_attr(name: str, role: str, key: str, value: object,
                allowed: frozenset, string_keys: frozenset,
                out: list[LeakageViolation]) -> None:
    if key not in allowed:
        out.append(LeakageViolation(
            span_name=name, role=role, attribute=key,
            reason="attribute key is outside the allowed-observation "
                   "model (repro.analysis.leakage.SPAN_OBSERVABLE_KEYS)"))
        return
    if value is None or isinstance(value, (bool, int, float)):
        return
    if isinstance(value, str) and key in string_keys:
        return
    out.append(LeakageViolation(
        span_name=name, role=role, attribute=key,
        reason=f"value of type {type(value).__name__} could carry "
               f"query-dependent plaintext; only numbers, bools and "
               f"declared coordinate strings are within the bound"))


def audit_spans(spans: list[Span] | list[dict]) -> LeakageAuditReport:
    """Audit spans (live or deserialized) against the paper's bound.

    ``user``-scope spans are skipped: the user owns the plaintext and
    the trace file is the user's artifact.  Every ``dealer``, ``player``,
    ``enclave`` and ``sp`` span is checked attribute by attribute.
    """
    allowed, string_keys = _allowed_model()
    report = LeakageAuditReport()
    for span in spans:
        if isinstance(span, Span):
            name, role, attrs = span.name, span.role, span.attrs
        else:
            name = str(span.get("name", "?"))
            role = str(span.get("role", "?"))
            attrs = span.get("attrs", {}) or {}
        report.checked_spans += 1
        if role_class(role) not in RESTRICTED_ROLE_CLASSES:
            continue
        report.restricted_spans += 1
        for key, value in attrs.items():
            _check_attr(name, role, key, value, allowed, string_keys,
                        report.violations)
    return report


__all__ = [
    "LeakageAuditReport",
    "LeakageViolation",
    "audit_spans",
]
