"""Trace and metrics exporters.

Three consumers, three formats:

* :func:`write_trace` / :func:`read_trace` -- the JSON-lines trace file
  behind ``repro run --trace``: one ``meta`` header line, then one line
  per span.  Line-oriented so a crashed run still leaves a parseable
  prefix, and so ``grep role=player`` works without tooling.
* :func:`prometheus_text` -- a Prometheus text-exposition snapshot of a
  batch report (``serve-batch --metrics-out``): counters for latency,
  bytes, cache and admission state that a scrape-file collector (e.g.
  node_exporter's textfile module) can ship as-is.
* :func:`summarize_spans` / :func:`render_summary` -- the per-role /
  per-phase latency histograms behind ``repro trace summarize``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.observability.spans import Span, role_class

#: Trace-file format version (bump on incompatible line-shape changes).
TRACE_FORMAT = 1


# ---------------------------------------------------------------------------
# JSON-lines trace file
# ---------------------------------------------------------------------------
def write_trace(path: str | Path, spans: list[Span],
                meta: dict | None = None) -> Path:
    """Write one meta line plus one line per span; returns the path."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        header = {"type": "meta", "format": TRACE_FORMAT,
                  "spans": len(spans)}
        if meta:
            header.update(meta)
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for span in spans:
            record = {"type": "span"}
            record.update(span.as_dict())
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_trace(path: str | Path) -> tuple[dict, list[dict]]:
    """Parse a trace file back into ``(meta, span dicts)``.

    Works on the raw dicts, not :class:`Span` objects, on purpose: the
    leakage audit must be able to examine attributes that would never
    survive Span's construction-time redaction.
    """
    meta: dict = {}
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "meta":
                meta = record
            elif record.get("type") == "span":
                spans.append(record)
    return meta, spans


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(round(value, 9))


def _labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(report, spans: list[Span] | None = None) -> str:
    """Render a :class:`~repro.framework.server.BatchReport` (plus an
    optional span list) as Prometheus text exposition.

    Everything exported is already in the report's operator summary --
    the exporter adds a format, not a leakage surface.
    """
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str,
               samples: list[tuple[dict, float]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_fmt_value(value)}")

    summary = report.summary()
    metric("repro_batch_queries_total", "counter",
           "Completed queries in the batch.",
           [({}, summary["queries"])])
    metric("repro_batch_makespan_seconds", "gauge",
           "Wall-clock of the whole serve call.",
           [({}, summary["makespan_seconds"])])
    metric("repro_query_latency_seconds", "gauge",
           "Per-query end-to-end latency.",
           [({"query": str(i)}, latency)
            for i, latency in enumerate(report.latencies)])
    cache = summary["cmm_cache"]
    metric("repro_cmm_cache_events_total", "counter",
           "CMM cache hit/miss/eviction counters.",
           [({"event": name}, cache[name])
            for name in ("hits", "misses", "evictions")])
    if "admission" in summary:
        metric("repro_admission_total", "counter",
               "Admission-control outcomes.",
               [({"outcome": key}, value)
                for key, value in summary["admission"].items()])
    if "journal" in summary:
        metric("repro_journal_records_total", "counter",
               "Write-ahead journal counters.",
               [({"counter": key}, value)
                for key, value in summary["journal"].items()])
    sizes_total: dict[str, int] = {}
    for result in report.results:
        for fname, value in vars(result.metrics.sizes).items():
            sizes_total[fname] = sizes_total.get(fname, 0) + value
    if sizes_total:
        metric("repro_message_bytes_total", "counter",
               "Protocol message bytes by channel (MessageSizes).",
               [({"channel": key}, value)
                for key, value in sorted(sizes_total.items())])
    ops_total: dict[tuple[str, str, str], int] = {}
    for result in report.results:
        counter = getattr(result.metrics, "ops", None)
        if counter is None:
            continue
        for (phase, role), counts in counter.buckets.items():
            for op, value in counts.as_dict().items():
                key = (op, phase, role)
                ops_total[key] = ops_total.get(key, 0) + value
    if ops_total:
        metric("repro_crypto_ops_total", "counter",
               "Exact crypto op counts (modmul/modexp/table_build) by "
               "phase and role; table_build is a modmul subset.",
               [({"op": op, "phase": phase, "role": role}, value)
                for (op, phase, role), value in sorted(ops_total.items())])
    if spans:
        per_group: dict[tuple[str, str], tuple[int, float]] = {}
        for span in spans:
            group = (role_class(span.role), span.name)
            count, total = per_group.get(group, (0, 0.0))
            per_group[group] = (count + 1, total + span.duration_s)
        metric("repro_span_seconds_count", "counter",
               "Traced spans by role class and phase.",
               [({"role": role, "phase": name}, count)
                for (role, name), (count, _) in sorted(per_group.items())])
        metric("repro_span_seconds_sum", "counter",
               "Traced wall seconds by role class and phase.",
               [({"role": role, "phase": name}, total)
                for (role, name), (_, total) in sorted(per_group.items())])
    return "\n".join(lines) + "\n"


def write_metrics(path: str | Path, report,
                  spans: list[Span] | None = None) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(report, spans), encoding="utf-8")
    return path


def gateway_prometheus_text(report,
                            spans: list[Span] | None = None) -> str:
    """Prometheus text exposition of a
    :class:`~repro.framework.gateway.GatewayReport`.

    The headline family is ``repro_verify_total``: certificates checked,
    forgeries detected, shards evicted, and answers withheld, so an
    alert on ``result="forgery"`` fires the moment any shard lies --
    long before an operator reads the exit code.
    """
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str,
               samples: list[tuple[dict, float]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_fmt_value(value)}")

    summary = report.summary()
    metric("repro_gateway_queries_total", "counter",
           "Queries served through the scatter-gather gateway.",
           [({}, summary["queries"])])
    metric("repro_gateway_shards", "gauge",
           "Shard fleet size at the start of the run.",
           [({}, summary["shards"])])
    metric("repro_gateway_makespan_seconds", "gauge",
           "Wall-clock of the whole gateway run.",
           [({}, summary["makespan_seconds"])])
    statuses: dict[str, int] = {}
    for status in summary["statuses"]:
        statuses[str(status)] = statuses.get(str(status), 0) + 1
    metric("repro_gateway_outcomes_total", "counter",
           "Merged per-query outcomes by status.",
           [({"status": status}, count)
            for status, count in sorted(statuses.items())])
    verify = summary.get("verify") or {}
    metric("repro_verify_total", "counter",
           "Answer-verification events: certificates checked, forgeries "
           "detected, shards evicted, answers withheld (forged with no "
           "honest member left).",
           [({"result": "checked"}, verify.get("proofs_checked", 0)),
            ({"result": "forgery"}, verify.get("forgeries_detected", 0)),
            ({"result": "evicted"}, len(verify.get("evictions", []))),
            ({"result": "withheld"}, verify.get("forged_answers", 0))])
    metric("repro_verify_proof_bytes_total", "counter",
           "Merkle multiproof bytes verified at the merge boundary.",
           [({}, verify.get("proof_bytes", 0))])
    metric("repro_verify_seconds_total", "counter",
           "Wall seconds spent verifying certificates at the gateway.",
           [({}, verify.get("verify_seconds", 0.0))])
    if spans:
        per_group: dict[tuple[str, str], int] = {}
        for span in spans:
            group = (role_class(span.role), span.name)
            per_group[group] = per_group.get(group, 0) + 1
        metric("repro_span_seconds_count", "counter",
               "Traced spans by role class and phase.",
               [({"role": role, "phase": name}, count)
                for (role, name), count in sorted(per_group.items())])
    return "\n".join(lines) + "\n"


def write_gateway_metrics(path: str | Path, report,
                          spans: list[Span] | None = None) -> Path:
    path = Path(path)
    path.write_text(gateway_prometheus_text(report, spans),
                    encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# per-role / per-phase latency histograms (``repro trace summarize``)
# ---------------------------------------------------------------------------
#: Log-scale bucket upper bounds, in seconds (microseconds to minutes).
_BUCKETS = tuple(10.0 ** e for e in range(-6, 3))


@dataclass
class PhaseStats:
    """Latency distribution of one (role class, phase name) group."""

    role: str
    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    #: Span count per log-scale bucket (see ``_BUCKETS``; the last slot
    #: is the overflow bucket).
    buckets: list[int] = field(default_factory=lambda: [0] * (len(_BUCKETS) + 1))

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.max_s = max(self.max_s, duration_s)
        for i, bound in enumerate(_BUCKETS):
            if duration_s <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def summarize_spans(spans: list[dict]) -> dict[tuple[str, str], PhaseStats]:
    """Group span dicts (from :func:`read_trace`) by (role class, name)."""
    groups: dict[tuple[str, str], PhaseStats] = {}
    for span in spans:
        role = role_class(str(span.get("role", "?")))
        name = str(span.get("name", "?"))
        stats = groups.get((role, name))
        if stats is None:
            stats = groups[(role, name)] = PhaseStats(role=role, name=name)
        stats.add(float(span.get("duration_s", 0.0)))
    return groups


def _bar(count: int, peak: int, width: int = 20) -> str:
    if not count or not peak:
        return ""
    # Log scaling keeps one giant bucket from flattening the rest.
    filled = max(1, round(width * math.log1p(count) / math.log1p(peak)))
    return "#" * filled


def render_summary(groups: dict[tuple[str, str], PhaseStats]) -> str:
    """Human-oriented per-role/per-phase histogram block."""
    if not groups:
        return "trace is empty: no spans\n"
    lines: list[str] = []
    by_role: dict[str, list[PhaseStats]] = {}
    for stats in groups.values():
        by_role.setdefault(stats.role, []).append(stats)
    for role in sorted(by_role):
        phases = sorted(by_role[role], key=lambda s: -s.total_s)
        total = sum(s.total_s for s in phases)
        lines.append(f"[{role}]  {sum(s.count for s in phases)} spans, "
                     f"{total:.4f}s total")
        for stats in phases:
            lines.append(
                f"  {stats.name:<22} n={stats.count:<5} "
                f"mean={stats.mean_s * 1e3:8.3f}ms "
                f"max={stats.max_s * 1e3:8.3f}ms "
                f"total={stats.total_s:8.4f}s")
            peak = max(stats.buckets)
            if peak == 0:
                continue
            for i, count in enumerate(stats.buckets):
                if not count:
                    continue
                if i < len(_BUCKETS):
                    label = f"<={_BUCKETS[i]:.0e}s"
                else:
                    label = f"> {_BUCKETS[-1]:.0e}s"
                lines.append(f"    {label:<10} {count:>6} "
                             f"{_bar(count, peak)}")
        lines.append("")
    return "\n".join(lines)


__all__ = [
    "PhaseStats",
    "TRACE_FORMAT",
    "gateway_prometheus_text",
    "prometheus_text",
    "read_trace",
    "render_summary",
    "summarize_spans",
    "write_gateway_metrics",
    "write_metrics",
    "write_trace",
]
