"""Privacy-aware observability: role-scoped tracing spans, exporters,
and the leakage audit (DESIGN.md section 10).

* :mod:`~repro.observability.spans` -- :class:`Tracer`/:class:`Span`
  with the construction-time redaction policy; every traceable
  component holds a :data:`NULL_TRACER` until one is installed.
* :mod:`~repro.observability.export` -- JSONL trace files, Prometheus
  text snapshots, and the ``trace summarize`` histograms.
* :mod:`~repro.observability.audit` -- the ``--leakage-audit`` diff of a
  full trace against :mod:`repro.analysis.leakage`'s allowed-observation
  model.

``audit`` and ``export`` are loaded lazily: framework modules import
:mod:`~repro.observability.spans` (dependency-free), while the audit
pulls in :mod:`repro.analysis.leakage` -- importing it eagerly here
would cycle through :mod:`repro.framework.prilo`.
"""

from repro.observability.spans import (
    NULL_TRACER,
    RESTRICTED_ROLE_CLASSES,
    ROLE_DEALER,
    ROLE_ENCLAVE,
    ROLE_SP,
    ROLE_USER,
    VALID_ROLE_CLASSES,
    NullTracer,
    RedactionError,
    RedactionPolicy,
    Span,
    Tracer,
    UncheckedAttrs,
    player_role,
    role_class,
)

_LAZY = {
    "audit_spans": "repro.observability.audit",
    "LeakageAuditReport": "repro.observability.audit",
    "LeakageViolation": "repro.observability.audit",
    "gateway_prometheus_text": "repro.observability.export",
    "prometheus_text": "repro.observability.export",
    "read_trace": "repro.observability.export",
    "render_summary": "repro.observability.export",
    "summarize_spans": "repro.observability.export",
    "write_gateway_metrics": "repro.observability.export",
    "write_metrics": "repro.observability.export",
    "write_trace": "repro.observability.export",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RESTRICTED_ROLE_CLASSES",
    "ROLE_DEALER",
    "ROLE_ENCLAVE",
    "ROLE_SP",
    "ROLE_USER",
    "RedactionError",
    "RedactionPolicy",
    "Span",
    "Tracer",
    "UncheckedAttrs",
    "VALID_ROLE_CLASSES",
    "player_role",
    "role_class",
    *sorted(_LAZY),
]
