"""Query verification -- Alg. 2 (``Verify``) and the per-ball aggregation.

Given a CMM ``C``, Alg. 2 projects the ball's adjacency matrix through ``C``
(``M_p = C . M_B . C^T``) and multiplies together the encodings
``M_Qe(i, j)`` of every position where ``M_p(i, j) = 0``.  The product has a
factor ``q`` iff the query has an edge the candidate lacks -- a matching
violation against Def. 1 condition (2).

Faithful refinements (see DESIGN.md):

* positions where ``M_p(i, j) = 1`` multiply the user-chosen encryption of
  1 (``c_one``), so every product consists of exactly
  ``|V_Q| * (|V_Q| - 1)`` factors -- required for the per-ball sums of
  Alg. 3 line 7 to be homomorphically well-formed, and making the operation
  sequence literally position-independent;
* diagonal positions are skipped: ``M_Q(i, i) = 0`` always (no self loops),
  so they contribute a public constant factor of 1 -- skipping them buys a
  full ``|V_Q|`` factors of overflow headroom without touching privacy;
* overflow handling delegates to :mod:`repro.core.aggregation`: products
  and sums are chunked whenever the budget requires, with layouts that
  depend only on public parameters.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.aggregation import (
    BallCiphertextResult,
    ChunkPlan,
    aggregate_items,
    chunked_product,
    decide_positive,
)
from repro.crypto.cgbe import CGBECiphertext, CGBEPublicParams, CiphertextPowerCache
from repro.crypto.kernels import (
    DEFAULT_KERNELS,
    KernelConfig,
    MaskedProductTable,
    offdiagonal_bases,
)
from repro.graph.ball import Ball
from repro.graph.matrix import CandidateMappingMatrix, ProjectionCache
from repro.graph.query import Query


def verify_plaintext(query: Query, q: int, ball: Ball,
                     cmm: CandidateMappingMatrix) -> int:
    """Alg. 2 on plaintext encodings; returns the aggregated integer ``r``.

    ``r % q != 0`` iff ``cmm`` is a valid match function under hom
    (sub-iso shares this check; injectivity is handled at enumeration).
    """
    from repro.core.encoding import materialize_query_matrix

    encoded = materialize_query_matrix(query, q)
    projected = cmm.project(ball.graph)
    r = 1
    n = query.size
    for i in range(n):
        for j in range(n):
            if i != j and projected[i, j] == 0:
                r *= int(encoded[i, j])
    return r


def verification_plan(params: CGBEPublicParams, query: Query,
                      expected_terms: int = 1 << 16) -> ChunkPlan:
    """The chunk layout for Alg. 2 products: ``|V_Q| * (|V_Q| - 1)``
    off-diagonal factors per CMM."""
    return ChunkPlan.plan(params, query.size * (query.size - 1),
                          expected_terms=expected_terms)


def verification_multiexp(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    plan: ChunkPlan,
    config: KernelConfig = DEFAULT_KERNELS,
) -> MaskedProductTable:
    """The shared Straus table for Alg. 2 products of one query message.

    The base vector (the encrypted matrix's off-diagonal entries) is
    identical for every ball and every CMM of a query, so one table --
    window subset products plus the per-pattern chunk memo -- serves an
    entire executor share.  Results are value-identical to
    :func:`verify_projected_rows`.
    """
    return MaskedProductTable(params, offdiagonal_bases(encrypted_matrix),
                              c_one, plan, config)


def verify_ciphertext(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    ball: Ball,
    cmm: CandidateMappingMatrix,
    plan: ChunkPlan,
    projection_cache: ProjectionCache | None = None,
    pad_cache: CiphertextPowerCache | None = None,
) -> list[CGBECiphertext]:
    """Alg. 2 under CGBE: the SP-side product(s) for one CMM.

    Returns ``plan.chunks_per_item`` ciphertexts; every position of the
    encrypted matrix is touched in the same order regardless of values
    (query-obliviousness, proven in App. A.2).

    ``projection_cache`` / ``pad_cache`` are the per-ball fast-path state
    shared across the CMMs of one ball (prefix-incremental projection and
    memoized ``c_one`` powers); results are identical with or without them.
    """
    n = len(cmm)
    if projection_cache is not None:
        rows = cmm.project_rows(projection_cache)
    else:
        dense = cmm.project(ball.graph)
        rows = [[int(dense[i, j]) for j in range(n)] for i in range(n)]
    return verify_projected_rows(params, encrypted_matrix, c_one, rows,
                                 plan, pad_cache=pad_cache)


def verify_projected_rows(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    rows: "list | tuple",
    plan: ChunkPlan,
    pad_cache: CiphertextPowerCache | None = None,
) -> list[CGBECiphertext]:
    """The SP-side product(s) for one *projected matrix* ``M_p``.

    The factor list -- and hence the result -- is a function of the
    projected 0/1 pattern alone, not of which CMM produced it.  The batch
    server exploits exactly this: CMMs of one ball sharing a projection
    pattern share one product (see ``repro.framework.server``).  Operation
    order is identical to :func:`verify_ciphertext`'s.
    """
    n = len(rows)
    factors: list[CGBECiphertext] = []
    for i in range(n):
        projected_row = rows[i]
        matrix_row = encrypted_matrix[i]
        for j in range(n):
            if i == j:
                continue
            if projected_row[j] == 0:
                factors.append(matrix_row[j])
            else:
                factors.append(c_one)
    return chunked_product(params, factors, c_one, plan, pad_cache=pad_cache)


def verify_ball(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    ball: Ball,
    cmms: list[CandidateMappingMatrix],
    plan: ChunkPlan,
    bypassed: bool = False,
) -> BallCiphertextResult:
    """Alg. 3 lines 6-7: verify every CMM of a ball and aggregate.

    ``bypassed`` propagates the footnote-6 enumeration cutoff: the ball is
    reported unpruned rather than risking an unsound verdict on a partial
    CMM set.
    """
    if bypassed:
        return BallCiphertextResult(ball_id=ball.ball_id, bypassed=True)
    projection_cache = ProjectionCache(ball.graph)
    pad_cache = CiphertextPowerCache(params, c_one)
    chunk_lists = [
        verify_ciphertext(params, encrypted_matrix, c_one, ball, cmm, plan,
                          projection_cache=projection_cache,
                          pad_cache=pad_cache)
        for cmm in cmms
    ]
    return aggregate_items(params, ball.ball_id, chunk_lists, plan)


def verify_ball_streaming(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    ball: Ball,
    cmms: Iterable[CandidateMappingMatrix],
    plan: ChunkPlan,
    limit: int | None = None,
    pad_stats: "object | None" = None,
    multiexp: MaskedProductTable | None = None,
) -> tuple[BallCiphertextResult, int, bool]:
    """Alg. 1 + Alg. 2 fused: verify CMMs as they are enumerated.

    Consumes a lazy CMM iterator (``repro.core.enumeration.iter_cmms``)
    so truncation and verification share one pass -- the full CMM list is
    never materialized.  ``limit`` is the footnote-6 bypass threshold:
    producing a ``limit+1``-th CMM aborts the stream and the ball is
    reported unpruned (``bypassed``), exactly as the two-pass pipeline
    decides it.

    With ``multiexp`` (the query's shared
    :func:`verification_multiexp` table), each CMM projects straight to a
    packed selection mask and the chunk products come from the table --
    repeated patterns (within this ball *and* across every ball sharing
    the table) cost a memo lookup instead of a ciphertext fold.  The
    chunk ciphertexts are value-identical to the naive path's.

    Returns ``(result, enumerated, truncated)`` where ``enumerated`` counts
    the CMMs verified (capped at ``limit``) -- the same accounting the
    two-pass :func:`repro.core.enumeration.enumerate_cmms` +
    :func:`verify_ball` pipeline reports.
    """
    projection_cache = ProjectionCache(ball.graph)
    pad_cache = CiphertextPowerCache(params, c_one, stats=pad_stats) \
        if multiexp is None else None
    chunk_lists: list[list[CGBECiphertext]] = []
    enumerated = 0
    for cmm in cmms:
        if limit is not None and enumerated >= limit:
            return (BallCiphertextResult(ball_id=ball.ball_id,
                                         bypassed=True),
                    enumerated, True)
        if multiexp is not None:
            mask = projection_cache.project_mask(cmm.assignment)
            chunk_lists.append(multiexp.chunk_ciphertexts(mask))
        else:
            chunk_lists.append(
                verify_ciphertext(params, encrypted_matrix, c_one, ball,
                                  cmm, plan,
                                  projection_cache=projection_cache,
                                  pad_cache=pad_cache))
        enumerated += 1
    return (aggregate_items(params, ball.ball_id, chunk_lists, plan),
            enumerated, False)


# Re-exported so framework code has one import site for the user-side test.
decide_ball = decide_positive

__all__ = [
    "BallCiphertextResult",
    "decide_ball",
    "verification_multiexp",
    "verification_plan",
    "verify_ball",
    "verify_ball_streaming",
    "verify_ciphertext",
    "verify_plaintext",
    "verify_projected_rows",
]
