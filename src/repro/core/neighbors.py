"""Neighbor-label pruning -- the baseline of Fan et al. [17].

Fig. 2(a) compares three oblivious pruning topologies; the weakest uses the
"3-hop neighbor's label" information: the *set of labels* reachable within
``hops`` undirected hops of a vertex.  If query vertex ``u`` can reach a
label within 3 hops but the ball center cannot, the center cannot match
``u`` -- an image of a query path of length <= 3 is a ball walk of length
<= 3 (so the reachable-label set contracts under any match function).

The feature keys are simply the labels of ``Sigma_Q``; this carries no
distance resolution and no ordering, which is exactly why paths [57] and
twiglets (Sec. 4.2) dominate it in pruning power.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.table_pruning import PruneTable, build_table
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.query import Query

DEFAULT_HOPS = 3


def all_neighbor_shapes(alphabet: frozenset[Label],
                        hops: int = DEFAULT_HOPS) -> list[Hashable]:
    """Every label feature key, deterministic order (the full ``Sigma_Q``
    so the table shape reveals nothing about the query)."""
    if hops < 1:
        raise ValueError("hops must be positive")
    return sorted(repr(l) for l in alphabet)


def neighbor_features(graph: LabeledGraph, start: Vertex,
                      hops: int = DEFAULT_HOPS) -> set[Hashable]:
    """The labels present within ``hops`` undirected hops of ``start``
    (excluding ``start`` itself, whose label is matched separately)."""
    distances = graph.undirected_distances(start, cutoff=hops)
    return {repr(graph.label(v)) for v in distances if v != start}


def build_neighbor_tables(cgbe, query: Query,
                          hops: int = DEFAULT_HOPS) -> list[PruneTable]:
    """One encrypted reachable-label table per query vertex."""
    shapes = all_neighbor_shapes(query.alphabet, hops)
    tables: list[PruneTable] = []
    for u in query.vertex_order:
        present = neighbor_features(query.pattern, u, hops)
        tables.append(build_table(cgbe, query.label(u), shapes, present))
    return tables


def neighbor_table_size(alphabet_size: int,
                        hops: int = DEFAULT_HOPS) -> int:
    return alphabet_size
