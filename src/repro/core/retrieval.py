"""Secure retrieval of balls -- SSG and RSG (Sec. 4.3, Fig. 9, Example 9).

After the user decrypts the pruning messages, the Dealer knows which
candidate balls are *positives* (may contain matches) and which are
*negatives*.  SSG builds, per Player, a ball-id sequence whose front section
provably contains all of that Player's positives while each Player remains
unable to distinguish positives (Prop. 10):

1. *Set generation*: partition the ball-id set ``S`` into ``k`` early sets
   ``E_i`` of equal size with the positives spread evenly; the dummy set is
   ``D_i = E_{(i+1) mod k}`` -- every ball is evaluated by exactly two
   players, which is what masks the positive/negative boundary.
2. *Ordering*: with positive ratio ``theta < 1/2`` (the *early case*), the
   first ``y = ceil(2 * theta * |S| / k)`` positions (the *secure cutoff
   point*, SCP) hold a random permutation of all of ``E_i``'s positives
   mixed with randomly chosen negatives of ``E_i``; the remainder is a
   random permutation of the rest.  With ``theta >= 1/2`` (the *normal
   case*) SCP cannot land in the front half, so SSG degrades to RSG --
   plain random balanced sequences.

The Dealer has received every positive's ciphertext result once all players
pass their SCP, long before the full evaluation finishes -- the source of
Prilo*'s 4-8x time-to-results speedups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PlayerSequence:
    """One Player's evaluation order.

    ``scp`` is the secure-cutoff position (all of this player's positives
    lie in ``sequence[:scp]``); None in the normal/RSG case.  The field is
    Dealer-side bookkeeping only -- it is never sent to the Player.
    """

    player: int
    sequence: tuple[int, ...]
    scp: int | None = None

    def __len__(self) -> int:
        return len(self.sequence)


def _balanced_partition(items: list[int], k: int,
                        rng: random.Random) -> list[list[int]]:
    """Random partition into k parts with sizes differing by at most 1."""
    shuffled = list(items)
    rng.shuffle(shuffled)
    parts: list[list[int]] = [[] for _ in range(k)]
    for index, item in enumerate(shuffled):
        parts[index % k].append(item)
    return parts


def rsg_sequences(ball_ids: Iterable[int], k: int,
                  seed: int = 0) -> list[PlayerSequence]:
    """Random sequence generation (the baseline): random balanced partition,
    each subset in random order, no dummies, no SCP."""
    if k < 1:
        raise ValueError("need at least one player")
    rng = random.Random(seed)
    parts = _balanced_partition(sorted(ball_ids), k, rng)
    sequences = []
    for player, part in enumerate(parts):
        rng.shuffle(part)
        sequences.append(PlayerSequence(player=player,
                                        sequence=tuple(part), scp=None))
    return sequences


def ssg_sequences(ball_ids: Iterable[int], positives: Iterable[int],
                  k: int, seed: int = 0) -> tuple[list[PlayerSequence], str]:
    """Secure sequence generation.

    Returns ``(sequences, mode)`` with mode ``"early"`` or ``"normal"``.
    The normal case (theta >= 1/2) applies RSG, exactly as Sec. 4.3
    prescribes.  Requires ``k >= 2`` for the dummy-set construction
    (``D_i = E_{(i+1) mod k}`` would alias ``E_i`` at k = 1).
    """
    all_ids = sorted(set(ball_ids))
    positive_set = set(positives)
    unknown = positive_set - set(all_ids)
    if unknown:
        raise ValueError(f"positives not in the ball-id set: {sorted(unknown)}")
    if k < 2:
        raise ValueError("SSG needs at least two players (Sec. 2.3: k >= 2)")
    if not all_ids:
        return ([PlayerSequence(player=i, sequence=(), scp=0)
                 for i in range(k)], "early")

    theta = len(positive_set) / len(all_ids)
    if theta >= 0.5:
        return rsg_sequences(all_ids, k, seed), "normal"

    rng = random.Random(seed)
    positives_list = sorted(positive_set)
    negatives_list = sorted(set(all_ids) - positive_set)
    # Set generation: positives dealt evenly, negatives fill to balance.
    early_sets = _balanced_partition(positives_list, k, rng)
    negative_parts = _balanced_partition(negatives_list, k, rng)
    # Rebalance so all |E_i| differ by at most 1 overall.
    flat_sizes = sorted(range(k), key=lambda i: len(early_sets[i]))
    leftovers: list[int] = []
    for part in negative_parts:
        leftovers.extend(part)
    rng.shuffle(leftovers)
    target = len(all_ids) // k
    extras = len(all_ids) % k
    for rank, i in enumerate(flat_sizes):
        want = target + (1 if rank < extras else 0)
        while len(early_sets[i]) < want and leftovers:
            early_sets[i].append(leftovers.pop())
    # Any residue (rounding) goes round-robin.
    i = 0
    while leftovers:
        early_sets[i % k].append(leftovers.pop())
        i += 1

    y = -(-2 * len(positive_set) // k)  # ceil(2 * theta * |S| / k)
    sequences: list[PlayerSequence] = []
    for player in range(k):
        early = early_sets[player]
        dummy = early_sets[(player + 1) % k]
        early_positives = [b for b in early if b in positive_set]
        early_negatives = [b for b in early if b not in positive_set]
        rng.shuffle(early_negatives)
        fill = max(0, min(len(early_negatives), y - len(early_positives)))
        front = early_positives + early_negatives[:fill]
        rng.shuffle(front)
        rest = early_negatives[fill:] + list(dummy)
        rng.shuffle(rest)
        sequences.append(PlayerSequence(player=player,
                                        sequence=tuple(front + rest),
                                        scp=len(front)))
    return sequences, "early"


def positives_complete_positions(
    sequences: Sequence[PlayerSequence],
    positives: Iterable[int],
) -> list[int]:
    """Per player, the 1-based position after which every positive *first
    assigned to that player* (its early copy) has been evaluated.

    A positive may also appear in another player's tail as a dummy copy;
    that copy is redundant -- the Dealer already holds the result -- so it
    is ignored here, exactly as in Example 9 where the Dealer has all
    positives once b8 in S1, b1 in S2 and b7 in S3 complete (all at or
    before each sequence's SCP).
    """
    positive_set = set(positives)
    # The early copy of a ball is its first occurrence across sequences in
    # front sections; for RSG (scp None) every occurrence counts.
    result = []
    for seq in sequences:
        cutoff = seq.scp if seq.scp is not None else len(seq.sequence)
        last = 0
        for index, ball_id in enumerate(seq.sequence[:cutoff], start=1):
            if ball_id in positive_set:
                last = index
        if seq.scp is None:
            for index, ball_id in enumerate(seq.sequence, start=1):
                if ball_id in positive_set:
                    last = index
        result.append(last)
    return result
