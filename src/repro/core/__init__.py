"""The paper's core algorithms.

* :mod:`~repro.core.encoding` -- the ``M_Qe`` prime encoding (Sec. 3.2) and
  the canonical label / tree encodings of Sec. 4.1.2.
* :mod:`~repro.core.enumeration` -- Alg. 1, candidate enumeration (CMMs).
* :mod:`~repro.core.verification` -- Alg. 2, query-oblivious verification,
  plaintext and CGBE-ciphertext variants.
* :mod:`~repro.core.trees` -- h-label binary trees (Def. 3), the ten
  topologies of Fig. 6, and Alg. 4's subtree enumeration.
* :mod:`~repro.core.bf_pruning` -- the BF pruning pipeline (Sec. 4.1.2).
* :mod:`~repro.core.twiglets` -- h-twiglets, twiglet tables (Table 2), and
  Alg. 5 ``TwigletPrune``.
* :mod:`~repro.core.paths` -- the Path_h pruning baseline of [57].
* :mod:`~repro.core.neighbors` -- the neighbor-label pruning baseline of [17].
* :mod:`~repro.core.retrieval` -- SSG / RSG secure sequence generation
  (Sec. 4.3).
"""

from repro.core.encoding import LabelCodec, encode_query_matrix, encrypt_query_matrix
from repro.core.enumeration import CandidateEnumeration, enumerate_cmms
from repro.core.retrieval import PlayerSequence, rsg_sequences, ssg_sequences
from repro.core.verification import verify_ciphertext, verify_plaintext

__all__ = [
    "CandidateEnumeration",
    "LabelCodec",
    "PlayerSequence",
    "encode_query_matrix",
    "encrypt_query_matrix",
    "enumerate_cmms",
    "rsg_sequences",
    "ssg_sequences",
    "verify_ciphertext",
    "verify_plaintext",
]
