"""h-twiglets and twiglet pruning -- Sec. 4.2, Table 2, Alg. 5.

An *i-twiglet* starting from a vertex ``v1`` is a label topology
``[L(v1), ..., L(v_{i-1}), [L(v_i), L(v_{i+1})]]``: an undirected label path
followed by a two-way fork, all labels pairwise distinct.  Following
Table 2's worked example and the "we pruned balls using i-twiglets,
3 <= i <= h" protocol of Sec. 6.1, the feature family for parameter ``h``
contains, for every ``i`` in ``3..h``:

* plain label paths with ``i`` labels (the fork degenerates; these cover
  the path information of topologies i-vi of Fig. 6), and
* forked twiglets with ``i + 1`` labels (path part of ``i - 1`` labels plus
  an unordered fork pair).

For ``h = 3`` and ``Sigma_Q = {A, B, C, D}`` with start label B this yields
exactly the nine rows of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Iterator

from repro.core.table_pruning import PruneTable, build_table
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.query import Query


@dataclass(frozen=True, order=True)
class Twiglet:
    """One twiglet shape: the label path (start label first) and the
    optional canonical (sorted) fork pair."""

    path: tuple[str, ...]
    fork: tuple[str, str] | None = None

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("twiglet path needs at least two labels")
        labels = list(self.path) + list(self.fork or ())
        if len(set(labels)) != len(labels):
            raise ValueError("twiglet labels must be pairwise distinct")
        if self.fork is not None and tuple(sorted(self.fork)) != self.fork:
            raise ValueError("fork pair must be in canonical sorted order")

    @property
    def num_labels(self) -> int:
        return len(self.path) + (2 if self.fork else 0)

    def render(self) -> str:
        """Table 2's bracket notation, e.g. ``[B, A, [C, D]]``."""
        parts = list(self.path)
        if self.fork:
            parts.append(f"[{self.fork[0]}, {self.fork[1]}]")
        return "[" + ", ".join(parts) + "]"


def _key(label: Label) -> str:
    """Twiglets store labels as reprs so shapes hash/order uniformly."""
    return repr(label)


def all_twiglet_shapes(start_label: Label, alphabet: frozenset[Label],
                       h: int) -> list[Twiglet]:
    """Every possible twiglet over ``alphabet`` from ``start_label``
    (the first column of the Table 2 tables), deterministic order.

    The count depends only on ``|Sigma_Q|`` and ``h`` -- identical for
    every start label -- which is what makes the per-vertex products
    homomorphically summable.
    """
    if h < 3:
        raise ValueError("twiglet parameter h must be at least 3 (Sec. 4.2)")
    start = _key(start_label)
    others = sorted(_key(l) for l in alphabet if _key(l) != start)
    shapes: list[Twiglet] = []
    for i in range(3, h + 1):
        # Plain paths with i labels: start + (i-1) ordered distinct labels.
        for tail in permutations(others, i - 1):
            shapes.append(Twiglet(path=(start,) + tail))
        # Forked twiglets with i+1 labels: path part of i-1 labels + pair.
        for tail in permutations(others, i - 2):
            used = set(tail)
            rest = [l for l in others if l not in used]
            for pair in combinations(rest, 2):
                shapes.append(Twiglet(path=(start,) + tail,
                                      fork=tuple(sorted(pair))))
    return shapes


# ----------------------------------------------------------------------
# membership: the twiglets actually present in a graph from a vertex
# ----------------------------------------------------------------------
def iter_twiglets_from(graph: LabeledGraph, start: Vertex, h: int,
                       alphabet: frozenset[Label] | None = None,
                       ) -> Iterator[Twiglet]:
    """DFS enumeration (Alg. 5 line 3) of the twiglets of ``graph`` that
    start at ``start``: undirected steps, pairwise-distinct labels, path
    lengths ``3..h`` labels plus their forked extensions.

    ``alphabet`` restricts traversal to labels in ``Sigma_Q`` (others can
    never appear in a table, so walking them is wasted work).
    """
    allowed = None if alphabet is None else {_key(l) for l in alphabet}
    start_key = _key(graph.label(start))
    if allowed is not None and start_key not in allowed:
        return

    def usable(v: Vertex, used: set[str]) -> str | None:
        key = _key(graph.label(v))
        if key in used:
            return None
        if allowed is not None and key not in allowed:
            return None
        return key

    def walk(v: Vertex, path: tuple[str, ...],
             used: set[str]) -> Iterator[Twiglet]:
        if 3 <= len(path) <= h:
            yield Twiglet(path=path)
        # Forks from the path end: i-twiglet has path part i-1 labels,
        # 3 <= i <= h  =>  path part length 2..h-1.
        if 2 <= len(path) <= h - 1:
            fork_labels = set()
            for child in graph.neighbors(v):
                key = usable(child, used)
                if key is not None:
                    fork_labels.add(key)
            for pair in combinations(sorted(fork_labels), 2):
                yield Twiglet(path=path, fork=pair)
        if len(path) >= h:
            return
        for child in graph.neighbors(v):
            key = usable(child, used)
            if key is None:
                continue
            used.add(key)
            yield from walk(child, path + (key,), used)
            used.discard(key)

    yield from walk(start, (start_key,), {start_key})


def twiglets_from(graph: LabeledGraph, start: Vertex, h: int,
                  alphabet: frozenset[Label] | None = None) -> set[Twiglet]:
    """The deduplicated twiglet set ``R`` of Alg. 5 line 3."""
    return set(iter_twiglets_from(graph, start, h, alphabet))


def filter_twiglets(features: "set[Twiglet] | frozenset[Twiglet]",
                    alphabet: frozenset[Label]) -> set[Twiglet]:
    """Restrict a full-alphabet twiglet set to ``Sigma_Q``.

    Equals ``twiglets_from(graph, start, h, alphabet)`` when ``features``
    is the unrestricted enumeration from the same start: a twiglet's
    witness walk only visits vertices whose labels appear in the twiglet,
    so restricting the DFS to ``Sigma_Q`` and filtering the full
    enumeration by label membership select the same shapes (asserted in
    ``tests/test_artifact_store.py``).  This is what lets the artifact
    store precompute per-ball features once, offline, for every future
    query alphabet.
    """
    allowed = {_key(l) for l in alphabet}
    return {t for t in features
            if set(t.path).union(t.fork or ()) <= allowed}


def twiglet_to_jsonable(twiglet: Twiglet) -> list:
    """Stable JSON form (used by the artifact store)."""
    return [list(twiglet.path),
            list(twiglet.fork) if twiglet.fork else None]


def twiglet_from_jsonable(data: list) -> Twiglet:
    path, fork = data
    return Twiglet(path=tuple(path), fork=tuple(fork) if fork else None)


# ----------------------------------------------------------------------
# user side: encrypted twiglet tables (Table 2)
# ----------------------------------------------------------------------
def build_twiglet_tables(cgbe, query: Query, h: int) -> list[PruneTable]:
    """One encrypted table per query vertex.

    Each table's first column (the shapes) is public; the existence column
    is CGBE-encrypted: q = "this twiglet exists in Q from u" (a ball whose
    center lacks it cannot match u, Prop. 4), 1 = it does not.
    """
    tables: list[PruneTable] = []
    for u in query.vertex_order:
        shapes = all_twiglet_shapes(query.label(u), query.alphabet, h)
        present = twiglets_from(query.pattern, u, h, query.alphabet)
        tables.append(build_table(cgbe, query.label(u), shapes, present))
    return tables


def twiglet_table_size(alphabet_size: int, h: int) -> int:
    """Closed-form table length (paths + forks per Sec. 4.2's analysis);
    used for message-size accounting and chunk planning."""
    import math

    def perm(n: int, k: int) -> int:
        return math.perm(n, k) if 0 <= k <= n else 0

    def comb(n: int, k: int) -> int:
        return math.comb(n, k) if 0 <= k <= n else 0

    total = 0
    m = alphabet_size - 1
    for i in range(3, h + 1):
        total += perm(m, i - 1)                      # plain paths
        total += perm(m, i - 2) * comb(m - (i - 2), 2)  # forked twiglets
    return total
