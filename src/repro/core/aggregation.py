"""Shared CGBE aggregation machinery.

Alg. 2 (verification), Alg. 5 (twiglet pruning) and the path/neighbor
baselines all share one algebraic pattern: per *item* (a CMM, a query
vertex's table) the SP multiplies a fixed-length list of ciphertexts --
factor ``q`` marks a violation -- and per ball it sums the items, so that
the decrypted sum is a multiple of ``q`` iff *every* item violated.

Summing is only well-formed when each item's product fits one ciphertext
under the overflow budget (see :class:`repro.crypto.cgbe.AggregationBudget`).
When it does not, products are split into equal-size *chunks* and forwarded
per item; the user then accepts a ball iff some item has every chunk free of
the factor ``q``.  Chunk counts depend only on public parameters and
``|V_Q|`` / ``|Sigma_Q|``, so the layout choice leaks nothing about the
query's edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cgbe import (
    CGBE,
    CGBECiphertext,
    CGBEPublicParams,
    CiphertextPowerCache,
)


@dataclass(frozen=True)
class ChunkPlan:
    """Layout of per-item products for one (query, parameter) combination.

    ``factors`` -- the fixed product length per item;
    ``chunk_factors`` -- factors fitting one ciphertext;
    ``chunks_per_item`` -- resulting ciphertexts per item;
    ``summable`` -- whether items may be summed into one ciphertext
    (the paper's exact aggregation).
    """

    factors: int
    chunk_factors: int
    chunks_per_item: int
    summable: bool

    @classmethod
    def plan(cls, params: CGBEPublicParams, factors: int,
             expected_terms: int = 1 << 16) -> "ChunkPlan":
        if factors < 1:
            raise ValueError("need at least one factor per item")
        chunk = params.budget.max_factors(terms=expected_terms)
        if chunk < 1:
            raise ValueError(
                f"CGBE modulus of {params.modulus_bits} bits cannot hold a "
                f"single {params.budget.bits_per_factor}-bit factor")
        if chunk >= factors:
            return cls(factors=factors, chunk_factors=factors,
                       chunks_per_item=1, summable=True)
        chunks = -(-factors // chunk)
        return cls(factors=factors, chunk_factors=chunk,
                   chunks_per_item=chunks, summable=False)


def chunked_product(params: CGBEPublicParams,
                    factors: list[CGBECiphertext],
                    c_one: CGBECiphertext,
                    plan: ChunkPlan,
                    pad_cache: CiphertextPowerCache | None = None,
                    ) -> list[CGBECiphertext]:
    """Multiply one item's factors according to ``plan``.

    Short inputs are padded with ``c_one`` so every chunk has exactly
    ``plan.chunk_factors`` factors (constant powers, constant work).
    Padding once up front to the full ``chunks_per_item * chunk_factors``
    grid is what makes every slice full-length -- no per-chunk re-padding.

    ``pad_cache`` (a :class:`CiphertextPowerCache` over this ``c_one``)
    collapses each chunk's run of padding factors into one cached power
    lookup instead of up to ``chunk_factors`` modular multiplications; the
    result is bit-identical either way.
    """
    if len(factors) > plan.factors:
        raise ValueError(
            f"item has {len(factors)} factors but the plan's chunk layout "
            f"holds at most {plan.factors} "
            f"({plan.chunks_per_item} chunk(s) x {plan.chunk_factors} "
            f"factors); build the plan with ChunkPlan.plan(params, "
            f"{len(factors)}) instead of truncating")
    padded = list(factors)
    padded.extend([c_one] * (plan.chunks_per_item * plan.chunk_factors
                             - len(padded)))
    chunks: list[CGBECiphertext] = []
    for start in range(0, len(padded), plan.chunk_factors):
        chunk = padded[start:start + plan.chunk_factors]
        chunks.append(CGBE.product(params, chunk, power_cache=pad_cache))
    return chunks


@dataclass
class BallCiphertextResult:
    """The per-ball ciphertext payload sent toward the user.

    Exactly one of the shapes is populated:

    * ``summed`` -- the paper's single aggregated ciphertext;
    * ``per_item`` -- chunk lists per item (budget-constrained layout);
    * ``bypassed`` -- the ball skipped this computation (footnote 6);
    * ``empty`` -- there was nothing to aggregate (no CMM / no matching
      table), which itself proves the ball spurious.
    """

    ball_id: int
    summed: CGBECiphertext | None = None
    per_item: list[list[CGBECiphertext]] | None = None
    bypassed: bool = False
    empty: bool = False

    def ciphertext_count(self) -> int:
        if self.summed is not None:
            return 1
        if self.per_item is not None:
            return sum(len(chunks) for chunks in self.per_item)
        return 0


def aggregate_items(params: CGBEPublicParams, ball_id: int,
                    item_chunk_lists: list[list[CGBECiphertext]],
                    plan: ChunkPlan) -> BallCiphertextResult:
    """Combine per-item chunk lists into the ball's result."""
    if not item_chunk_lists:
        return BallCiphertextResult(ball_id=ball_id, empty=True)
    if plan.summable:
        terms = [chunks[0] for chunks in item_chunk_lists]
        return BallCiphertextResult(ball_id=ball_id,
                                    summed=CGBE.sum_(params, terms))
    return BallCiphertextResult(ball_id=ball_id, per_item=item_chunk_lists)


def decide_positive(cgbe: CGBE, result: BallCiphertextResult) -> bool:
    """User-side decryption: True = the ball survives (positive)."""
    if result.bypassed:
        return True
    if result.empty:
        return False
    if result.summed is not None:
        return not cgbe.has_factor_q(result.summed)
    assert result.per_item is not None
    return any(all(not cgbe.has_factor_q(chunk) for chunk in chunks)
               for chunks in result.per_item)
