"""Path-based pruning -- the baseline of Xu et al. [57] (``Path_h``).

The comparison baseline in Sec. 6 checks, under the ciphertext domain, the
existence of query label *paths*: if a distinct-label undirected path starts
at query vertex ``u`` but no equally-labeled path starts at the ball center,
the center cannot match ``u``.  This is exactly the twiglet machinery with
the fork variants removed -- which is also why twiglets dominate it in
pruning power (Fig. 2(a)) at extra cost.

``Path_h`` covers paths with ``3..h`` labels (2 to ``h-1`` hops), mirroring
the i-twiglet convention so the two techniques are compared like-for-like.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.table_pruning import PruneTable, build_table
from repro.core.twiglets import Twiglet, iter_twiglets_from, _key
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.query import Query


def all_path_shapes(start_label: Label, alphabet: frozenset[Label],
                    h: int) -> list[Twiglet]:
    """Every possible label path (no forks) from ``start_label``."""
    if h < 3:
        raise ValueError("path parameter h must be at least 3")
    start = _key(start_label)
    others = sorted(_key(l) for l in alphabet if _key(l) != start)
    shapes: list[Twiglet] = []
    for i in range(3, h + 1):
        for tail in permutations(others, i - 1):
            shapes.append(Twiglet(path=(start,) + tail))
    return shapes


def paths_from(graph: LabeledGraph, start: Vertex, h: int,
               alphabet: frozenset[Label] | None = None) -> set[Twiglet]:
    """The label paths present in ``graph`` from ``start`` (fork-free
    subset of the twiglet DFS)."""
    return {t for t in iter_twiglets_from(graph, start, h, alphabet)
            if t.fork is None}


def build_path_tables(cgbe, query: Query, h: int) -> list[PruneTable]:
    """One encrypted path table per query vertex (the [57] baseline)."""
    tables: list[PruneTable] = []
    for u in query.vertex_order:
        shapes = all_path_shapes(query.label(u), query.alphabet, h)
        present = paths_from(query.pattern, u, h, query.alphabet)
        tables.append(build_table(cgbe, query.label(u), shapes, present))
    return tables


def path_table_size(alphabet_size: int, h: int) -> int:
    """Closed-form table length for chunk planning."""
    import math

    m = alphabet_size - 1
    return sum(math.perm(m, i - 1) if i - 1 <= m else 0
               for i in range(3, h + 1))
