"""h-label binary trees (Def. 3) and their enumeration (Alg. 4).

The BF pruning of Sec. 4.1 projects height-2 undirected binary subtrees onto
their label structure.  Of the ten topologies of Fig. 6, only the four
"complex" ones (vii-x, the red dotted rectangle) are used -- the simpler
ones carry only neighbor-label / path / twiglet information that the other
pruning techniques already cover:

* vii  -- root, two children, one grandchild under one child;
* viii -- root, two children, two grandchildren under one child;
* ix   -- root, two children, two grandchildren under one child and one
          under the other;
* x    -- root, two children, two grandchildren under each.

Def. 3(iii) requires all vertices of the projected subtree to carry
*pairwise distinct* labels; this is what makes the Table 1 counting formulas
(permutations/combinations over ``kappa - 1`` non-root labels) exact upper
bounds.

Canonical encoding (Sec. 4.1.2 / Fig. 7): each position in a topology has a
fixed index; the encoding is ``sum(code(label) * base^position)``.  For
same-parent nodes with isomorphic unlabeled subtrees the larger code goes
first (the paper's footnote 4), which makes isomorphic trees encode
identically.  The Fig. 7 worked example (topology vii over labels A/C/D,
encoding 77) is reproduced by ``LabelCodec.encode_positions`` with
``paper_base=True``; production encodings add a topology tag so distinct
topologies can never collide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.encoding import LabelCodec
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex


@dataclass(frozen=True)
class Topology:
    """One of the Fig. 6 height-2 topologies used by BF pruning."""

    name: str
    tag: int
    left_grandchildren: int
    right_grandchildren: int

    @property
    def num_labels(self) -> int:
        """Non-root labeled positions: 2 children + grandchildren."""
        return 2 + self.left_grandchildren + self.right_grandchildren

    @property
    def symmetric(self) -> bool:
        """Children subtrees isomorphic (topology x): order is canonical."""
        return self.left_grandchildren == self.right_grandchildren


TOPOLOGY_VII = Topology("vii", 7, 1, 0)
TOPOLOGY_VIII = Topology("viii", 8, 2, 0)
TOPOLOGY_IX = Topology("ix", 9, 2, 1)
TOPOLOGY_X = Topology("x", 10, 2, 2)

BF_TOPOLOGIES: tuple[Topology, ...] = (
    TOPOLOGY_VII, TOPOLOGY_VIII, TOPOLOGY_IX, TOPOLOGY_X)


def _permutations(n: int, k: int) -> int:
    if n < k or n < 0:
        return 0
    return math.perm(n, k)


def _combinations(n: int, k: int) -> int:
    if n < k or n < 0:
        return 0
    return math.comb(n, k)


def max_tree_count(topology: Topology, kappa: int) -> int:
    """Table 1: the maximum number of distinct 2-label binary trees of a
    topology in a ball, ``kappa = min(|Sigma_Q|, d_max)``."""
    k = kappa
    if topology.name == "vii":
        return _permutations(k - 1, 3)
    if topology.name == "viii":
        return _permutations(k - 1, 2) * _combinations(k - 3, 2)
    if topology.name == "ix":
        return _permutations(k - 1, 3) * _combinations(k - 4, 2)
    if topology.name == "x":
        return (_combinations(k - 1, 2) * _combinations(k - 3, 2)
                * _combinations(k - 5, 2))
    raise ValueError(f"no Table 1 row for topology {topology.name!r}")


@dataclass(frozen=True)
class LabeledTree:
    """A concrete 2-label binary tree: children labels plus grandchild
    labels per child, in canonical order."""

    topology: Topology
    left: Label
    right: Label
    left_grand: tuple[Label, ...]
    right_grand: tuple[Label, ...]

    def position_labels(self) -> tuple[Label, ...]:
        """Labels in position order: left, right, left grandchildren,
        right grandchildren (grandchild groups pre-sorted canonically)."""
        return (self.left, self.right) + self.left_grand + self.right_grand

    def encode(self, codec: LabelCodec) -> int:
        return codec.encode_sequence(self.position_labels(),
                                     tag=self.topology.tag)


def canonical_tree(topology: Topology, codec: LabelCodec,
                   left: Label, right: Label,
                   left_grand: Iterable[Label],
                   right_grand: Iterable[Label]) -> LabeledTree:
    """Normalize per footnote 4: grandchild groups sorted by descending
    code; for the symmetric topology x the larger-coded child goes left."""
    lg = tuple(sorted(left_grand, key=codec.code, reverse=True))
    rg = tuple(sorted(right_grand, key=codec.code, reverse=True))
    if topology.symmetric and codec.code(left) < codec.code(right):
        left, right = right, left
        lg, rg = rg, lg
    return LabeledTree(topology=topology, left=left, right=right,
                       left_grand=lg, right_grand=rg)


# ----------------------------------------------------------------------
# Enumeration (Alg. 4 generalized to all four topologies).
# ----------------------------------------------------------------------
def _grandchild_labels(graph: LabeledGraph, child: Vertex,
                       forbidden: set[Label],
                       codec: LabelCodec) -> list[Label]:
    """Distinct usable labels among a child's undirected neighbors."""
    labels = {graph.label(n) for n in graph.neighbors(child)}
    return sorted((l for l in labels if l not in forbidden and l in codec),
                  key=codec.code)


def iter_center_trees(
    graph: LabeledGraph,
    root: Vertex,
    codec: LabelCodec,
    topologies: tuple[Topology, ...] = BF_TOPOLOGIES,
) -> Iterator[LabeledTree]:
    """All 2-label binary trees of ``graph`` rooted at ``root`` whose
    non-root labels lie in the codec's alphabet (labels outside
    ``Sigma_Q`` can never appear in a query tree, so enumerating them
    would only inflate the bloom filter).

    Yields canonical trees, possibly with repeats when distinct subtrees
    project to the same label tree; callers dedupe via encodings.
    """
    root_label = graph.label(root)
    children = sorted(
        (v for v in graph.neighbors(root)
         if graph.label(v) != root_label and graph.label(v) in codec),
        key=repr)
    by_label_pairs = [(u, v) for u in children for v in children
                      if u != v and graph.label(u) != graph.label(v)]
    for topology in topologies:
        for u, v in by_label_pairs:
            lu, lv = graph.label(u), graph.label(v)
            base_forbidden = {root_label, lu, lv}
            left_options = _grandchild_labels(graph, u, base_forbidden, codec)
            if len(left_options) < topology.left_grandchildren:
                continue
            for lg in _label_subsets(left_options,
                                     topology.left_grandchildren):
                forbidden = base_forbidden | set(lg)
                right_options = _grandchild_labels(graph, v, forbidden, codec)
                if len(right_options) < topology.right_grandchildren:
                    continue
                for rg in _label_subsets(right_options,
                                         topology.right_grandchildren):
                    yield canonical_tree(topology, codec, lu, lv, lg, rg)


def _label_subsets(options: list[Label], k: int) -> Iterator[tuple[Label, ...]]:
    from itertools import combinations

    if k == 0:
        yield ()
        return
    yield from combinations(options, k)


def enumerate_center_tree_encodings(
    graph: LabeledGraph,
    root: Vertex,
    codec: LabelCodec,
    topologies: tuple[Topology, ...] = BF_TOPOLOGIES,
    max_trees: int | None = None,
) -> tuple[set[int], bool]:
    """Deduplicated canonical encodings of all trees rooted at ``root``.

    Returns ``(encodings, truncated)``; ``truncated`` is set when
    ``max_trees`` distinct encodings were reached and enumeration stopped
    (the framework then treats the ball as unprunable-by-BF).
    """
    encodings: set[int] = set()
    for tree in iter_center_trees(graph, root, codec, topologies):
        encodings.add(tree.encode(codec))
        if max_trees is not None and len(encodings) >= max_trees:
            return encodings, True
    return encodings, False


def bf_threshold_exceeded(graph: LabeledGraph, center: Vertex,
                          threshold: int) -> bool:
    """Sec. 6.1's BF_t bypass test: more than ``threshold`` neighbors of the
    center have at least 3 distinct usable neighbor labels (the ``L`` sets
    of Alg. 4 lines 1-2), which signals an expensive topology-x enumeration.
    """
    if threshold < 0:
        return True  # bypass everything (degenerate configuration)
    center_label = graph.label(center)
    heavy = 0
    for u in graph.neighbors(center):
        if graph.label(u) == center_label:
            continue
        labels = {graph.label(v) for v in graph.neighbors(u)
                  if graph.label(v) not in (graph.label(u), center_label)}
        if len(labels) >= 3:
            heavy += 1
            if heavy > threshold:
                return True
    return False
