"""Query-oblivious verification for strong simulation (ssim).

Footnote 3: ssim "has a straightforward candidate enumeration step" -- the
candidates are simply the label-compatible pairs ``(u, v)`` -- and its
verification detects violations of Def. 4's conditions rather than CMM edge
violations.  The SP performs *one dual-simulation refinement round* under
ciphertext:

For a pair ``(u, v)`` the product over every query row ``u'`` of

* ``M^E_Qe(u, u')`` when ``v`` has no successor labeled ``L(u')``
  (violates 3b if the query edge (u, u') exists), else ``c_one``; and
* ``M^E_Qe(u', u)`` when ``v`` has no predecessor labeled ``L(u')``
  (violates 3c), else ``c_one``

has a factor ``q`` iff the pair dies in the first refinement round.  Per
query vertex ``u`` the SP sums the products over all candidate ``v`` (the
sum is q-free iff some candidate survives -> condition (1) can still hold)
and one extra ciphertext sums the center's pairs (condition (2)).

Soundness: the dual-simulation fixpoint is contained in the round-one
relation, so a ball rejected here can never strongly simulate the query --
the pruning admits false positives but no false negatives, which the
property tests assert.  Obliviousness: the factor choice depends only on
the ball's labels; every encrypted position is touched in a fixed order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import (
    BallCiphertextResult,
    ChunkPlan,
    aggregate_items,
    chunked_product,
    decide_positive,
)
from repro.crypto.cgbe import (
    CGBE,
    CGBECiphertext,
    CGBEPublicParams,
    CiphertextPowerCache,
)
from repro.crypto.kernels import MaskedProductTable, MultiExpRegistry
from repro.graph.ball import Ball
from repro.graph.labeled_graph import Vertex
from repro.graph.query import Query


def ssim_plan(params: CGBEPublicParams, query: Query,
              expected_terms: int = 1 << 16) -> ChunkPlan:
    """Pair products have ``2 * |V_Q|`` factors (3b + 3c per query row)."""
    return ChunkPlan.plan(params, 2 * query.size,
                          expected_terms=expected_terms)


@dataclass
class SsimBallVerdict:
    """Ciphertext results for one ball: one per query vertex (condition 1)
    plus the center aggregate (condition 2)."""

    ball_id: int
    per_vertex: list[BallCiphertextResult]
    center: BallCiphertextResult


class _NeighborLabelCache:
    """Per-ball successor/predecessor label sets, computed once per vertex.

    A ball vertex is a candidate of every query row sharing its label, so
    the naive per-(row, v) recomputation rebuilds the same two label sets
    ``|rows with that label|`` times; memoizing is value-identical.
    """

    def __init__(self, ball: Ball) -> None:
        self._graph = ball.graph
        self._cache: dict[Vertex, tuple[frozenset, frozenset]] = {}

    def labels(self, v: Vertex) -> tuple[frozenset, frozenset]:
        cached = self._cache.get(v)
        if cached is None:
            graph = self._graph
            cached = (
                frozenset(graph.label(w) for w in graph.successors(v)),
                frozenset(graph.label(w) for w in graph.predecessors(v)),
            )
            self._cache[v] = cached
        return cached


def _pair_product(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    query: Query,
    ball: Ball,
    row: int,
    v: Vertex,
    plan: ChunkPlan,
    neighbor_cache: _NeighborLabelCache | None = None,
    pad_cache: CiphertextPowerCache | None = None,
) -> list[CGBECiphertext]:
    if neighbor_cache is not None:
        succ_labels, pred_labels = neighbor_cache.labels(v)
    else:
        succ_labels = {ball.graph.label(w) for w in ball.graph.successors(v)}
        pred_labels = {ball.graph.label(w) for w in ball.graph.predecessors(v)}
    factors: list[CGBECiphertext] = []
    for j, u_other in enumerate(query.vertex_order):
        label = query.label(u_other)
        factors.append(c_one if label in succ_labels
                       else encrypted_matrix[row][j])
        factors.append(c_one if label in pred_labels
                       else encrypted_matrix[j][row])
    return chunked_product(params, factors, c_one, plan, pad_cache=pad_cache)


def ssim_multiexp(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    query: Query,
    row: int,
    plan: ChunkPlan,
    config=None,
) -> MaskedProductTable:
    """The shared Straus table for one query row's pair products.

    The base vector interleaves ``M[row][j], M[j][row]`` over the vertex
    order -- position-aligned with :func:`_pair_mask` -- and is identical
    for every candidate pair of the row, across every ball of a share.
    """
    bases: list[CGBECiphertext] = []
    for j in range(query.size):
        bases.append(encrypted_matrix[row][j])
        bases.append(encrypted_matrix[j][row])
    if config is None:
        return MaskedProductTable(params, bases, c_one, plan)
    return MaskedProductTable(params, bases, c_one, plan, config)


def _pair_mask(query: Query, succ_labels: frozenset,
               pred_labels: frozenset) -> int:
    """The selection mask of one candidate pair: bit ``2j`` selects the
    pad where ``v`` has a successor labeled ``L(u_j)`` (no 3b violation
    possible), bit ``2j + 1`` likewise for predecessors (3c)."""
    mask = 0
    for j, u_other in enumerate(query.vertex_order):
        label = query.label(u_other)
        if label in succ_labels:
            mask |= 1 << (2 * j)
        if label in pred_labels:
            mask |= 1 << (2 * j + 1)
    return mask


def ssim_verify_ball(
    params: CGBEPublicParams,
    encrypted_matrix: list[list[CGBECiphertext]],
    c_one: CGBECiphertext,
    query: Query,
    ball: Ball,
    plan: ChunkPlan,
    multiexp: MultiExpRegistry | None = None,
) -> SsimBallVerdict:
    """The SP-side ssim verification for one candidate ball.

    With ``multiexp`` enabled, each query row's pair products come from a
    shared :class:`MaskedProductTable` (registry key ``("ssim", row)``);
    candidates with equal neighbor-label sets -- the common case on
    low-diversity balls -- collapse into memo hits.  Value-identical to
    the naive :func:`_pair_product` fold.
    """
    neighbor_cache = _NeighborLabelCache(ball)
    use_kernel = multiexp is not None and multiexp.enabled
    pad_cache = None if use_kernel else CiphertextPowerCache(params, c_one)
    per_vertex: list[BallCiphertextResult] = []
    center_items: list[list[CGBECiphertext]] = []
    for row, u in enumerate(query.vertex_order):
        candidates = sorted(
            ball.graph.vertices_with_label(query.label(u)), key=repr)
        if use_kernel:
            table = multiexp.table(
                ("ssim", row),
                lambda row=row: ssim_multiexp(params, encrypted_matrix,
                                              c_one, query, row, plan,
                                              multiexp.config))
            items = [
                table.chunk_ciphertexts(
                    _pair_mask(query, *neighbor_cache.labels(v)))
                for v in candidates
            ]
        else:
            items = [
                _pair_product(params, encrypted_matrix, c_one, query, ball,
                              row, v, plan, neighbor_cache=neighbor_cache,
                              pad_cache=pad_cache)
                for v in candidates
            ]
        per_vertex.append(
            aggregate_items(params, ball.ball_id, items, plan))
        if query.label(u) == ball.center_label:
            if use_kernel:
                center_items.append(table.chunk_ciphertexts(
                    _pair_mask(query,
                               *neighbor_cache.labels(ball.center))))
            else:
                center_items.append(
                    _pair_product(params, encrypted_matrix, c_one, query,
                                  ball, row, ball.center, plan,
                                  neighbor_cache=neighbor_cache,
                                  pad_cache=pad_cache))
    center = aggregate_items(params, ball.ball_id, center_items, plan)
    return SsimBallVerdict(ball_id=ball.ball_id, per_vertex=per_vertex,
                           center=center)


def decide_ssim_ball(cgbe: CGBE, verdict: SsimBallVerdict) -> bool:
    """User side: the ball survives iff every query vertex keeps at least
    one candidate (condition 1) and the center keeps a match (condition 2).
    """
    if not all(decide_positive(cgbe, result)
               for result in verdict.per_vertex):
        return False
    return decide_positive(cgbe, verdict.center)
