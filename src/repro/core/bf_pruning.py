"""BF pruning -- bloom filters of trees in the TEE (Sec. 4.1).

Pipeline (Sec. 4.1.2):

* **User**: for every query vertex ``u``, enumerate the distinct 2-label
  binary trees (topologies vii-x) rooted at ``u`` and keep exactly ``eta``
  canonical encodings -- padding with 0s when fewer exist (0 is inserted in
  every ball filter so pads always pass), truncating when more exist (may
  cost pruning power, never correctness).  The encodings are sealed for the
  enclave over the attested channel.
* **Player, outside the enclave**: per candidate ball, build a bloom filter
  over the encodings of the ball center's trees plus the encoding 0, and
  pass it through the enclave boundary.
* **Player, inside the enclave**: test the query encodings obliviously and
  emit the encrypted pruning message ``c_sgx`` (see
  :meth:`repro.tee.enclave.Enclave.check_ball`).
* **User**: decrypt ``c_sgx``; plaintext 0 means no query vertex with the
  center's label survived Prop. 3 -- the ball is spurious.

The ``BF_t`` threshold of Sec. 6.1 is enforced player-side: balls whose
center neighborhood signals an explosive topology-x enumeration skip BF and
are conservatively marked positive (footnote 6's "bypass").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.encoding import LabelCodec
from repro.core.trees import (
    BF_TOPOLOGIES,
    bf_threshold_exceeded,
    enumerate_center_tree_encodings,
)
from repro.filters.bloom import BloomFilter, optimal_num_hashes, required_bits
from repro.graph.ball import Ball
from repro.graph.query import Query
from repro.tee.channel import SecureChannel
from repro.tee.enclave import Enclave

#: The all-pass pad encoding (Sec. 4.1.2: "User takes 0s as the rest").
PAD_ENCODING = 0


@dataclass(frozen=True)
class BFConfig:
    """Default parameters of Sec. 6.1.

    ``eta`` encodings per query vertex; filters sized by Eq. 1 for
    ``expected_trees`` at ``false_positive_rate`` (n=10K, p=0.3 -> m=25K
    bits); ``threshold_t`` is the BF_t bypass knob (5/15/25 in Fig. 12).
    """

    eta: int = 256
    expected_trees: int = 10_000
    false_positive_rate: float = 0.3
    threshold_t: int = 15
    max_ball_trees: int = 40_000

    def filter_bits(self) -> int:
        return required_bits(self.expected_trees, self.false_positive_rate)

    def filter_hashes(self) -> int:
        return optimal_num_hashes(self.filter_bits(), self.expected_trees)


@dataclass
class BFQueryMessage:
    """What the user sends toward the enclaves: the sealed encodings blob
    plus bookkeeping for the experiments (message sizes, truncation)."""

    sealed_blob: bytes
    entries: int
    truncated_vertices: int


def user_prepare_encodings(query: Query, codec: LabelCodec,
                           channel: SecureChannel,
                           config: BFConfig) -> BFQueryMessage:
    """User side: eta canonical encodings per query vertex, sealed."""
    entries: list[tuple[str, list[int]]] = []
    truncated_vertices = 0
    for u in query.vertex_order:
        encodings, _ = enumerate_center_tree_encodings(
            query.pattern, u, codec, BF_TOPOLOGIES)
        ordered = sorted(encodings)
        if len(ordered) > config.eta:
            ordered = ordered[:config.eta]
            truncated_vertices += 1
        while len(ordered) < config.eta:
            ordered.append(PAD_ENCODING)
        entries.append((repr(query.label(u)), ordered))
    payload = json.dumps({"eta": config.eta, "entries": entries},
                         separators=(",", ":")).encode("utf-8")
    return BFQueryMessage(sealed_blob=channel.seal(payload),
                          entries=len(entries),
                          truncated_vertices=truncated_vertices)


@dataclass
class BFPruneOutcome:
    """Player-side result for one ball: either an encrypted ``c_sgx`` or a
    bypass flag (threshold exceeded / enumeration truncated)."""

    ball_id: int
    c_sgx: bytes | None = None
    bypassed: bool = False
    trees_enumerated: int = field(default=0)
    filter_bytes: int = field(default=0)


def player_bf_prune(enclave: Enclave, ball: Ball, codec: LabelCodec,
                    config: BFConfig) -> BFPruneOutcome:
    """Player side: build this ball's bloom filter and query the enclave.

    Balls that trip the BF_t threshold (or whose tree enumeration hits the
    safety cap) bypass pruning and are reported as positives -- pruning must
    never be unsound, and an incomplete filter could prune a true match.
    """
    if bf_threshold_exceeded(ball.graph, ball.center, config.threshold_t):
        return BFPruneOutcome(ball_id=ball.ball_id, bypassed=True)
    encodings, truncated = enumerate_center_tree_encodings(
        ball.graph, ball.center, codec, BF_TOPOLOGIES,
        max_trees=config.max_ball_trees)
    if truncated:
        return BFPruneOutcome(ball_id=ball.ball_id, bypassed=True,
                              trees_enumerated=len(encodings))
    ball_filter = BloomFilter(config.filter_bits(), config.filter_hashes())
    ball_filter.add(PAD_ENCODING)
    ball_filter.update(sorted(encodings))
    blob = ball_filter.to_bytes()
    c_sgx = enclave.check_ball(blob, repr(ball.center_label))
    return BFPruneOutcome(ball_id=ball.ball_id, c_sgx=c_sgx,
                          trees_enumerated=len(encodings),
                          filter_bytes=len(blob))


def user_decode_outcome(channel: SecureChannel,
                        outcome: BFPruneOutcome) -> bool:
    """User side: True = positive (keep the ball), False = spurious."""
    if outcome.bypassed:
        return True
    assert outcome.c_sgx is not None
    matched_vertices = int.from_bytes(channel.open(outcome.c_sgx), "big")
    return matched_vertices > 0
