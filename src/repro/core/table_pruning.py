"""Generic encrypted-table pruning.

Twiglet pruning (Sec. 4.2), the path baseline of [57] and the neighbor-label
baseline of [17] all follow one scheme:

* **User**: per query vertex ``u``, enumerate *all possible* feature keys
  over the public alphabet ``Sigma_Q`` (so the table shape reveals nothing)
  and encrypt, per key, ``q`` when the feature exists in the query at ``u``
  ("the ball must have this too") and ``1`` otherwise.
* **Player**: per candidate ball, compute the set of feature keys present
  at the ball center; per table whose start label matches the center label,
  multiply the key's ciphertext where the ball *lacks* the feature and the
  user-chosen ``c_one`` where it has it (Alg. 5 lines 4-11); sum the
  per-table products into the ball's pruning ciphertext.
* **User**: a decryption holding the factor ``q`` in every table means no
  query vertex can match the center -- the ball is spurious (Prop. 4).

The feature family (twiglets / paths / distance-label pairs) is the only
thing that differs; each technique supplies a key enumerator and a
membership extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.aggregation import (
    BallCiphertextResult,
    ChunkPlan,
    aggregate_items,
    chunked_product,
)
from repro.crypto.cgbe import CGBE, CGBECiphertext, CGBEPublicParams
from repro.crypto.kernels import MaskedProductTable, MultiExpRegistry
from repro.graph.ball import Ball
from repro.graph.labeled_graph import Label


@dataclass
class PruneTable:
    """One query vertex's encrypted feature table (e.g. Table 2).

    ``keys`` enumerates every possible feature for this start label in a
    deterministic public order; ``ciphertexts[i]`` encrypts q (exists in
    query) or 1 (does not).  Which is which is hidden by CGBE.
    """

    start_label: Label
    keys: tuple[Hashable, ...]
    ciphertexts: list[CGBECiphertext]

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.ciphertexts):
            raise ValueError("one ciphertext per key is required")

    def __len__(self) -> int:
        return len(self.keys)


def build_table(cgbe: CGBE, start_label: Label,
                keys: Sequence[Hashable],
                present: set[Hashable]) -> PruneTable:
    """User side: encrypt the existence column of one vertex's table."""
    ciphertexts = [cgbe.encrypt_q() if key in present else cgbe.encrypt(1)
                   for key in keys]
    return PruneTable(start_label=start_label, keys=tuple(keys),
                      ciphertexts=ciphertexts)


def table_plan(params: CGBEPublicParams, table_size: int,
               expected_terms: int = 64) -> ChunkPlan:
    """Chunk layout for tables of ``table_size`` keys (same size for every
    query vertex by construction, so one plan serves the whole query)."""
    return ChunkPlan.plan(params, table_size, expected_terms=expected_terms)


def player_table_prune(
    params: CGBEPublicParams,
    tables: Sequence[PruneTable],
    ball: Ball,
    ball_features: set[Hashable],
    c_one: CGBECiphertext,
    plan: ChunkPlan,
    multiexp: MultiExpRegistry | None = None,
    kind: str = "table",
) -> BallCiphertextResult:
    """Alg. 5 generalized: aggregate the violation ciphertext of one ball.

    Only tables whose start label equals the ball center's label take part
    (Alg. 5 line 4); the per-key branch (``c_one`` vs the table ciphertext)
    depends on the *ball's* features only, never on the encrypted bits.

    With ``multiexp`` enabled, each table's ciphertext column becomes a
    shared :class:`MaskedProductTable` (keyed by the public coordinate
    ``(kind, table_index)``) and the ball's feature membership packs into
    a selection mask -- balls sharing a feature set hit the table's memo.
    Results are value-identical to the ``chunked_product`` fold.
    """
    center_label = ball.center_label
    item_chunks: list[list[CGBECiphertext]] = []
    use_kernel = multiexp is not None and multiexp.enabled
    for index, table in enumerate(tables):
        if table.start_label != center_label:
            continue
        if use_kernel:
            mtable = multiexp.table(
                (kind, index),
                lambda table=table: MaskedProductTable(
                    params, table.ciphertexts, c_one, plan,
                    multiexp.config))
            mask = 0
            for pos, key in enumerate(table.keys):
                if key in ball_features:
                    mask |= 1 << pos
            item_chunks.append(mtable.chunk_ciphertexts(mask))
        else:
            factors = [
                c_one if key in ball_features else table.ciphertexts[i]
                for i, key in enumerate(table.keys)
            ]
            item_chunks.append(chunked_product(params, factors, c_one, plan))
    return aggregate_items(params, ball.ball_id, item_chunks, plan)
