"""Encodings: the ``M_Qe`` prime encoding and canonical label codes.

Sec. 3.2 encodes the query's adjacency matrix as::

    M_Qe(i, j) = q  if M_Q(i, j) = 1      (edge present)
               = 1  otherwise             (edge absent)

so that multiplying ``M_Qe(i, j)`` into an aggregate exactly when the
candidate lacks the corresponding edge plants a factor of the public prime
``q`` iff a matching violation exists.  Encrypted under CGBE, the SP
multiplies blindly and the user tests divisibility by ``q`` after
decryption.

The :class:`LabelCodec` provides the shared label -> small-integer code used
by the canonical encodings of 2-label binary trees (Sec. 4.1.2) and by the
twiglet machinery.  The alphabet it covers is ``Sigma_Q`` -- the query's
label *set* is public in the protocol (the plaintext first column of every
twiglet table enumerates label sequences over it; only existence bits are
encrypted), so a codec derived from it leaks nothing new.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.crypto.cgbe import CGBE, CGBECiphertext
from repro.graph.labeled_graph import Label
from repro.graph.query import Query


def encode_query_matrix(query: Query) -> np.ndarray:
    """``M_Qe`` as an object array of Python ints (1 or q is substituted at
    encryption time; here edge-present positions hold the sentinel -1)."""
    n = query.size
    encoded = np.ones((n, n), dtype=np.int64)
    for i, u in enumerate(query.vertex_order):
        for j, v in enumerate(query.vertex_order):
            if query.pattern.has_edge(u, v):
                encoded[i, j] = -1  # placeholder for q
    return encoded


def materialize_query_matrix(query: Query, q: int) -> np.ndarray:
    """``M_Qe`` with the concrete prime ``q`` substituted (plaintext runs
    and tests)."""
    encoded = encode_query_matrix(query).astype(object)
    encoded[encoded == -1] = q
    return encoded


def encrypt_query_matrix(cgbe: CGBE, query: Query,
                         ) -> list[list[CGBECiphertext]]:
    """``M^E_Qe``: every position independently CGBE-encrypted (Sec. 3.2).

    Both values 1 and q are encrypted with fresh blinds, so the SP cannot
    distinguish edge from non-edge positions (CPA security of CGBE) -- this
    is the query-privacy core of the whole framework.
    """
    plain = materialize_query_matrix(query, cgbe.params.q)
    return [[cgbe.encrypt(int(plain[i, j])) for j in range(query.size)]
            for i in range(query.size)]


@dataclass(frozen=True)
class LabelCodec:
    """Canonical label -> code mapping over a fixed alphabet.

    Codes run 1..K in sorted-repr order.  ``base`` is the positional base of
    the canonical tree encodings; the default ``K + 1`` makes positional
    encodings collision-free (the paper's Fig. 7 example uses base K, which
    can collide -- acceptable for bloom filters; pass ``paper_base=True``
    to reproduce it, e.g. the encoding 77 of Fig. 7).
    """

    codes: tuple[tuple[Label, int], ...]
    base: int

    @classmethod
    def from_alphabet(cls, alphabet: Iterable[Label],
                      paper_base: bool = False) -> "LabelCodec":
        ordered = sorted(set(alphabet), key=repr)
        if not ordered:
            raise ValueError("alphabet must be non-empty")
        codes = tuple((label, i + 1) for i, label in enumerate(ordered))
        base = len(ordered) if paper_base else len(ordered) + 1
        return cls(codes=codes, base=max(base, 2))

    def __post_init__(self) -> None:
        if self.base < 2:
            raise ValueError("base must be at least 2")

    @property
    def alphabet(self) -> tuple[Label, ...]:
        return tuple(label for label, _ in self.codes)

    def __len__(self) -> int:
        return len(self.codes)

    def code(self, label: Label) -> int:
        for candidate, code in self.codes:
            if candidate == label:
                return code
        raise KeyError(f"label {label!r} not in codec alphabet")

    def __contains__(self, label: Label) -> bool:
        return any(candidate == label for candidate, _ in self.codes)

    def encode_positions(self, labels: Sequence[Label]) -> int:
        """Positional encoding ``sum(code(l) * base^position)`` -- the exact
        arithmetic of Fig. 7 (= 77 for (A, C, D) with paper_base)."""
        return sum(self.code(label) * self.base ** position
                   for position, label in enumerate(labels))

    def encode_sequence(self, labels: Sequence[Label], tag: int = 0) -> int:
        """Positional encoding prefixed with a structure ``tag`` so encodings
        of different shapes (topologies, twiglet variants) never collide."""
        if tag < 0:
            raise ValueError("tag must be non-negative")
        return tag * self.base ** 6 + self.encode_positions(labels)
