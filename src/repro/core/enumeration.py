"""Candidate enumeration -- Alg. 1 (``CanEnum``).

Enumerates the candidate mapping matrices (CMMs, Def. 2) of a ball for a
query.  Faithful to the paper's obliviousness contract: *everything here
depends only on the query's vertex set and labels* (``V_Q``, ``Sigma_Q``,
``L_Q``), never on ``E_Q``.  The Player runs this on plaintext balls while
the query's edges stay encrypted.

Two refinements the paper calls out are implemented explicitly:

* ``opt()`` (Alg. 1 line 3, after [18]): ball minimization by labels --
  vertices whose label is not in ``Sigma_Q`` can never be matched and are
  dropped from the candidate sets.  Label-only, hence still oblivious.
* Footnote 6's bypass: balls whose enumeration would explode are cut off at
  ``limit`` CMMs and flagged ``truncated``; the framework treats them as
  positives rather than spending unbounded time.  The limit is a public
  constant, so obliviousness is unaffected.

The center-containment rule (Alg. 1 lines 11-12, justified by Prop. 2) is
enforced during the recursion with a label-based feasibility cut: a partial
assignment that has not used the center and whose remaining rows cannot
possibly map to it (no remaining row carries the center's label) is
abandoned early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.ball import Ball
from repro.graph.labeled_graph import Vertex
from repro.graph.matrix import CandidateMappingMatrix
from repro.graph.query import Query


@dataclass
class CandidateEnumeration:
    """The outcome of Alg. 1 on one ball."""

    cmms: list[CandidateMappingMatrix] = field(default_factory=list)
    truncated: bool = False
    enumerated: int = 0

    @property
    def is_spurious(self) -> bool:
        """No CMM and no truncation: the ball center cannot be matched."""
        return not self.cmms and not self.truncated


def candidate_vertices(query: Query, ball: Ball,
                       ) -> dict[Vertex, list[Vertex]]:
    """``CV(u)`` (Alg. 1 lines 6-9): the ball vertices sharing ``u``'s label.

    Ordering is deterministic so enumeration is reproducible.
    """
    by_label: dict[object, list[Vertex]] = {}
    for label in query.alphabet:
        by_label[label] = sorted(ball.graph.vertices_with_label(label),
                                 key=repr)
    return {u: by_label[query.label(u)] for u in query.vertex_order}


def iter_cmms(query: Query, ball: Ball,
              injective: bool = False) -> Iterator[CandidateMappingMatrix]:
    """Lazy enumeration of all CMMs of ``ball`` whose image contains the
    ball center (Alg. 1 with Prop. 2's restriction).

    ``injective`` restricts assignments to distinct ball vertices -- the
    "minor modification" extending Alg. 1 to sub-iso (footnote 3).  It uses
    no edge information, so obliviousness is unaffected.
    """
    cv = candidate_vertices(query, ball)
    if any(not candidates for candidates in cv.values()):
        return
    order = query.vertex_order
    center = ball.center
    center_label = ball.center_label
    # rows_with_center_label[i] = does any row >= i carry the center label?
    suffix_has_center_label = [False] * (len(order) + 1)
    for i in range(len(order) - 1, -1, -1):
        suffix_has_center_label[i] = (query.label(order[i]) == center_label
                                      or suffix_has_center_label[i + 1])

    assignment: list[Vertex] = []
    used: set[Vertex] = set()

    def extend(row: int, center_used: bool) -> Iterator[CandidateMappingMatrix]:
        if row == len(order):
            if center_used:  # Alg. 1 lines 11-12
                yield CandidateMappingMatrix(query_order=order,
                                             assignment=tuple(assignment))
            return
        if not center_used and not suffix_has_center_label[row]:
            return  # label-based feasibility cut (still E_Q-independent)
        for v in cv[order[row]]:
            if injective and v in used:
                continue
            assignment.append(v)
            if injective:
                used.add(v)
            yield from extend(row + 1, center_used or v == center)
            assignment.pop()
            if injective:
                used.discard(v)

    yield from extend(0, False)


def enumerate_cmms(query: Query, ball: Ball,
                   limit: int | None = None,
                   injective: bool = False) -> CandidateEnumeration:
    """Alg. 1: the set ``R_1`` of CMMs of all candidate subgraphs of ``ball``.

    ``limit`` is the footnote-6 bypass threshold; when hit, enumeration
    stops and the result is flagged truncated.
    """
    result = CandidateEnumeration()
    for cmm in iter_cmms(query, ball, injective=injective):
        if limit is not None and result.enumerated >= limit:
            result.truncated = True
            break
        result.cmms.append(cmm)
        result.enumerated += 1
    return result


def count_cmm_upper_bound(query: Query, ball: Ball) -> int:
    """The paper's complexity bound: the product of ``|CV(u)|`` sizes.

    Used by the framework to decide bypassing *before* enumerating.
    """
    bound = 1
    for candidates in candidate_vertices(query, ball).values():
        bound *= len(candidates)
        if bound > 10 ** 18:
            return 10 ** 18
    return bound
