"""Prilo / Prilo*: privacy preserving localized graph pattern query processing.

A faithful Python reproduction of the SIGMOD 2023 paper "A Framework for
Privacy Preserving Localized Graph Pattern Query Processing".

Quickstart::

    from repro import Semantics
    from repro.framework import PriloStar
    from repro.workloads import load_dataset

    dataset = load_dataset("slashdot")            # scaled synthetic stand-in
    engine = PriloStar.setup(dataset.graph, seed=1)
    query = dataset.random_query(size=8, diameter=3,
                                 semantics=Semantics.HOM)
    result = engine.run(query)
    print(result.matches)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.graph import (
    Ball,
    BallIndex,
    LabeledGraph,
    QGen,
    Query,
    Semantics,
    extract_ball,
)

__version__ = "1.0.0"

__all__ = [
    "Ball",
    "BallIndex",
    "LabeledGraph",
    "QGen",
    "Query",
    "Semantics",
    "extract_ball",
    "__version__",
]
