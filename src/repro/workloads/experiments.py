"""Experiment harnesses -- one reusable function per family of figures.

Each harness returns plain dataclasses/dicts that the benchmark scripts
format into the paper's rows and series.  Everything is deterministic given
the seeds, and every harness works at any dataset scale.

Figure coverage:

* :func:`pruning_study` -- Fig. 2(a), Fig. 10, Figs. 12-15, Figs. 19-21
  (pruning power and per-ball pruning runtimes for BF_t / Twiglet_h /
  Path_h / neighbor labels, with ground-truth confusion counts).
* :func:`retrieval_study` -- Fig. 2(b), Fig. 11, Figs. 16-17 (SSG vs RSG
  time-to-results across k).
* :func:`ldbc_study` -- Fig. 18 (per-workload Prilo vs Prilo* + PPCR).
* :func:`user_side_costs` -- EXP-1 of Sec. 6.2.
* :func:`dataset_statistics` / :func:`ball_statistics` -- Tables 3-4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from statistics import mean, pstdev

from repro.framework.messages import PruningMessages
from repro.framework.metrics import ConfusionCounts, PhaseTimings
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.framework.simulator import simulate_schedule
from repro.core.retrieval import rsg_sequences, ssg_sequences
from repro.graph.ball import Ball
from repro.graph.ldbc import TESTED_WORKLOADS, instantiate_workload
from repro.graph.query import Query, Semantics
from repro.semantics.evaluate import ball_contains_match
from repro.workloads.datasets import Dataset


def ground_truth_positive_ids(query: Query,
                              candidates: list[Ball]) -> frozenset[int]:
    """Which candidate balls really contain a match (plaintext evaluation)."""
    return frozenset(ball.ball_id for ball in candidates
                     if ball_contains_match(query, ball))


# ----------------------------------------------------------------------
# Pruning power / per-ball pruning runtime studies
# ----------------------------------------------------------------------
@dataclass
class BallPruneRecord:
    """Per-ball measurements feeding the boxplot figures (12, 14, 19-21)."""

    ball_id: int
    ball_size: int
    truth_positive: bool
    verdicts: dict[str, bool] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)


@dataclass
class PruningStudy:
    """Aggregated outcome of running the pruning methods over a workload."""

    dataset: str
    semantics: Semantics
    methods: tuple[str, ...]
    candidates: int = 0
    confusion: dict[str, ConfusionCounts] = field(default_factory=dict)
    total_cost: dict[str, float] = field(default_factory=dict)
    balls: list[BallPruneRecord] = field(default_factory=list)

    def remaining(self, method: str) -> int:
        """Candidate balls left after this method's pruning (Fig. 10's
        y-axis; 'all' maps to the unpruned count)."""
        if method == "all":
            return self.candidates
        counts = self.confusion[method]
        return counts.tp + counts.fp

    def ppcr(self, method: str) -> float:
        return self.confusion[method].ppcr


_METHOD_FLAGS = {
    "bf": "use_bf",
    "twiglet": "use_twiglet",
    "path": "use_path",
    "neighbor": "use_neighbor",
}


def pruning_study(
    dataset: Dataset,
    queries: list[Query],
    methods: tuple[str, ...] = ("neighbor", "path", "twiglet", "bf"),
    config: PriloConfig | None = None,
    combine: tuple[str, ...] = ("bf", "twiglet"),
) -> PruningStudy:
    """Run every requested pruning method over the queries' candidate balls.

    All methods are computed in one pass per ball so their per-ball costs
    are measured under identical conditions.  ``combine`` adds a synthetic
    AND-combined method (Fig. 10's "BF + Twiglet" bars) when both parts ran.
    """
    if not queries:
        raise ValueError("need at least one query")
    semantics = queries[0].semantics
    graph = dataset.graph_for(semantics)
    if config is None:
        config = PriloConfig()
    flags = {flag: (name in methods)
             for name, flag in _METHOD_FLAGS.items()}
    config = replace(config, **flags)
    engine = Prilo(graph, config)

    study = PruningStudy(dataset=dataset.name, semantics=semantics,
                         methods=methods)
    for name in methods:
        study.confusion[name] = ConfusionCounts()
        study.total_cost[name] = 0.0
    combined_name = "+".join(combine)
    do_combined = combine and all(name in methods for name in combine)
    if do_combined:
        study.confusion[combined_name] = ConfusionCounts()

    for query in queries:
        label, candidates = engine.candidate_balls(query)
        study.candidates += len(candidates)
        truth = ground_truth_positive_ids(query, candidates)
        timings = PhaseTimings()
        message, state = engine.user.prepare_query(
            query, use_bf=config.use_bf, use_twiglet=config.use_twiglet,
            use_path=config.use_path, use_neighbor=config.use_neighbor,
            twiglet_h=config.twiglet_h, bf_config=config.bf,
            enclaves=[p.enclave for p in engine.players],
            sizes=engine_sizes(), timings=timings)
        pms = PruningMessages()
        pm_costs: dict[int, float] = {}
        per_ball_costs: dict[str, dict[int, float]] = {m: {} for m in methods}
        # Measure each method's per-ball cost separately: run them one
        # method at a time through the same player.
        for method in methods:
            solo = _single_method_message(message, method)
            solo_pms = PruningMessages()
            before = dict(pm_costs)
            for i, ball in enumerate(candidates):
                player = engine.players[i % len(engine.players)]
                start = time.perf_counter()
                player.compute_pms(solo, [ball], bf_config=config.bf,
                                   twiglet_h=config.twiglet_h, pms=solo_pms,
                                   pm_costs=pm_costs, timings=timings)
                per_ball_costs[method][ball.ball_id] = (
                    time.perf_counter() - start)
            pm_costs.update(before)
            _merge_pms(pms, solo_pms)
        decrypted, per_method = engine.user.decrypt_pms(
            pms, [b.ball_id for b in candidates], state, timings)

        for ball in candidates:
            record = BallPruneRecord(ball_id=ball.ball_id,
                                     ball_size=ball.size,
                                     truth_positive=ball.ball_id in truth)
            for method in methods:
                verdict = per_method.get(method, {}).get(ball.ball_id, True)
                record.verdicts[method] = verdict
                record.costs[method] = per_ball_costs[method][ball.ball_id]
                study.confusion[method].record(verdict, record.truth_positive)
                study.total_cost[method] += record.costs[method]
            if do_combined:
                verdict = all(record.verdicts[name] for name in combine)
                record.verdicts[combined_name] = verdict
                study.confusion[combined_name].record(
                    verdict, record.truth_positive)
            study.balls.append(record)
    return study


def engine_sizes():
    from repro.framework.metrics import MessageSizes

    return MessageSizes()


def _single_method_message(message, method: str):
    """A copy of the encrypted query message with one method's payload."""
    from dataclasses import replace as dc_replace

    return dc_replace(
        message,
        twiglet_tables=message.twiglet_tables if method == "twiglet" else None,
        path_tables=message.path_tables if method == "path" else None,
        neighbor_tables=(message.neighbor_tables
                         if method == "neighbor" else None),
        bf_message=message.bf_message if method == "bf" else None,
    )


def _merge_pms(into: PruningMessages, from_: PruningMessages) -> None:
    into.bf.update(from_.bf)
    into.twiglet.update(from_.twiglet)
    into.path.update(from_.path)
    into.neighbor.update(from_.neighbor)


# ----------------------------------------------------------------------
# Retrieval scheduling studies (SSG vs RSG)
# ----------------------------------------------------------------------
@dataclass
class RetrievalRecord:
    """One (query, k) scheduling comparison."""

    dataset: str
    semantics: Semantics
    k: int
    candidates: int
    positives: int
    ppcr: float
    mode: str
    ssg_all_positives: float
    rsg_all_positives: float
    ssg_first_positive: float
    rsg_first_positive: float
    pm_seconds: float
    evaluation_seconds: float

    @property
    def speedup(self) -> float:
        if self.ssg_all_positives <= 0:
            return float("inf") if self.rsg_all_positives > 0 else 1.0
        return self.rsg_all_positives / self.ssg_all_positives


@dataclass
class RetrievalStudy:
    records: list[RetrievalRecord] = field(default_factory=list)

    def mean_speedup(self, k: int | None = None) -> float:
        chosen = [r.speedup for r in self.records
                  if (k is None or r.k == k) and r.speedup != float("inf")]
        return mean(chosen) if chosen else float("nan")


def retrieval_study(
    dataset: Dataset,
    queries: list[Query],
    k_values: tuple[int, ...] = (4,),
    config: PriloConfig | None = None,
) -> RetrievalStudy:
    """Run Prilo* once per query, then replay SSG vs RSG schedules for every
    requested player count from the measured per-ball costs."""
    if not queries:
        raise ValueError("need at least one query")
    semantics = queries[0].semantics
    graph = dataset.graph_for(semantics)
    if config is None:
        config = PriloConfig()
    engine = PriloStar.setup(graph, config)
    study = RetrievalStudy()
    for index, query in enumerate(queries):
        result = engine.run(query)
        costs = result.metrics.per_ball_eval_cost
        positives = result.pm_positive_ids
        for k in k_values:
            ssg, mode = ssg_sequences(result.candidate_ids, positives,
                                      max(k, 2), seed=config.seed + index)
            rsg = rsg_sequences(result.candidate_ids, k,
                                seed=config.seed + index)
            ssg_out = simulate_schedule(ssg, costs, positives)
            rsg_out = simulate_schedule(rsg, costs, positives)
            study.records.append(RetrievalRecord(
                dataset=dataset.name, semantics=semantics, k=k,
                candidates=len(result.candidate_ids),
                positives=len(positives),
                ppcr=(len(positives) / len(result.candidate_ids)
                      if result.candidate_ids else 0.0),
                mode=mode,
                ssg_all_positives=ssg_out.all_positives,
                rsg_all_positives=rsg_out.all_positives,
                ssg_first_positive=ssg_out.first_positive,
                rsg_first_positive=rsg_out.first_positive,
                pm_seconds=result.metrics.timings.pm_computation,
                evaluation_seconds=result.metrics.timings.evaluation,
            ))
    return study


# ----------------------------------------------------------------------
# LDBC workloads (Fig. 18)
# ----------------------------------------------------------------------
@dataclass
class LdbcRecord:
    workload: str
    semantics: Semantics
    candidates: int
    positives: int
    ppcr: float
    mode: str
    prilo_star_seconds: float    # PM (parallel over k) + SSG
    prilo_seconds: float         # RSG time-to-all-positives
    ssg_seconds: float           # scheduling component alone
    rsg_seconds: float
    matches: int

    @property
    def speedup(self) -> float:
        """End-to-end Prilo / Prilo* ratio (includes PM overhead)."""
        if self.prilo_star_seconds <= 0:
            return 1.0
        return self.prilo_seconds / self.prilo_star_seconds

    @property
    def scheduling_speedup(self) -> float:
        """RSG / SSG on the scheduling component alone (Fig. 18's driver)."""
        if self.ssg_seconds <= 0:
            return 1.0 if self.rsg_seconds <= 0 else float("inf")
        return self.rsg_seconds / self.ssg_seconds


def ldbc_study(
    dataset: Dataset,
    semantics: Semantics = Semantics.HOM,
    config: PriloConfig | None = None,
    seed: int = 0,
) -> list[LdbcRecord]:
    """Fig. 18: the ten tested Table 5 workloads, Prilo vs Prilo*."""
    if config is None:
        config = PriloConfig()
    graph = dataset.graph_for(semantics)
    engine = PriloStar.setup(graph, config)
    records: list[LdbcRecord] = []
    for index, shape in enumerate(TESTED_WORKLOADS):
        query = instantiate_workload(shape, graph, semantics,
                                     seed=seed + index)
        result = engine.run(query)
        costs = result.metrics.per_ball_eval_cost
        positives = result.pm_positive_ids
        rsg = rsg_sequences(result.candidate_ids, config.k_players,
                            seed=config.seed + index)
        rsg_out = simulate_schedule(rsg, costs, positives)
        ssg_out = result.schedule
        pm_parallel = (result.metrics.timings.pm_computation
                       / max(config.k_players, 1))
        records.append(LdbcRecord(
            workload=shape.name, semantics=semantics,
            candidates=len(result.candidate_ids), positives=len(positives),
            ppcr=(len(positives) / len(result.candidate_ids)
                  if result.candidate_ids else 0.0),
            mode=result.sequence_mode,
            prilo_star_seconds=pm_parallel + ssg_out.all_positives,
            prilo_seconds=rsg_out.all_positives,
            ssg_seconds=ssg_out.all_positives,
            rsg_seconds=rsg_out.all_positives,
            matches=result.num_matches,
        ))
    return records


# ----------------------------------------------------------------------
# EXP-1: user-side costs
# ----------------------------------------------------------------------
@dataclass
class UserCostRecord:
    dataset: str
    semantics: Semantics
    preprocessing_seconds: float
    decryption_seconds: float
    user_to_sp_bytes: int
    sp_to_user_bytes: int


def user_side_costs(dataset: Dataset, queries: list[Query],
                    config: PriloConfig | None = None) -> list[UserCostRecord]:
    """EXP-1 (Sec. 6.2): preprocessing / decryption times and message sizes."""
    if config is None:
        config = PriloConfig()
    semantics = queries[0].semantics
    engine = PriloStar.setup(dataset.graph_for(semantics), config)
    records = []
    for query in queries:
        result = engine.run(query)
        timings = result.metrics.timings
        sizes = result.metrics.sizes
        records.append(UserCostRecord(
            dataset=dataset.name, semantics=semantics,
            preprocessing_seconds=timings.user_preprocessing,
            decryption_seconds=(timings.user_pm_decryption
                                + timings.user_result_decryption),
            user_to_sp_bytes=sizes.user_to_sp(),
            sp_to_user_bytes=sizes.sp_to_user(),
        ))
    return records


# ----------------------------------------------------------------------
# Tables 3-4
# ----------------------------------------------------------------------
def dataset_statistics(dataset: Dataset) -> dict[str, object]:
    """One Table 3 row (generated vs paper reference)."""
    return {
        "name": dataset.name,
        "vertices": dataset.graph.num_vertices,
        "edges": dataset.graph.num_edges,
        "hom_labels": len(dataset.graph.alphabet),
        "ssim_labels": len(dataset.ssim_graph.alphabet),
        "paper_vertices": dataset.spec.paper_vertices,
        "paper_edges": dataset.spec.paper_edges,
        "edge_vertex_ratio": (dataset.graph.num_edges
                              / max(dataset.graph.num_vertices, 1)),
    }


def ball_statistics(dataset: Dataset, queries: list[Query],
                    config: PriloConfig | None = None) -> dict[str, float]:
    """One Table 4 row: candidate-ball statistics for a query workload."""
    if config is None:
        config = PriloConfig()
    semantics = queries[0].semantics
    graph = dataset.graph_for(semantics)
    engine = Prilo(graph, config)
    sizes: list[int] = []
    edge_counts: list[int] = []
    max_degree = 0
    per_query_counts: list[int] = []
    for query in queries:
        _, candidates = engine.candidate_balls(query)
        per_query_counts.append(len(candidates))
        for ball in candidates:
            sizes.append(ball.size)
            edge_counts.append(ball.graph.num_edges)
            max_degree = max(max_degree, ball.graph.max_degree())
    return {
        "dataset": dataset.name,
        "labels": len(graph.alphabet),
        "avg_balls_per_query": mean(per_query_counts) if per_query_counts else 0,
        "avg_ball_vertices": mean(sizes) if sizes else 0,
        "std_ball_vertices": pstdev(sizes) if len(sizes) > 1 else 0.0,
        "avg_ball_edges": mean(edge_counts) if edge_counts else 0,
        "std_ball_edges": pstdev(edge_counts) if len(edge_counts) > 1 else 0.0,
        "max_degree": max_degree,
    }
