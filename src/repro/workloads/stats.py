"""Boxplot statistics per the paper's footnote 8.

"The box of each interval was drawn around the region between the first
and third quartiles, and a horizontal line at the median value.  The
whiskers extended from the ends of the box to the most distant point with
a runtime within 1.5 times the interquartile range.  Points that lie
outside the whiskers were outliers."

The per-ball runtime figures (12, 14, 19-21) are boxplots over these
summaries; this module computes them so the benchmarks can print the same
five-number series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile on a pre-sorted list."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class BoxplotSummary:
    """The five-number summary plus outliers, footnote-8 style."""

    count: int
    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_summary(values: list[float]) -> BoxplotSummary:
    """Summarize a sample exactly as the paper's figures draw it."""
    if not values:
        raise ValueError("empty sample")
    ordered = sorted(values)
    q1 = _quantile(ordered, 0.25)
    median = _quantile(ordered, 0.5)
    q3 = _quantile(ordered, 0.75)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = [v for v in ordered if low_fence <= v <= high_fence]
    whisker_low = inside[0] if inside else q1
    whisker_high = inside[-1] if inside else q3
    outliers = tuple(v for v in ordered
                     if v < whisker_low or v > whisker_high)
    return BoxplotSummary(count=len(ordered), q1=q1, median=median, q3=q3,
                          whisker_low=whisker_low,
                          whisker_high=whisker_high, outliers=outliers)
