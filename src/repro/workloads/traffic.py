"""Many-tenant traffic for the sharded serving tier.

Production pattern-query serving is not ten fresh queries in a row: a
few popular patterns (dashboards, recurring compliance checks) dominate,
with a long tail of one-off analyst queries.  This module models that as
``tenants`` distinct queries sampled by QGen, replayed ``count`` times
with Zipf-distributed popularity -- rank-1 dominates, tail ranks appear
once or twice.  The skew is what makes the gateway's signature-affine
routing and the shards' CMM caches earn their keep in the scaling
benchmark: popular signatures hit warm caches on every shard.

Everything is driven by one ``seed``: query sampling (delegated to the
dataset's seeded QGen) and the Zipf draw order both derive from it, so a
traffic trace is exactly reproducible -- the property BENCH_shard.json
and the CI chaos run depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.query import Query, Semantics
from repro.workloads.datasets import Dataset
from repro.graph.qgen import QGen


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one synthetic tenant mix."""

    #: Total queries in the trace (arrival order, all tenants mixed).
    count: int = 64
    #: Distinct tenant queries the trace draws from.
    tenants: int = 8
    #: Zipf skew ``s`` (popularity of rank ``k`` is ``k**-s``); 0 is
    #: uniform, ~1 is classic web-workload skew.
    skew: float = 1.1
    #: Query shape, passed through to the dataset's QGen.
    size: int = 8
    diameter: int = 3
    semantics: Semantics = Semantics.HOM
    #: Master seed: drives both tenant sampling and the draw order.
    seed: int = 0


def zipf_ranks(count: int, distinct: int, skew: float, seed: int,
               ) -> list[int]:
    """``count`` ranks in ``[0, distinct)`` drawn Zipf(``skew``), in a
    deterministic order for a fixed seed."""
    if distinct < 1:
        raise ValueError("need at least one distinct tenant")
    weights = [(rank + 1) ** -skew for rank in range(distinct)]
    rng = random.Random(("zipf", seed, count, distinct, skew).__repr__())
    return rng.choices(range(distinct), weights=weights, k=count)


def generate_traffic(dataset: Dataset, spec: TrafficSpec,
                     ) -> tuple[list[Query], list[int]]:
    """The trace: ``(queries in arrival order, their tenant ranks)``.

    The distinct tenant queries come from a *fresh* QGen seeded by the
    spec (``Dataset.random_queries`` streams from a cached generator, so
    its output depends on call history -- useless for replayable
    traffic); the arrival order interleaves tenants by Zipf draw.
    Returning the rank sequence lets benchmarks report per-tenant stats
    without re-deriving the draw.
    """
    graph = dataset.graph_for(spec.semantics)
    qgen = QGen(graph, seed=dataset.spec.seed + spec.seed)
    tenants = qgen.generate_batch(spec.tenants, spec.size, spec.diameter,
                                  spec.semantics)
    ranks = zipf_ranks(spec.count, spec.tenants, spec.skew, spec.seed)
    return [tenants[rank] for rank in ranks], ranks


__all__ = ["TrafficSpec", "generate_traffic", "zipf_ranks"]
