"""Dataset registry: scaled synthetic stand-ins for Table 3.

The paper evaluates on SNAP's *Slashdot*, *DBLP*, and *Twitter* with random
uniform labels, plus the LDBC SNB SF1 graph with tag-class labels
(Sec. 6.4).  Offline, we generate small-world topologies (ring lattice +
shortcuts + hubs) calibrated so that radius-3 candidate balls fall in the
Table 4 size regime -- the quantity the candidate-enumeration and pruning
costs actually depend on -- with Table 3's label-alphabet sizes, scaled so
a laptop evaluates hundreds of balls per query in seconds.  Every benchmark
prints the scale it ran at; EXPERIMENTS.md records paper-vs-measured per
figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.graph.generators import social_graph, relabel_uniform
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.ldbc import ldbc_like_graph
from repro.graph.qgen import QGen
from repro.graph.query import Query, Semantics


@dataclass(frozen=True)
class DatasetSpec:
    """Generation parameters plus the paper's Table 3/4 reference figures."""

    name: str
    num_vertices: int
    lattice_neighbors: int
    rewire_probability: float
    hom_labels: int
    ssim_labels: int
    hubs: int = 0
    hub_degree: int = 0
    reciprocity: float = 0.2
    seed: int = 11
    kind: str = "social"
    paper_vertices: int = 0
    paper_edges: int = 0
    paper_avg_ball: int = 0   # Table 4, |Sigma^H| row

    def scaled(self, scale: float) -> "DatasetSpec":
        """Shrink/grow the vertex count; locality and labels preserved."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(self, num_vertices=max(
            int(self.num_vertices * scale), 2 * self.lattice_neighbors + 2))


DATASET_SPECS: dict[str, DatasetSpec] = {
    # Table 3: Slashdot 82,168 V / 948,464 E, labels 100/64.
    # Table 4: avg ball 243 (|Sigma|=100); we target ~1/2 of that.
    "slashdot": DatasetSpec("slashdot", num_vertices=4000,
                            lattice_neighbors=5, rewire_probability=0.06,
                            hom_labels=100, ssim_labels=64,
                            hubs=6, hub_degree=40, reciprocity=0.35,
                            paper_vertices=82_168, paper_edges=948_464,
                            paper_avg_ball=243),
    # Table 3: DBLP 317,080 V / 1,049,866 E, labels 150/64.
    # Table 4: avg ball 25 -- DBLP is sparse and local.
    "dblp": DatasetSpec("dblp", num_vertices=4800,
                        lattice_neighbors=3, rewire_probability=0.02,
                        hom_labels=150, ssim_labels=64,
                        hubs=4, hub_degree=20, reciprocity=0.5,
                        paper_vertices=317_080, paper_edges=1_049_866,
                        paper_avg_ball=25),
    # Table 3: Twitter 81,306 V / 1,768,149 E (densest), labels 100/64.
    # Table 4: avg ball 245.
    "twitter": DatasetSpec("twitter", num_vertices=4000,
                           lattice_neighbors=7, rewire_probability=0.08,
                           hom_labels=100, ssim_labels=64,
                           hubs=8, hub_degree=60, reciprocity=0.2,
                           paper_vertices=81_306, paper_edges=1_768_149,
                           paper_avg_ball=245),
    # Sec. 6.4: LDBC SF1, 3.16M V / 10.4M E, 213 tag-class labels.
    "ldbc": DatasetSpec("ldbc", num_vertices=6000, lattice_neighbors=3,
                        rewire_probability=0.05, hom_labels=213,
                        ssim_labels=213, kind="ldbc",
                        paper_vertices=3_156_275, paper_edges=10_375_137),
}


@dataclass
class Dataset:
    """A generated dataset with both label-alphabet variants of Table 3."""

    spec: DatasetSpec
    graph: LabeledGraph              # |Sigma^H| labels (hom / sub-iso runs)
    ssim_graph: LabeledGraph         # |Sigma^S| labels (ssim runs)
    _qgen_cache: dict[tuple, QGen] = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    def graph_for(self, semantics: Semantics) -> LabeledGraph:
        """The paper runs ssim on the 64-label variants (Table 3)."""
        if semantics is Semantics.SSIM:
            return self.ssim_graph
        return self.graph

    def random_query(self, size: int = 8, diameter: int = 3,
                     semantics: Semantics = Semantics.HOM,
                     seed: int = 0) -> Query:
        return self.random_queries(1, size, diameter, semantics, seed)[0]

    def random_queries(self, count: int, size: int = 8, diameter: int = 3,
                       semantics: Semantics = Semantics.HOM,
                       seed: int = 0) -> list[Query]:
        """The paper's per-experiment workload: ``count`` QGen queries
        (10 under the default setting, Sec. 6.1)."""
        graph = self.graph_for(semantics)
        key = (semantics is Semantics.SSIM, seed)
        qgen = self._qgen_cache.get(key)
        if qgen is None:
            qgen = QGen(graph, seed=self.spec.seed + seed)
            self._qgen_cache[key] = qgen
        return qgen.generate_batch(count, size, diameter, semantics)


def load_dataset(name: str, scale: float = 1.0,
                 seed: int | None = None) -> Dataset:
    """Generate a named dataset deterministically.

    ``scale`` multiplies the default vertex count; ``seed`` overrides the
    spec's seed (for variance studies).
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: "
                       f"{sorted(DATASET_SPECS)}") from None
    if scale != 1.0:
        spec = spec.scaled(scale)
    if seed is not None:
        spec = replace(spec, seed=seed)
    if spec.kind == "ldbc":
        graph = ldbc_like_graph(num_vertices=spec.num_vertices,
                                edges_per_vertex=spec.lattice_neighbors,
                                num_labels=spec.hom_labels, seed=spec.seed)
        return Dataset(spec=spec, graph=graph, ssim_graph=graph)
    graph = social_graph(spec.num_vertices, spec.lattice_neighbors,
                         spec.rewire_probability, spec.hom_labels,
                         seed=spec.seed, reciprocity=spec.reciprocity,
                         hubs=spec.hubs, hub_degree=spec.hub_degree)
    ssim_graph = relabel_uniform(graph, spec.ssim_labels,
                                 seed=spec.seed + 1)
    return Dataset(spec=spec, graph=graph, ssim_graph=ssim_graph)


def tiny_dataset(seed: int = 0, num_vertices: int = 250,
                 num_labels: int = 16) -> Dataset:
    """A miniature dataset for tests: same shape, seconds-scale runtimes."""
    rng = random.Random(seed)
    spec = DatasetSpec("tiny", num_vertices=num_vertices,
                       lattice_neighbors=3, rewire_probability=0.05,
                       hom_labels=num_labels,
                       ssim_labels=max(num_labels // 2, 2),
                       seed=rng.randrange(1 << 30))
    graph = social_graph(spec.num_vertices, spec.lattice_neighbors,
                         spec.rewire_probability, spec.hom_labels,
                         seed=spec.seed)
    ssim_graph = relabel_uniform(graph, spec.ssim_labels, seed=spec.seed + 1)
    return Dataset(spec=spec, graph=graph, ssim_graph=ssim_graph)
