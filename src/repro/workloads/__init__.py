"""Datasets and experiment harnesses.

:func:`~repro.workloads.datasets.load_dataset` provides scaled synthetic
stand-ins for the paper's SNAP datasets (Table 3) and the LDBC-like graph of
Sec. 6.4; :mod:`~repro.workloads.experiments` holds one reusable harness per
family of paper figures (pruning power, per-ball runtimes, retrieval
scheduling, LDBC workloads, user-side costs).
"""

from repro.workloads.datasets import (
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    load_dataset,
)
from repro.workloads.experiments import (
    PruningStudy,
    RetrievalStudy,
    ball_statistics,
    dataset_statistics,
    ground_truth_positive_ids,
    ldbc_study,
    pruning_study,
    retrieval_study,
    user_side_costs,
)

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "PruningStudy",
    "RetrievalStudy",
    "ball_statistics",
    "dataset_statistics",
    "ground_truth_positive_ids",
    "ldbc_study",
    "load_dataset",
    "pruning_study",
    "retrieval_study",
    "user_side_costs",
]
