"""Cyclic group based encryption (CGBE) of Fan et al. [17].

CGBE (Sec. 2.2) is a CPA-secure symmetric scheme with the two homomorphic
properties Prilo relies on::

    D(E(m1) + E(m2)) = m1*r1 + m2*r2
    D(E(m1) * E(m2)) = m1*m2 * r1*r2

where the ``r_i`` are fresh random blinding factors.  A ciphertext is
``E(m) = m * r * g^x  (mod P)`` for a public prime ``P``, a public group
element ``g``, and the private exponent ``x``.  Products of ``n``
ciphertexts carry ``g^(n*x)``; decryption strips that factor, leaving the
blinded plaintext.  Prilo never needs exact plaintexts -- it only tests
whether the blinded value is a multiple of the public encoding prime ``q``
(a "matching violation" marker), which blinding preserves.

Two operational constraints, both first-class here:

* **Equal powers for addition.**  Summed ciphertexts must carry the same
  ``g^(n*x)`` factor.  :class:`CGBECiphertext` tracks ``power`` and
  :meth:`CGBE.add` enforces it; the framework keeps powers aligned by
  multiplying encryptions of 1 where the paper's pseudocode skips positions
  (see DESIGN.md, "CGBE power tracking").
* **No overflow.**  Results are only meaningful while the true integer value
  stays below ``P`` ("CGBE requires m1+m2 and m1*m2 are smaller than a large
  public prime p, or there are overflow errors", Sec. 2.2).
  :class:`AggregationBudget` computes safe multiplication/addition counts and
  ciphertexts carry a conservative bit-size bound so violations raise
  :class:`OverflowError_` instead of silently corrupting results.

Parameters follow Sec. 6.1: 32-bit ``q`` and ``r``, a 4096-bit public value.
Tests use smaller moduli; the 2048/3072/4096-bit moduli are the RFC 3526
MODP primes so no expensive prime generation happens at import time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto import ops
from repro.crypto.prng import random_bits, seeded_rng

# RFC 3526 MODP group primes (2048 / 3072 / 4096 bits).  These are safe
# primes p = 2q'+1; any quadratic residue generates the order-q' subgroup.
_RFC3526_PRIMES: dict[int, int] = {
    2048: int(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
        "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
        "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
        "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
        "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
        "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
        16),
    3072: int(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
        "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
        "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
        "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
        "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
        "3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33"
        "A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7"
        "ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864"
        "D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2"
        "08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF",
        16),
    4096: int(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
        "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
        "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
        "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
        "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
        "3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33"
        "A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7"
        "ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864"
        "D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2"
        "08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A92108011A723C12A787E6D7"
        "88719A10BDBA5B2699C327186AF4E23C1A946834B6150BDA2583E9CA2AD44CE8"
        "DBBBC2DB04DE8EF92E8EFC141FBECAA6287C59474E6BC05D99B2964FA090C3A2"
        "233BA186515BE7ED1F612970CEE2D7AFB81BDD762170481CD0069127D5B05AA9"
        "93B4EA988D8FDDC186FFB7DC90A6C08F4DF435C934063199FFFFFFFFFFFFFFFF",
        16),
}


class OverflowError_(ArithmeticError):
    """A homomorphic operation would exceed the modulus capacity.

    Named with a trailing underscore to avoid shadowing the builtin while
    staying recognizable; exported as ``repro.crypto.OverflowError_``.
    """


#: Process-global Montgomery context for :meth:`CGBE.product`'s chain
#: fold.  Installed/cleared by :func:`repro.crypto.kernels.kernel_scope`
#: (the crypto layer cannot import kernels without a cycle, so the hook
#: is a module global rather than a parameter threaded through every
#: aggregation call site).  ``None`` means plain ``%`` arithmetic.
_MONT: "object | None" = None


def install_montgomery(context: "object | None") -> "object | None":
    """Install (or clear, with ``None``) the product-fold Montgomery
    context; returns the previous installation so scopes can restore it."""
    global _MONT
    previous = _MONT
    _MONT = context
    return previous


class FixedBaseExp:
    """Windowed fixed-base modular exponentiation with a bounded memo.

    For a fixed ``base`` and ``modulus`` the table holds
    ``base^(j * 2^(window*i))`` per window row ``i`` and digit ``j``; an
    exponentiation then multiplies one table entry per non-zero base-
    ``2^window`` digit of the exponent -- no squarings at all once the rows
    exist.  Rows and row entries are filled lazily, so small exponents (the
    ``power`` values of decrypt's unblinding, typically < 100) touch only
    the bottom row or two, while a full-width private exponent builds the
    table once and every later exponentiation on the same base runs at
    ~``bits/window`` multiplications.

    A FIFO-bounded memo short-circuits repeated exponents entirely -- the
    dominant case on the user side, where thousands of per-query decrypts
    share a handful of distinct ciphertext powers.  Optional ``stats``
    (a :class:`repro.framework.metrics.CacheStats`) records memo behavior.
    """

    def __init__(self, base: int, modulus: int, window: int = 4,
                 max_memo: int = 1024, stats: "object | None" = None,
                 montgomery: "object | None" = None) -> None:
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        if not 1 <= window <= 8:
            raise ValueError("window must be in 1..8")
        if max_memo < 1:
            raise ValueError("max_memo must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.max_memo = max_memo
        self.stats = stats
        # Optional repro.crypto.kernels.MontgomeryContext: table entries
        # then live in the Montgomery domain (one REDC per table
        # multiplication) and pow() converts back at its boundary.  The
        # memo stores converted (plain-domain) results, so memo hits skip
        # the conversion entirely.
        self._mont = montgomery
        base_value = self.base if montgomery is None \
            else montgomery.to_mont(self.base)
        # _rows[i][j] = base^((j+1) * 2^(window*i)); filled lazily.
        self._rows: list[list[int]] = [[base_value]]
        self._memo: dict[int, int] = {}
        if stats is not None:
            stats.capacity = max(stats.capacity, max_memo)

    def _mul(self, a: int, b: int) -> int:
        if self._mont is not None:
            return self._mont.mul(a, b)
        ops.record_modmul()
        return (a * b) % self.modulus

    def _entry(self, row: int, digit: int) -> int:
        """``base^(digit * 2^(window*row))``, extending the table as needed."""
        while len(self._rows) <= row:
            # The next row's base is the previous row's base squared
            # ``window`` times.
            value = self._rows[-1][0]
            for _ in range(self.window):
                value = self._mul(value, value)
            self._rows.append([value])
        entries = self._rows[row]
        while len(entries) < digit:
            entries.append(self._mul(entries[-1], entries[0]))
            ops.record_table_build()
        return entries[digit - 1]

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` -- identical to ``pow()``."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent == 0:
            return 1 % self.modulus
        cached = self._memo.get(exponent)
        if cached is not None:
            if self.stats is not None:
                self.stats.hits += 1
            return cached
        if self.stats is not None:
            self.stats.misses += 1
        mask = (1 << self.window) - 1
        result: int | None = None
        row = 0
        remaining = exponent
        while remaining:
            digit = remaining & mask
            if digit:
                entry = self._entry(row, digit)
                result = entry if result is None else \
                    self._mul(result, entry)
            remaining >>= self.window
            row += 1
        assert result is not None
        if self._mont is not None:
            result = self._mont.from_mont(result)
        if len(self._memo) >= self.max_memo:
            self._memo.pop(next(iter(self._memo)))
            if self.stats is not None:
                self.stats.evictions += 1
        self._memo[exponent] = result
        if self.stats is not None:
            self.stats.entries = len(self._memo)
            self.stats.weight = len(self._memo)
        return result


#: Shared fixed-base tables keyed by ``(base, modulus)`` so repeated CGBE
#: instantiations over the same group (store builds, batch servers, and
#: benchmark loops construct several same-seed engines per process) reuse
#: one table for the ``g^x`` computation instead of re-exponentiating.
_FIXED_BASE_TABLES: dict[tuple[int, int], FixedBaseExp] = {}
_FIXED_BASE_TABLE_LIMIT = 16


def _metrics_cache_stats():
    """A fresh :class:`repro.framework.metrics.CacheStats` (imported lazily:
    metrics is dependency-free, but the crypto layer must not load the
    framework package at import time)."""
    from repro.framework.metrics import CacheStats

    return CacheStats()


def shared_fixed_base(base: int, modulus: int) -> FixedBaseExp:
    """The process-wide :class:`FixedBaseExp` for ``(base, modulus)``."""
    key = (base, modulus)
    table = _FIXED_BASE_TABLES.get(key)
    if table is None:
        if len(_FIXED_BASE_TABLES) >= _FIXED_BASE_TABLE_LIMIT:
            _FIXED_BASE_TABLES.pop(next(iter(_FIXED_BASE_TABLES)))
        table = FixedBaseExp(base, modulus)
        _FIXED_BASE_TABLES[key] = table
    return table


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 3:
        raise ValueError("bits must be >= 3")
    while True:
        candidate = random_bits(rng, bits) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class AggregationBudget:
    """Safe homomorphic-operation counts for a given parameter set.

    Every multiplied ciphertext contributes at most ``q_bits + r_bits`` bits
    to the true integer value; a sum of ``terms`` products adds
    ``ceil(log2 terms)`` bits.  The budget answers "how many factors may a
    product have if I am going to sum ``terms`` of them?".
    """

    modulus_bits: int
    q_bits: int
    r_bits: int

    @property
    def bits_per_factor(self) -> int:
        return self.q_bits + self.r_bits

    def max_factors(self, terms: int = 1) -> int:
        """Largest safe product length when ``terms`` products are summed."""
        if terms < 1:
            raise ValueError("terms must be positive")
        headroom = self.modulus_bits - 1 - max(terms - 1, 0).bit_length()
        return max(headroom // self.bits_per_factor, 0)

    def max_terms(self, factors: int) -> int:
        """Largest safe sum length over products of ``factors`` factors."""
        if factors < 1:
            raise ValueError("factors must be positive")
        headroom = self.modulus_bits - 1 - factors * self.bits_per_factor
        if headroom < 0:
            return 0
        return min(1 << headroom, 1 << 62)


@dataclass(frozen=True)
class CGBEPublicParams:
    """Public CGBE parameters: modulus ``P``, group element ``g``, encoding
    prime ``q`` and the blinding size ``r_bits``."""

    modulus: int
    generator: int
    q: int
    q_bits: int
    r_bits: int

    @property
    def modulus_bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def budget(self) -> AggregationBudget:
        return AggregationBudget(self.modulus_bits, self.q_bits, self.r_bits)


@dataclass(frozen=True)
class CGBECiphertext:
    """A CGBE ciphertext.

    ``power`` counts the multiplied ciphertexts (the exponent of ``g^x``),
    ``value_bits`` conservatively bounds the true (un-reduced) integer value
    so overflow is detected eagerly.
    """

    value: int
    power: int
    value_bits: int

    def __add__(self, other: "CGBECiphertext") -> "CGBECiphertext":
        raise TypeError("use CGBE.add(); ciphertext addition needs the "
                        "public modulus")


class CGBE:
    """The CGBE scheme: key generation, encryption, homomorphic ops.

    This object holds both the public parameters and the private exponent;
    :meth:`public_params` exposes the SP-visible part.  The SP performs
    homomorphic operations through the static :meth:`multiply` / :meth:`add`
    given only the public parameters.
    """

    def __init__(self, params: CGBEPublicParams, private_exponent: int,
                 seed: int | None = None) -> None:
        if not 1 < params.generator < params.modulus - 1:
            raise ValueError("generator out of range")
        if not 1 < private_exponent < params.modulus - 1:
            raise ValueError("private exponent out of range")
        self._params = params
        self._x = private_exponent
        # g^x via the process-shared fixed-base table: the one modular
        # exponentiation of setup, reused by every encrypt() afterwards and
        # amortized across engine instantiations over the same group.
        self._gx = shared_fixed_base(
            params.generator, params.modulus).pow(private_exponent)
        self._gx_inv = pow(self._gx, -1, params.modulus)
        # Decrypt unblinds with (g^x)^-power; ciphertext powers repeat
        # heavily (every chunk of a plan carries the same factor count), so
        # a memoized fixed-base table turns the per-ciphertext pow() into a
        # dict lookup.
        self.decrypt_stats = _metrics_cache_stats()
        self._unblind = FixedBaseExp(self._gx_inv, params.modulus,
                                     max_memo=256,
                                     stats=self.decrypt_stats)
        self._rng = seeded_rng("cgbe-blinding", seed)

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, modulus_bits: int = 2048, q_bits: int = 32,
                 r_bits: int = 32, seed: int | None = None) -> "CGBE":
        """Generate a full CGBE instance.

        For 2048/3072/4096 bits the fixed RFC 3526 primes are used; other
        sizes generate a fresh probable prime (intended for tests, where
        small moduli keep the arithmetic fast).
        """
        rng = seeded_rng("cgbe-keygen", seed)
        if modulus_bits in _RFC3526_PRIMES:
            modulus = _RFC3526_PRIMES[modulus_bits]
        else:
            modulus = generate_prime(modulus_bits, rng)
        if modulus.bit_length() <= q_bits + r_bits:
            raise ValueError("modulus must exceed q_bits + r_bits; no "
                             "homomorphic operation would be safe")
        generator = pow(rng.randrange(2, modulus - 1), 2, modulus)
        if generator in (0, 1):
            generator = 4
        q = generate_prime(q_bits, rng)
        x = rng.randrange(2, modulus - 1)
        params = CGBEPublicParams(modulus=modulus, generator=generator,
                                  q=q, q_bits=q_bits, r_bits=r_bits)
        return cls(params, x, seed=seed)

    # ------------------------------------------------------------------
    @property
    def params(self) -> CGBEPublicParams:
        return self._params

    def public_params(self) -> CGBEPublicParams:
        """What the service provider is allowed to see."""
        return self._params

    # ------------------------------------------------------------------
    # encryption / decryption (user side)
    # ------------------------------------------------------------------
    def encrypt(self, message: int) -> CGBECiphertext:
        """``E(m) = m * r * g^x mod P`` with a fresh ``r_bits``-bit blind."""
        if message <= 0:
            raise ValueError("CGBE messages must be positive integers "
                             "(the framework encodes with 1 and q)")
        if message.bit_length() > self._params.q_bits:
            raise ValueError(f"message too large: {message.bit_length()} bits "
                             f"> q_bits={self._params.q_bits}")
        r = random_bits(self._rng, self._params.r_bits)
        ops.record_modmul()
        value = (message * r * self._gx) % self._params.modulus
        return CGBECiphertext(value=value, power=1,
                              value_bits=self._params.budget.bits_per_factor)

    def encrypt_one(self) -> CGBECiphertext:
        """A fresh encryption of 1 (the ``c_1`` of Alg. 5 line 8)."""
        return self.encrypt(1)

    def encrypt_q(self) -> CGBECiphertext:
        """A fresh encryption of the violation marker prime ``q``."""
        return self.encrypt(self._params.q)

    def decrypt(self, ciphertext: CGBECiphertext) -> int:
        """Strip ``g^(x*power)``; returns the blinded plaintext.

        The result equals the true integer (product/sum of ``m_i * r_i``)
        exactly when no overflow occurred, which the value_bits tracking
        guarantees for ciphertexts produced through this class.
        """
        unblind = self._unblind.pow(ciphertext.power)
        ops.record_modmul()
        return (ciphertext.value * unblind) % self._params.modulus

    def has_factor_q(self, ciphertext: CGBECiphertext) -> bool:
        """The user's violation test: is the decryption a multiple of q?

        False positives occur with probability ~1/q per random blind
        (negligible at 32-bit q); false negatives cannot occur absent
        overflow.
        """
        return self.decrypt(ciphertext) % self._params.q == 0

    # ------------------------------------------------------------------
    # homomorphic operations (service provider side; public params only)
    # ------------------------------------------------------------------
    @staticmethod
    def multiply(params: CGBEPublicParams, c1: CGBECiphertext,
                 c2: CGBECiphertext) -> CGBECiphertext:
        """``E(m1) * E(m2)``: plaintexts (and blinds) multiply."""
        bits = c1.value_bits + c2.value_bits
        if bits >= params.modulus_bits:
            raise OverflowError_(
                f"product would need {bits} bits but the modulus has "
                f"{params.modulus_bits}; split the aggregation "
                f"(AggregationBudget.max_factors)")
        ops.record_modmul()
        return CGBECiphertext(value=(c1.value * c2.value) % params.modulus,
                              power=c1.power + c2.power,
                              value_bits=bits)

    @staticmethod
    def add(params: CGBEPublicParams, c1: CGBECiphertext,
            c2: CGBECiphertext) -> CGBECiphertext:
        """``E(m1) + E(m2)``: requires equal ``g^x`` powers."""
        if c1.power != c2.power:
            raise ValueError(
                f"cannot add ciphertexts of powers {c1.power} != {c2.power}; "
                f"pad with encryptions of 1 to align (see DESIGN.md)")
        bits = max(c1.value_bits, c2.value_bits) + 1
        if bits >= params.modulus_bits:
            raise OverflowError_(
                f"sum would need {bits} bits but the modulus has "
                f"{params.modulus_bits}; emit partial sums "
                f"(AggregationBudget.max_terms)")
        return CGBECiphertext(value=(c1.value + c2.value) % params.modulus,
                              power=c1.power,
                              value_bits=bits)

    @staticmethod
    def power(params: CGBEPublicParams, ciphertext: CGBECiphertext,
              exponent: int) -> CGBECiphertext:
        """``E(m)^k = E(m^k * r^k)`` via one modular exponentiation.

        Identical to multiplying the same ciphertext ``k`` times (value,
        power, and bit bound alike) at O(log k) cost -- the workhorse
        behind folding repeated ``c_one`` padding factors.
        """
        if exponent < 1:
            raise ValueError("exponent must be positive")
        bits = ciphertext.value_bits * exponent
        if bits >= params.modulus_bits:
            raise OverflowError_(
                f"power would need {bits} bits but the modulus has "
                f"{params.modulus_bits}")
        ops.record_modexp()
        return CGBECiphertext(
            value=pow(ciphertext.value, exponent, params.modulus),
            power=ciphertext.power * exponent,
            value_bits=bits)

    @staticmethod
    def product(params: CGBEPublicParams,
                ciphertexts: list[CGBECiphertext],
                power_cache: "CiphertextPowerCache | None" = None,
                ) -> CGBECiphertext:
        """Fold :meth:`multiply` over a non-empty list.

        Repeats of *equal* ciphertexts (same value/power/bit bound --
        object identity is irrelevant) collapse into one :meth:`power`
        call; verification products are typically half ``c_one``
        repeats, making this a ~2x saving at identical results.  Equality
        grouping matters beyond the common shared-object case: padding
        re-encrypted after a store quarantine, or ciphertexts rebuilt
        from a journal, are distinct allocations that must still fold.
        When ``power_cache`` is given and its base appears in the list,
        that run is served from the cache's precomputed ``base^(2^i)``
        table instead of a fresh exponentiation.
        """
        if not ciphertexts:
            raise ValueError("empty product")
        # Group repeats of equal ciphertexts (order is irrelevant to a
        # product) and exponentiate each distinct ciphertext once.
        counts: dict[CGBECiphertext, int] = {}
        for c in ciphertexts:
            counts[c] = counts.get(c, 0) + 1
        terms: list[CGBECiphertext] = []
        for term, count in counts.items():
            if count > 1:
                if power_cache is not None and term == power_cache.base:
                    term = power_cache.power(count)
                else:
                    term = CGBE.power(params, term, count)
            terms.append(term)
        mont = _MONT
        if mont is not None and len(terms) >= 3:
            # Montgomery chain fold (kernel_scope installed a context):
            # run the exact bits/power bookkeeping of the serial multiply
            # fold -- raising at the first boundary crossing with
            # multiply's message -- then compute the value in one
            # convert-fold-convert pass.  Below 3 terms the two domain
            # conversions cost more than they save.
            bits = terms[0].value_bits
            power = terms[0].power
            for term in terms[1:]:
                bits += term.value_bits
                if bits >= params.modulus_bits:
                    raise OverflowError_(
                        f"product would need {bits} bits but the modulus "
                        f"has {params.modulus_bits}; split the aggregation "
                        f"(AggregationBudget.max_factors)")
                power += term.power
            return CGBECiphertext(value=mont.fold(t.value for t in terms),
                                  power=power, value_bits=bits)
        acc: CGBECiphertext | None = None
        for term in terms:
            acc = term if acc is None else CGBE.multiply(params, acc, term)
        assert acc is not None
        return acc

    @staticmethod
    def sum_(params: CGBEPublicParams,
             ciphertexts: list[CGBECiphertext]) -> CGBECiphertext:
        """Sum a non-empty list of equal-power terms.

        Reduction is balanced (pairwise tree) so the tracked bit bound grows
        by ``ceil(log2 n)`` rather than ``n`` -- the true worst case for a
        sum of ``n`` bounded terms.
        """
        if not ciphertexts:
            raise ValueError("empty sum")
        level = list(ciphertexts)
        while len(level) > 1:
            paired = [CGBE.add(params, level[i], level[i + 1])
                      for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                paired.append(level[-1])
            level = paired
        return level[0]

    # ------------------------------------------------------------------
    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext (for message-size accounting)."""
        return (self._params.modulus_bits + 7) // 8 + 8


class CiphertextPowerCache:
    """Memoized powers of one ciphertext (typically the padding ``c_one``).

    Verification products pad every chunk with repeats of the *same*
    encryption of 1; across the thousands of CMMs of one ball the pad
    count takes only a handful of distinct values.  The cache keeps a
    ``base^(2^i)`` squaring table plus a memo of every exponent served, so
    a repeated pad costs one dict lookup and a fresh pad count costs at
    most ``log2(k)`` multiplications off the table -- never the up-to-
    ``chunk_factors`` serial modmuls of the naive fold.

    Results are bit-identical to ``CGBE.power(params, base, k)`` (same
    value, ``power`` and ``value_bits`` bookkeeping), so swapping the cache
    in changes nothing observable.

    The memo is FIFO-bounded at ``max_entries`` (pad counts are small
    integers, but an unbounded dict would grow with adversarially varied
    chunk layouts); evictions and hit rates are reported through the
    optional ``stats`` hook
    (:class:`repro.framework.metrics.CacheStats`).
    """

    def __init__(self, params: CGBEPublicParams,
                 base: CGBECiphertext, max_entries: int = 4096,
                 stats: "object | None" = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.params = params
        self.base = base
        self.max_entries = max_entries
        self.stats = stats
        self._squares = [base]           # _squares[i] = base^(2^i)
        self._memo: dict[int, CGBECiphertext] = {1: base}
        if stats is not None:
            stats.capacity = max(stats.capacity, max_entries)

    def _square_term(self, i: int) -> CGBECiphertext:
        while len(self._squares) <= i:
            prev = self._squares[-1]
            self._squares.append(CGBE.multiply(self.params, prev, prev))
        return self._squares[i]

    def power(self, exponent: int) -> CGBECiphertext:
        """``base^exponent`` via the squaring table, memoized per exponent."""
        if exponent < 1:
            raise ValueError("exponent must be positive")
        cached = self._memo.get(exponent)
        if cached is not None:
            if self.stats is not None:
                self.stats.hits += 1
            return cached
        if self.stats is not None:
            self.stats.misses += 1
        bits = self.base.value_bits * exponent
        if bits >= self.params.modulus_bits:
            raise OverflowError_(
                f"power would need {bits} bits but the modulus has "
                f"{self.params.modulus_bits}")
        acc: CGBECiphertext | None = None
        remaining, i = exponent, 0
        while remaining:
            if remaining & 1:
                term = self._square_term(i)
                acc = term if acc is None else CGBE.multiply(
                    self.params, acc, term)
            remaining >>= 1
            i += 1
        assert acc is not None
        if len(self._memo) >= self.max_entries:
            self._memo.pop(next(iter(self._memo)))
            if self.stats is not None:
                self.stats.evictions += 1
        self._memo[exponent] = acc
        if self.stats is not None:
            self.stats.entries = len(self._memo)
            self.stats.weight = len(self._memo)
        return acc
