"""Cryptographic substrate: CGBE, a symmetric stream cipher, and keys.

* :class:`~repro.crypto.cgbe.CGBE` -- the cyclic-group based encryption of
  Fan et al. [17], the partially homomorphic scheme all of Prilo's
  ciphertext-domain computation runs on.
* :class:`~repro.crypto.stream_cipher.StreamCipher` -- a SHA-256-CTR + HMAC
  construction standing in for AES-256 (no third-party crypto libraries are
  available offline); used for ball data encryption and the user -> enclave
  channel.
* :mod:`~repro.crypto.keys` -- key material containers for the three parties.
"""

from repro.crypto.cgbe import (
    CGBE,
    AggregationBudget,
    CGBECiphertext,
    CGBEPublicParams,
    CiphertextPowerCache,
    OverflowError_,
)
from repro.crypto.keys import DataOwnerKey, UserKeyring
from repro.crypto.stream_cipher import StreamCipher

__all__ = [
    "CGBE",
    "AggregationBudget",
    "CGBECiphertext",
    "CGBEPublicParams",
    "CiphertextPowerCache",
    "DataOwnerKey",
    "OverflowError_",
    "StreamCipher",
    "UserKeyring",
]
