"""Authenticated symmetric encryption from the standard library.

The paper uses AES-256 for (a) the data owner's ball encryption (secret key
``sk``) and (b) the user -> enclave transport of 2-label binary tree
encodings (Sec. 4.1.2).  No third-party crypto package is available offline,
so this module implements SHA-256-in-counter-mode with an encrypt-then-MAC
HMAC-SHA-256 tag.  Interface properties (symmetric key, random nonce,
ciphertext indistinguishable from random to parties without the key,
tampering detected) match what the reproduction needs; see DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

import hashlib
import hmac
import os

_NONCE_BYTES = 16
_TAG_BYTES = 32
_BLOCK_BYTES = 32  # SHA-256 output


class AuthenticationError(ValueError):
    """Ciphertext failed MAC verification (tampered or wrong key)."""


class StreamCipher:
    """SHA-256-CTR + HMAC-SHA-256, a stdlib-only AES-256-GCM stand-in."""

    KEY_BYTES = 32

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_BYTES:
            raise ValueError(f"key must be {self.KEY_BYTES} bytes, "
                             f"got {len(key)}")
        self._enc_key = hashlib.sha256(b"enc" + key).digest()
        self._mac_key = hashlib.sha256(b"mac" + key).digest()

    @classmethod
    def generate_key(cls, seed: int | None = None) -> bytes:
        """A fresh key; seedable for reproducible experiments."""
        if seed is None:
            return os.urandom(cls.KEY_BYTES)
        return hashlib.sha256(f"stream-cipher-key:{seed}"
                              .encode("utf-8")).digest()

    # ------------------------------------------------------------------
    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK_BYTES - 1) // _BLOCK_BYTES):
            blocks.append(hashlib.sha256(
                self._enc_key + nonce + counter.to_bytes(8, "big")).digest())
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """``nonce || ciphertext || tag``.

        A caller-supplied nonce makes ciphertexts reproducible in tests;
        production-style use leaves it None for a random nonce.
        """
        if nonce is None:
            nonce = os.urandom(_NONCE_BYTES)
        if len(nonce) != _NONCE_BYTES:
            raise ValueError(f"nonce must be {_NONCE_BYTES} bytes")
        body = bytes(p ^ k for p, k in
                     zip(plaintext, self._keystream(nonce, len(plaintext))))
        tag = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        return nonce + body + tag

    def decrypt(self, blob: bytes) -> bytes:
        """Verify the tag, then decrypt; raises on tampering."""
        if len(blob) < _NONCE_BYTES + _TAG_BYTES:
            raise AuthenticationError("ciphertext too short")
        nonce = blob[:_NONCE_BYTES]
        body = blob[_NONCE_BYTES:-_TAG_BYTES]
        tag = blob[-_TAG_BYTES:]
        expected = hmac.new(self._mac_key, nonce + body,
                            hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError("MAC verification failed")
        return bytes(c ^ k for c, k in
                     zip(body, self._keystream(nonce, len(body))))

    @staticmethod
    def overhead_bytes() -> int:
        """Per-message size overhead (nonce + tag), for size accounting."""
        return _NONCE_BYTES + _TAG_BYTES
