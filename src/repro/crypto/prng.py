"""Deterministic randomness helpers.

Everything in the reproduction is seedable so experiments replay exactly.
Seeds are derived by hashing string parts, which keeps independent components
(dataset generation, query generation, CGBE blinding, SSG shuffles)
decorrelated even when the top-level seed is the same.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(*parts: object) -> int:
    """A 64-bit seed derived from the reprs of ``parts``."""
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts)
                            .encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_rng(*parts: object) -> random.Random:
    """A :class:`random.Random` seeded from :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))


def random_bits(rng: random.Random, bits: int) -> int:
    """A uniform integer with exactly ``bits`` bits (MSB set)."""
    if bits < 1:
        raise ValueError("bits must be positive")
    return rng.getrandbits(bits - 1) | (1 << (bits - 1))
