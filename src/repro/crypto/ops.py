"""First-class crypto op accounting (modmul / modexp / table builds).

Wall-clock benchmarks say *that* a change was faster; op counts say *why*.
Every big-integer modular multiplication, modular exponentiation and
window-table-entry build in the CGBE hot path reports into the process's
*active bucket*, installed per phase and role via :func:`counting`.  The
counts are exact (not sampled), deterministic for a fixed workload, and
cheap to collect: one ``is None`` check plus an integer increment per op.

Design notes:

* This module is dependency-free on purpose.  ``repro.crypto.cgbe`` calls
  the ``record_*`` hooks, and ``repro.framework.metrics`` embeds
  :class:`OpCounter` in ``RunMetrics`` -- importing either from here would
  cycle.
* The active bucket is a module global, not a thread-local: every
  executor backend runs crypto single-threaded per process (the process
  pool forks workers; the serial backend runs inline), so a global is
  both correct and the cheapest thing that can work.  Workers count into
  a local :class:`OpCounter`, ship it back inside their share outcome,
  and the parent merges -- the global never crosses a process boundary.
* ``table_build`` counts window-table *entry* constructions.  Each entry
  build is itself one modular multiplication and is **also** counted in
  ``modmul`` -- ``table_build`` attributes where modmuls went, it is not
  a disjoint op class.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class OpCounts:
    """Exact big-integer op tallies for one (phase, role) bucket."""

    modmul: int = 0
    modexp: int = 0
    table_build: int = 0

    def merge(self, other: "OpCounts") -> None:
        self.modmul += other.modmul
        self.modexp += other.modexp
        self.table_build += other.table_build

    @property
    def total(self) -> int:
        """Modmuls plus modexps (table builds are a modmul subset)."""
        return self.modmul + self.modexp

    def as_dict(self) -> dict[str, int]:
        return {"modmul": self.modmul, "modexp": self.modexp,
                "table_build": self.table_build}

    @classmethod
    def from_dict(cls, payload: dict) -> "OpCounts":
        return cls(modmul=int(payload.get("modmul", 0)),
                   modexp=int(payload.get("modexp", 0)),
                   table_build=int(payload.get("table_build", 0)))


class OpCounter:
    """Op counts keyed by ``(phase, role)``.

    Phases follow :class:`repro.framework.metrics.PhaseTimings` names
    (``evaluation``, ``pm_computation``, ``user_preprocessing``, ...);
    roles follow the span vocabulary (``user``, ``player:<k>``).
    """

    def __init__(self) -> None:
        self.buckets: dict[tuple[str, str], OpCounts] = {}

    def bucket(self, phase: str, role: str) -> OpCounts:
        key = (phase, role)
        counts = self.buckets.get(key)
        if counts is None:
            counts = OpCounts()
            self.buckets[key] = counts
        return counts

    def merge(self, other: "OpCounter | None") -> None:
        if other is None:
            return
        for (phase, role), counts in other.buckets.items():
            self.bucket(phase, role).merge(counts)

    def merge_scoped(self, other: "OpCounter | None", *,
                     scope: str) -> None:
        """Merge with every role suffixed ``@<scope>``.

        The sharded gateway folds N per-shard counters into one report;
        without the suffix, ``player:1`` buckets from different shards
        would collapse and per-shard attribution would be gone.  Totals
        are unchanged by scoping (scoped keys stay disjoint per shard and
        :meth:`from_dict` round-trips them: the ``"phase/role"`` key
        splits on the *first* slash, so a suffixed role survives)."""
        if other is None:
            return
        for (phase, role), counts in other.buckets.items():
            self.bucket(phase, f"{role}@{scope}").merge(counts)

    def totals(self) -> OpCounts:
        out = OpCounts()
        for counts in self.buckets.values():
            out.merge(counts)
        return out

    def phase_totals(self) -> dict[str, OpCounts]:
        out: dict[str, OpCounts] = {}
        for (phase, _role), counts in sorted(self.buckets.items()):
            merged = out.setdefault(phase, OpCounts())
            merged.merge(counts)
        return out

    def as_dict(self) -> dict[str, dict[str, int]]:
        """``{"phase/role": {"modmul": ..., ...}}`` sorted for stable JSON."""
        return {f"{phase}/{role}": counts.as_dict()
                for (phase, role), counts in sorted(self.buckets.items())}

    @classmethod
    def from_dict(cls, payload: dict) -> "OpCounter":
        counter = cls()
        for key, counts in payload.items():
            phase, _, role = key.partition("/")
            counter.bucket(phase, role).merge(OpCounts.from_dict(counts))
        return counter

    def __bool__(self) -> bool:
        return any(counts.total or counts.table_build
                   for counts in self.buckets.values())


#: The bucket ops currently record into (None = counting disabled, which
#: is the default -- uncounted paths pay only the None check).
_ACTIVE: OpCounts | None = None


def record_modmul(n: int = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.modmul += n


def record_modexp(n: int = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.modexp += n


def record_table_build(n: int = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.table_build += n


def active_bucket() -> OpCounts | None:
    """The currently-installed bucket (tests and kernels peek at this)."""
    return _ACTIVE


@contextmanager
def counting(counter: OpCounter, phase: str, role: str) -> Iterator[OpCounts]:
    """Install ``counter``'s ``(phase, role)`` bucket as the active one.

    Nested scopes restore the outer bucket on exit, so a user-phase scope
    in the parent does not swallow worker-side counts and vice versa.
    """
    global _ACTIVE
    previous = _ACTIVE
    bucket = counter.bucket(phase, role)
    _ACTIVE = bucket
    try:
        yield bucket
    finally:
        _ACTIVE = previous


__all__ = [
    "OpCounter",
    "OpCounts",
    "active_bucket",
    "counting",
    "record_modexp",
    "record_modmul",
    "record_table_build",
]
