"""Batched crypto kernels for the CGBE hot path.

Three kernels, all value-identical to the naive fold they replace (same
answers, same ``power`` / ``value_bits`` bookkeeping, same overflow
behavior) and selectable per run through :class:`KernelConfig`:

* **Straus-style shared-window multi-exponentiation**
  (:class:`MaskedProductTable`).  Verification, ssim refinement and table
  pruning all fold the *same fixed base vector* (the encrypted query
  matrix's off-diagonal entries, a query row's neighbor pairs, a prune
  table's ciphertexts) under varying selections of which positions are
  replaced by ``c_one``.  Instead of re-multiplying per item, the base
  vector is cut into windows (never crossing chunk boundaries), each
  window keeps a lazily-built subset-product table, and a chunk product
  becomes one table lookup per window plus one cached ``c_one`` pad
  power.  A chunk-result memo on top collapses repeated selection masks
  -- the dominant effect in practice, since distinct projected patterns
  are few (DESIGN.md Sec. 7 measures ~5.7x pattern redundancy on
  slashdot) -- and the whole table is shared across every ball of a
  share.

* **Montgomery-form modular multiplication** (:class:`MontgomeryContext`).
  REDC-based multiplication for product *chains*: operands convert into
  the Montgomery domain once at the kernel boundary, fold there, and
  convert back once.  Off by default: CPython's native big-int ``%`` is
  a C-level division, and a pure-Python REDC (three big multiplications
  per product step) does not beat it -- the context exists so the A/B
  benchmark can measure that honestly, and so a future C/GMP backend has
  a tested domain contract to slot into.

* **Packed-bitset rows** (:func:`pack_row`, :func:`iter_bits`).
  CMM projections and the dual-simulation fixpoint carry set membership
  as int bitmaps, so per-entry dict lookups become word-parallel AND/OR.

Every kernel op reports into :mod:`repro.crypto.ops` so benchmark deltas
are attributable op-by-op (modmul / modexp / table builds per phase).

Layering: this module sits inside ``repro.crypto`` and must not import
``repro.core`` or ``repro.framework``; the chunk layout is duck-typed
(anything with ``factors`` / ``chunk_factors`` / ``chunks_per_item``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.crypto import cgbe as _cgbe
from repro.crypto import ops
from repro.crypto.cgbe import (
    CGBECiphertext,
    CGBEPublicParams,
    OverflowError_,
)

try:  # optional fast path for dense row packing; never required
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI images
    _np = None

HAVE_NUMPY = _np is not None


# ---------------------------------------------------------------------------
# Kernel selection
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KernelConfig:
    """Which kernels a run uses (``PriloConfig.kernels``).

    The defaults are the fast, always-safe set: multi-exp and bitsets on,
    Montgomery off (see module docstring).  ``window`` is the Straus
    window width in bits; 4 keeps subset tables at <= 16 entries per
    window, the sweet spot for the 30-60 factor products of this
    codebase.
    """

    multiexp: bool = True
    montgomery: bool = False
    bitset: bool = True
    window: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.window <= 8:
            raise ValueError("kernel window must be in 1..8")

    @classmethod
    def naive(cls) -> "KernelConfig":
        """Every kernel off -- the PR1/PR2 baseline path, for A/B runs."""
        return cls(multiexp=False, montgomery=False, bitset=False)

    @property
    def label(self) -> str:
        """Public coordinate string for spans and benchmark payloads."""
        return "naive" if not (self.multiexp or self.montgomery) else (
            "batched+mont" if self.montgomery else "batched")

    def as_dict(self) -> dict:
        return {"multiexp": self.multiexp, "montgomery": self.montgomery,
                "bitset": self.bitset, "window": self.window}

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelConfig":
        return cls(multiexp=bool(payload.get("multiexp", True)),
                   montgomery=bool(payload.get("montgomery", False)),
                   bitset=bool(payload.get("bitset", True)),
                   window=int(payload.get("window", 4)))


DEFAULT_KERNELS = KernelConfig()
NAIVE_KERNELS = KernelConfig.naive()


# ---------------------------------------------------------------------------
# Montgomery arithmetic
# ---------------------------------------------------------------------------
class MontgomeryContext:
    """REDC arithmetic modulo an odd ``n`` with ``R = 2**n.bit_length()``.

    Domain rules (DESIGN.md Sec. 11): values enter through
    :meth:`to_mont`, every in-domain product is one :meth:`mul` (a single
    REDC), and results leave through :meth:`from_mont`.  Mixing domains
    is the classic Montgomery bug; :meth:`fold` packages the safe
    convert-fold-convert pattern for product chains so call sites never
    touch raw domain values.
    """

    __slots__ = ("n", "k", "mask", "r2", "n_prime", "one")

    def __init__(self, modulus: int) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic needs an odd modulus >= 3")
        self.n = modulus
        self.k = modulus.bit_length()
        self.mask = (1 << self.k) - 1
        r = 1 << self.k
        self.r2 = (r * r) % modulus
        # n' = -n^-1 mod R, the REDC folding constant.
        self.n_prime = (-pow(modulus, -1, r)) & self.mask
        self.one = r % modulus  # to_mont(1)

    def redc(self, t: int) -> int:
        """Montgomery reduction: ``t * R^-1 mod n`` for ``t < n*R``."""
        m = ((t & self.mask) * self.n_prime) & self.mask
        reduced = (t + m * self.n) >> self.k
        return reduced - self.n if reduced >= self.n else reduced

    def to_mont(self, a: int) -> int:
        ops.record_modmul()
        return self.redc((a % self.n) * self.r2)

    def from_mont(self, a_mont: int) -> int:
        ops.record_modmul()
        return self.redc(a_mont)

    def mul(self, a_mont: int, b_mont: int) -> int:
        """In-domain product: ``to_mont(a * b)`` from two domain values."""
        ops.record_modmul()
        return self.redc(a_mont * b_mont)

    def fold(self, values: Iterable[int]) -> int:
        """Plain-domain product of ``values`` folded through the domain."""
        acc = self.one
        count = 0
        for value in values:
            acc = self.mul(acc, self.to_mont(value))
            count += 1
        if count == 0:
            raise ValueError("empty Montgomery fold")
        return self.from_mont(acc)


#: Contexts are pure functions of the modulus; share them per process.
_MONT_CONTEXTS: dict[int, MontgomeryContext] = {}


def montgomery_context(modulus: int) -> MontgomeryContext:
    ctx = _MONT_CONTEXTS.get(modulus)
    if ctx is None:
        ctx = MontgomeryContext(modulus)
        if len(_MONT_CONTEXTS) >= 8:
            _MONT_CONTEXTS.pop(next(iter(_MONT_CONTEXTS)))
        _MONT_CONTEXTS[modulus] = ctx
    return ctx


@contextmanager
def kernel_scope(config: KernelConfig, params: CGBEPublicParams):
    """Activate ``config``'s kernel choices for the enclosing computation.

    Today that means one thing: when ``config.montgomery`` is on, install
    the modulus's :class:`MontgomeryContext` into
    :meth:`repro.crypto.cgbe.CGBE.product`'s chain fold (the crypto layer
    cannot import this module, so the hook is a module global there).
    The previous installation is restored on exit, so scopes nest and a
    naive run inside a Montgomery run stays naive.
    """
    if not config.montgomery:
        yield
        return
    previous = _cgbe.install_montgomery(montgomery_context(params.modulus))
    try:
        yield
    finally:
        _cgbe.install_montgomery(previous)


# ---------------------------------------------------------------------------
# Straus shared-window multi-exponentiation
# ---------------------------------------------------------------------------
class MaskedProductTable:
    """Subset-product window tables over one fixed ciphertext vector.

    The factor list of one item is always "``bases[p]`` at every position
    ``p`` the selection mask leaves 0, ``pad`` (an encryption of 1) at
    every position the mask sets" -- verification selects by projected
    pattern, ssim by neighbor-label membership, pruning by feature-key
    membership.  ``chunk_ciphertexts(mask)`` returns exactly what
    ``chunked_product`` returns for that factor list: same values, same
    ``power`` (= ``chunk_factors``), same ``value_bits``, same
    :class:`OverflowError_` condition.

    All bases (and the pad) must be fresh single encryptions
    (``power == 1``, ``value_bits == bits_per_factor``) -- the only shape
    the hot path produces; anything else belongs on the naive path.
    """

    def __init__(self, params: CGBEPublicParams,
                 bases: Sequence[CGBECiphertext],
                 pad: CGBECiphertext,
                 plan: "object",
                 config: KernelConfig = DEFAULT_KERNELS,
                 max_memo: int = 1 << 16) -> None:
        bits_per_factor = params.budget.bits_per_factor
        for c in (*bases, pad):
            if c.power != 1 or c.value_bits != bits_per_factor:
                raise ValueError(
                    "multi-exp tables need fresh single encryptions "
                    f"(power=1, value_bits={bits_per_factor}); got power="
                    f"{c.power}, value_bits={c.value_bits}")
        if len(bases) != plan.factors:
            raise ValueError(
                f"base vector has {len(bases)} entries but the plan lays "
                f"out {plan.factors} factors")
        self.params = params
        self.plan = plan
        self.config = config
        self.max_memo = max_memo
        self.hits = 0
        self.misses = 0
        modulus = params.modulus
        self._mont = (montgomery_context(modulus)
                      if config.montgomery else None)
        if self._mont is not None:
            self._base_values = [self._mont.to_mont(c.value) for c in bases]
            self._identity = self._mont.one
        else:
            self._base_values = [c.value % modulus for c in bases]
            self._identity = 1
        self._pad_plain = pad.value % modulus
        # Window layout: windows tile each chunk's position range and
        # never cross a chunk boundary, so one chunk's product reads only
        # its own windows.  _windows[w] = (position offset, width);
        # _chunk_windows[c] = indices into _windows.
        window = config.window
        self._windows: list[tuple[int, int]] = []
        self._chunk_windows: list[list[int]] = []
        total = len(bases)
        for chunk in range(plan.chunks_per_item):
            start = chunk * plan.chunk_factors
            end = min(start + plan.chunk_factors, total)
            indices: list[int] = []
            offset = start
            while offset < end:
                width = min(window, end - offset)
                indices.append(len(self._windows))
                self._windows.append((offset, width))
                offset += width
            self._chunk_windows.append(indices)
        # Lazily-filled subset tables: _tables[w][submask] = product of
        # the window's bases at submask's set bits (identity at 0).
        self._tables: list[dict[int, int]] = [
            {0: self._identity} for _ in self._windows]
        # Cached pad powers (c_one^k) and per-(chunk, mask) results.
        self._pad_pows: dict[int, int] = {0: 1, 1: self._pad_plain}
        self._memo: dict[tuple[int, int], int] = {}

    # -- internals ----------------------------------------------------
    def _window_entry(self, w: int, submask: int) -> int:
        table = self._tables[w]
        value = table.get(submask)
        if value is None:
            # Build from the entry one set bit short: exactly one
            # multiplication per table entry, ever.
            low = submask & -submask
            offset, _width = self._windows[w]
            base = self._base_values[offset + low.bit_length() - 1]
            parent = self._window_entry(w, submask ^ low)
            if self._mont is not None:
                value = self._mont.mul(parent, base)
            else:
                ops.record_modmul()
                value = (parent * base) % self.params.modulus
            ops.record_table_build()
            table[submask] = value
        return value

    def _pad_pow(self, count: int) -> int:
        value = self._pad_pows.get(count)
        if value is None:
            ops.record_modexp()
            value = pow(self._pad_plain, count, self.params.modulus)
            self._pad_pows[count] = value
        return value

    def _chunk_value(self, chunk: int, selected: int) -> int:
        """The chunk's product value for selection mask ``selected``
        (bit = 1 means that position's factor is the pad)."""
        key = (chunk, selected)
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        plan = self.plan
        modulus = self.params.modulus
        start = chunk * plan.chunk_factors
        real_width = min(start + plan.chunk_factors,
                         len(self._base_values)) - start
        pad_extra = plan.chunk_factors - real_width
        ones = (selected & ((1 << real_width) - 1)).bit_count() + pad_extra
        include = ~selected & ((1 << real_width) - 1)
        acc: int | None = None
        if self._mont is not None:
            for w in self._chunk_windows[chunk]:
                offset, width = self._windows[w]
                sub = (include >> (offset - start)) & ((1 << width) - 1)
                if sub:
                    entry = self._window_entry(w, sub)
                    acc = entry if acc is None else self._mont.mul(acc, entry)
            if acc is not None:
                acc = self._mont.from_mont(acc)
        else:
            for w in self._chunk_windows[chunk]:
                offset, width = self._windows[w]
                sub = (include >> (offset - start)) & ((1 << width) - 1)
                if sub:
                    entry = self._window_entry(w, sub)
                    if acc is None:
                        acc = entry
                    else:
                        ops.record_modmul()
                        acc = (acc * entry) % modulus
        if ones:
            pad = self._pad_pow(ones)
            if acc is None:
                acc = pad
            else:
                ops.record_modmul()
                acc = (acc * pad) % modulus
        assert acc is not None  # chunk_factors >= 1 means some factor
        if len(self._memo) >= self.max_memo:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = acc
        return acc

    # -- public API ---------------------------------------------------
    def chunk_ciphertexts(self, mask: int) -> list[CGBECiphertext]:
        """What ``chunked_product`` returns for this mask's factor list.

        ``mask`` has one bit per plan position (``plan.factors`` bits,
        position 0 = bit 0); set bits select the pad.  Positions past the
        base vector (the plan's padding tail) are implicitly pads.
        """
        plan = self.plan
        params = self.params
        bits = plan.chunk_factors * params.budget.bits_per_factor
        if bits >= params.modulus_bits:
            # The naive fold raises on its first boundary-crossing
            # multiply; with equal-size factors that is exactly the
            # "chunk does not fit" condition checked here.
            raise OverflowError_(
                f"product would need {bits} bits but the modulus has "
                f"{params.modulus_bits}; split the aggregation "
                f"(AggregationBudget.max_factors)")
        chunk_mask = (1 << plan.chunk_factors) - 1
        return [
            CGBECiphertext(
                value=self._chunk_value(
                    chunk, (mask >> (chunk * plan.chunk_factors))
                    & chunk_mask),
                power=plan.chunk_factors,
                value_bits=bits)
            for chunk in range(plan.chunks_per_item)
        ]

    @property
    def memo_entries(self) -> int:
        return len(self._memo)

    @property
    def table_entries(self) -> int:
        """Materialized subset-product entries (excluding identities)."""
        return sum(len(t) - 1 for t in self._tables)


class MultiExpRegistry:
    """Lazily-built :class:`MaskedProductTable` per key, shared across
    every ball (and CMM) of one executor share.

    Keys are public coordinates -- ``("verify",)``, ``("ssim", row)``,
    ``("twiglet", table_index)`` -- never query content.
    """

    def __init__(self, config: KernelConfig = DEFAULT_KERNELS) -> None:
        self.config = config
        self._tables: dict[tuple, MaskedProductTable] = {}

    @property
    def enabled(self) -> bool:
        return self.config.multiexp

    def table(self, key: tuple,
              build: Callable[[], MaskedProductTable]) -> MaskedProductTable:
        table = self._tables.get(key)
        if table is None:
            table = build()
            self._tables[key] = table
        return table

    def memo_hits(self) -> int:
        return sum(t.hits for t in self._tables.values())

    def memo_misses(self) -> int:
        return sum(t.misses for t in self._tables.values())


# ---------------------------------------------------------------------------
# Packed-bitset rows
# ---------------------------------------------------------------------------
def pack_row(row: Sequence[int]) -> int:
    """An 0/1 row as an int bitmap (bit ``j`` = ``row[j] != 0``)."""
    mask = 0
    for j, value in enumerate(row):
        if value:
            mask |= 1 << j
    return mask


def pack_rows(rows: Sequence[Sequence[int]]) -> tuple[int, ...]:
    """Rows of a dense 0/1 matrix as int bitmaps.

    Uses numpy's ``packbits`` when available and profitable (wide rows);
    the pure-Python path is already word-parallel for the small query
    matrices of this codebase.
    """
    if HAVE_NUMPY and rows and len(rows[0]) >= 256:
        array = _np.asarray(rows, dtype=_np.uint8)
        packed = _np.packbits(array, axis=1, bitorder="little")
        return tuple(int.from_bytes(p.tobytes(), "little") for p in packed)
    return tuple(pack_row(row) for row in rows)


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of_pattern(pattern: Sequence[Sequence[int]]) -> int:
    """A projected CMM pattern's selection mask, row-major off-diagonal.

    Position ``pos(i, j) = i*(n-1) + (j if j < i else j - 1)`` -- the
    order :func:`repro.core.verification.verify_projected_rows` visits
    factors in.  Bit = 1 where the projected entry is 1 (the factor is
    ``c_one``); the diagonal never contributes a factor and is skipped.
    """
    n = len(pattern)
    mask = 0
    pos = 0
    for i in range(n):
        row = pattern[i]
        for j in range(n):
            if j == i:
                continue
            if row[j]:
                mask |= 1 << pos
            pos += 1
    return mask


def offdiagonal_bases(encrypted_matrix: Sequence[Sequence[CGBECiphertext]],
                      ) -> list[CGBECiphertext]:
    """The verification base vector: ``M[i][j]`` row-major, ``j != i`` --
    position-aligned with :func:`mask_of_pattern`."""
    n = len(encrypted_matrix)
    return [encrypted_matrix[i][j]
            for i in range(n) for j in range(n) if j != i]


__all__ = [
    "DEFAULT_KERNELS",
    "HAVE_NUMPY",
    "KernelConfig",
    "MaskedProductTable",
    "MontgomeryContext",
    "MultiExpRegistry",
    "NAIVE_KERNELS",
    "iter_bits",
    "kernel_scope",
    "mask_of_pattern",
    "montgomery_context",
    "offdiagonal_bases",
    "pack_row",
    "pack_rows",
]
