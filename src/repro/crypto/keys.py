"""Key material for the three parties of the system model (Fig. 4).

* The **data owner** holds ``sk`` -- the symmetric key encrypting ball data.
  Authorized users receive it out of band; the SP never does.
* The **user** additionally holds the CGBE private key (``pk`` in the
  paper's notation) and a session key for the user -> enclave channel.
* The **service provider** sees only :class:`repro.crypto.cgbe.CGBEPublicParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.cgbe import CGBE
from repro.crypto.stream_cipher import StreamCipher


@dataclass(frozen=True)
class DataOwnerKey:
    """The data owner's ball-encryption secret key ``sk``."""

    ball_key: bytes

    @classmethod
    def generate(cls, seed: int | None = None) -> "DataOwnerKey":
        return cls(ball_key=StreamCipher.generate_key(seed))

    def cipher(self) -> StreamCipher:
        return StreamCipher(self.ball_key)


@dataclass
class UserKeyring:
    """Everything the query user holds.

    ``cgbe`` encrypts query encodings and twiglet tables and decrypts
    pruning messages / results; ``enclave_key`` protects the 2-label binary
    tree encodings sent into SGX enclaves; ``owner_key`` (granted by the
    data owner) decrypts retrieved balls.
    """

    cgbe: CGBE
    enclave_key: bytes
    owner_key: DataOwnerKey | None = field(default=None)

    @classmethod
    def generate(cls, modulus_bits: int = 2048, seed: int | None = None,
                 owner_key: DataOwnerKey | None = None) -> "UserKeyring":
        return cls(
            cgbe=CGBE.generate(modulus_bits=modulus_bits, seed=seed),
            enclave_key=StreamCipher.generate_key(
                None if seed is None else seed + 1),
            owner_key=owner_key,
        )

    def enclave_cipher(self) -> StreamCipher:
        return StreamCipher(self.enclave_key)

    def grant_owner_key(self, owner_key: DataOwnerKey) -> None:
        """Receive ``sk`` from the data owner (authorized users only)."""
        self.owner_key = owner_key

    def ball_cipher(self) -> StreamCipher:
        if self.owner_key is None:
            raise PermissionError(
                "user has not been granted the data owner's secret key")
        return self.owner_key.cipher()
