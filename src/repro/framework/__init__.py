"""The Prilo / Prilo* frameworks: parties, protocol, and orchestration.

* :mod:`~repro.framework.metrics` -- timers, message-size accounting and the
  confusion counts behind PPCR (Sec. 6.3).
* :mod:`~repro.framework.messages` -- the typed protocol messages of steps
  (1)-(9) in Fig. 4.
* :mod:`~repro.framework.roles` -- DataOwner, User, Player, Dealer.
* :mod:`~repro.framework.executor` -- the serial / process-pool backends
  that map Player sequences onto compute resources.
* :mod:`~repro.framework.simulator` -- the deterministic schedule simulator
  turning per-ball evaluation costs + sequences into the paper's
  time-to-results metrics.
* :mod:`~repro.framework.prilo` / :mod:`~repro.framework.prilo_star` -- the
  end-to-end engines (Alg. 3 and its optimized variant).
* :mod:`~repro.framework.server` -- multi-query batch serving with
  cross-query CMM reuse (the throughput layer over the engines).
* :mod:`~repro.framework.faults` -- seeded fault injection
  (:class:`ChaosPolicy`) and the recovery policy threaded through the
  executor, roles, TEE channel and artifact store.
* :mod:`~repro.framework.placement` -- the consistent-hash ball placement
  ring and the ``store shard-split`` placement manifest.
* :mod:`~repro.framework.wire` -- the gateway <-> shard frame protocol and
  the canonical-answer byte-identity contract.
* :mod:`~repro.framework.shard` / :mod:`~repro.framework.gateway` -- the
  sharded serving tier: per-shard engine processes behind loopback
  sockets, and the scatter-gather front end with consistent-hash
  routing, asyncio fan-out, and shard-death re-placement.
"""

from repro.framework.executor import (
    BallExecutor,
    ProcessExecutor,
    SerialExecutor,
    create_executor,
)
from repro.framework.faults import (
    ChaosPolicy,
    FaultInjector,
    FaultRecoveryExhausted,
    FaultReport,
    RecoveryPolicy,
)
from repro.framework.gateway import (
    Gateway,
    GatewayChaos,
    GatewayError,
    GatewayReport,
)
from repro.framework.metrics import CacheStats, ConfusionCounts, PhaseTimings
from repro.framework.placement import HashRing, PlacementManifest, ring_for
from repro.framework.prilo import Prilo, PriloConfig, QueryResult
from repro.framework.prilo_star import PriloStar
from repro.framework.roles import DataOwner, Dealer, Player, User
from repro.framework.server import (
    BatchReport,
    CMMCache,
    QueryBatchEngine,
    QueryStream,
    enumeration_signature,
)
from repro.framework.shard import LocalCluster, ShardSpec, make_shard_specs
from repro.framework.simulator import ScheduleOutcome, simulate_schedule

__all__ = [
    "BallExecutor",
    "BatchReport",
    "CMMCache",
    "CacheStats",
    "ChaosPolicy",
    "ConfusionCounts",
    "DataOwner",
    "Dealer",
    "FaultInjector",
    "FaultRecoveryExhausted",
    "FaultReport",
    "Gateway",
    "GatewayChaos",
    "GatewayError",
    "GatewayReport",
    "HashRing",
    "LocalCluster",
    "PhaseTimings",
    "PlacementManifest",
    "Player",
    "Prilo",
    "PriloConfig",
    "PriloStar",
    "ProcessExecutor",
    "QueryBatchEngine",
    "QueryResult",
    "QueryStream",
    "RecoveryPolicy",
    "ScheduleOutcome",
    "SerialExecutor",
    "ShardSpec",
    "User",
    "create_executor",
    "enumeration_signature",
    "make_shard_specs",
    "ring_for",
    "simulate_schedule",
]
