"""Deterministic schedule simulation for the multi-player SP.

The paper's retrieval experiments (Figs. 2(b), 11, 16, 17) measure *when the
Dealer holds the ciphertext results of all positives* under a given
evaluation order.  That quantity is a pure function of (a) each ball's
evaluation cost and (b) the per-player sequences -- so instead of racing
k real servers we execute each ball's evaluation once, record its cost, and
replay the schedule deterministically.  This removes hardware noise while
preserving exactly the property the experiments compare (SSG's front-loaded
positives vs RSG's uniformly spread ones).

Players evaluate their sequences serially and independently (the paper
notes evaluations "can be readily parallelized" across balls/players); a
ball appearing in two sequences (SSG's dummy duplication) reaches the
Dealer at the earlier of its two completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.retrieval import PlayerSequence


@dataclass
class ScheduleOutcome:
    """Timing facts extracted from one simulated schedule."""

    completion: dict[int, float] = field(default_factory=dict)
    player_busy: list[float] = field(default_factory=list)
    first_positive: float = 0.0
    all_positives: float = 0.0
    makespan: float = 0.0
    evaluations: int = 0

    def speedup_over(self, other: "ScheduleOutcome") -> float:
        """``other``'s all-positives time over ours (Fig. 16's y-axis)."""
        if self.all_positives <= 0.0:
            return float("inf") if other.all_positives > 0.0 else 1.0
        return other.all_positives / self.all_positives


def simulate_schedule(
    sequences: Sequence[PlayerSequence],
    costs: Mapping[int, float],
    positives: Iterable[int],
) -> ScheduleOutcome:
    """Replay the schedule and report the paper's timing metrics.

    ``costs[ball_id]`` is the measured evaluation cost of that ball (the
    same whichever player runs it -- the SP servers are homogeneous);
    ``positives`` the ball ids whose results the user is waiting for.
    """
    outcome = ScheduleOutcome()
    positive_set = set(positives)
    for seq in sequences:
        clock = 0.0
        for ball_id in seq.sequence:
            if ball_id not in costs:
                raise KeyError(f"no cost recorded for ball {ball_id}")
            clock += costs[ball_id]
            outcome.evaluations += 1
            best = outcome.completion.get(ball_id)
            if best is None or clock < best:
                outcome.completion[ball_id] = clock
        outcome.player_busy.append(clock)
    outcome.makespan = max(outcome.player_busy, default=0.0)
    positive_times = [outcome.completion[b] for b in positive_set
                      if b in outcome.completion]
    missing = positive_set - outcome.completion.keys()
    if missing:
        raise ValueError(
            f"positives never scheduled: {sorted(missing)} -- every positive "
            f"must appear in some player's sequence")
    outcome.first_positive = min(positive_times, default=0.0)
    outcome.all_positives = max(positive_times, default=0.0)
    return outcome
