"""The four parties of the system model (Sec. 2.3, Fig. 4).

* :class:`DataOwner` -- generates ``sk``, extracts all balls offline, ships
  plaintext balls to the Players (the data graph is public; only the query
  is protected) and encrypted balls to the Dealer (so the Dealer cannot
  correlate retrievals with content it can read).
* :class:`User` -- encrypts queries, decrypts pruning messages and results,
  retrieves and decrypts target balls, computes final matches on plaintext.
* :class:`Player` -- computes pruning messages (BF inside its enclave,
  twiglets under CGBE) and evaluates balls in its Dealer-given order.
* :class:`Dealer` -- stores encrypted balls, runs SSG/RSG, relays results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.aggregation import BallCiphertextResult, decide_positive
from repro.core.bf_pruning import (
    BFConfig,
    player_bf_prune,
    user_decode_outcome,
    user_prepare_encodings,
)
from repro.core.encoding import LabelCodec, encrypt_query_matrix
from repro.core.enumeration import count_cmm_upper_bound, iter_cmms
from repro.core.neighbors import build_neighbor_tables, neighbor_features
from repro.core.paths import build_path_tables, paths_from
from repro.core.retrieval import PlayerSequence, rsg_sequences, ssg_sequences
from repro.core.ssim_verification import (
    decide_ssim_ball,
    ssim_plan,
    ssim_verify_ball,
)
from repro.core.table_pruning import player_table_prune, table_plan
from repro.core.twiglets import (
    build_twiglet_tables,
    filter_twiglets,
    twiglets_from,
)
from repro.core.verification import (
    verification_multiexp,
    verification_plan,
    verify_ball_streaming,
)
from repro.crypto.kernels import (
    DEFAULT_KERNELS,
    KernelConfig,
    MultiExpRegistry,
)
from repro.crypto.keys import DataOwnerKey, UserKeyring
from repro.crypto.stream_cipher import AuthenticationError
from repro.framework.faults import (
    ChaosPolicy,
    FaultAction,
    FaultEvent,
    FaultInjector,
    FaultKind,
)
from repro.framework.messages import (
    DecryptedPMs,
    EncryptedBallBlob,
    EncryptedQueryMessage,
    EvaluationResult,
    PruningMessages,
)
from repro.framework.metrics import MessageSizes, PhaseTimings, Stopwatch
from repro.graph.ball import Ball, BallIndex
from repro.graph.io import ball_from_bytes, ball_to_bytes
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query, QueryLabelView, Semantics
from repro.semantics.evaluate import find_matches
from repro.tee.channel import AttestationFailure, SecureChannel
from repro.tee.enclave import ChannelIntegrityError, Enclave, EnclaveMemoryError


# ----------------------------------------------------------------------
# Data owner
# ----------------------------------------------------------------------
class DataOwner:
    """Owns the graph, the ball index, and the ball-encryption key ``sk``.

    With ``store`` (a :class:`repro.storage.ArtifactStore`), the offline
    outsourcing output is *loaded* rather than recomputed: the ball index
    reads from the mmap'd pack and the Dealer's blobs come pre-encrypted.
    The store is staleness-checked against the live graph, radii and key
    at construction -- a mismatch raises rather than serving wrong balls.
    """

    def __init__(self, graph: LabeledGraph, radii: tuple[int, ...],
                 seed: int = 0, store=None,
                 index: BallIndex | None = None) -> None:
        self.key = DataOwnerKey.generate(seed)
        self._graph = graph
        self._radii = radii
        self._store = store
        # An explicit index override carries delta-stable ball ids for
        # dynamic no-store engines (see ``Prilo.refresh``); otherwise the
        # index is lazily built or store-loaded on first access.
        self._index: BallIndex | None = index
        self._dealer_store = None
        if store is not None:
            store.check(graph=graph, radii=radii, key=self.key)

    @property
    def index(self) -> BallIndex:
        """The ball index, built (or store-loaded) once on first access."""
        if self._index is None:
            if self._store is not None:
                self._index = self._store.ball_index(self._graph)
            else:
                self._index = BallIndex(self._graph, self._radii)
        return self._index

    def player_store(self) -> BallIndex:
        """Step 1a: plaintext balls for the Players (memoized -- every
        caller shares one index and hence one ball cache)."""
        return self.index

    def dealer_store(self):
        """Step 1b: encrypted balls for the Dealer (memoized -- repeated
        calls must not discard the store's encryption cache)."""
        if self._dealer_store is None:
            if self._store is not None:
                # The owner key enables the tamper fallback: a blob that
                # fails authentication downstream is re-encrypted from the
                # plaintext pack instead of aborting the query.  The ball
                # index doubles as the miss fallback so a *shard* store
                # can serve re-placed orphan balls its pack never held.
                self._dealer_store = self._store.encrypted_store(
                    key=self.key, fallback_index=self.index)
            else:
                self._dealer_store = EncryptedBallStore(self.index, self.key)
        return self._dealer_store

    def grant_key(self, user: "User") -> None:
        """Out-of-band ``sk`` delivery to an authorized user."""
        user.keyring.grant_owner_key(self.key)

    def export_archive(self, root, radii: tuple[int, ...] | None = None):
        """Persist the encrypted balls to disk (the durable step-1 hand-off
        to the Dealer); returns the created
        :class:`repro.storage.EncryptedBallArchive`."""
        from repro.storage import EncryptedBallArchive

        return EncryptedBallArchive.create(root, self.index, self.key,
                                           radii=radii)


class EncryptedBallStore:
    """Lazy (memoized) encrypted-ball storage, as held by the Dealer."""

    def __init__(self, index: BallIndex, key: DataOwnerKey) -> None:
        self._index = index
        self._cipher = key.cipher()
        self._cache: dict[int, EncryptedBallBlob] = {}

    def get(self, ball_id: int) -> EncryptedBallBlob:
        blob = self._cache.get(ball_id)
        if blob is None:
            ball = self._index.ball_by_id(ball_id)
            blob = EncryptedBallBlob(
                ball_id=ball_id,
                blob=self._cipher.encrypt(ball_to_bytes(ball)))
            self._cache[ball_id] = blob
        return blob

    def refetch(self, ball_id: int) -> EncryptedBallBlob:
        """Discard the cached (possibly corrupted) blob and re-encrypt
        from the authoritative plaintext index."""
        self._cache.pop(ball_id, None)
        return self.get(ball_id)


# ----------------------------------------------------------------------
# User
# ----------------------------------------------------------------------
@dataclass
class UserQueryState:
    """The user's private per-query state (never leaves the user)."""

    query: Query
    codec: LabelCodec
    channels: list[SecureChannel] = field(default_factory=list)


class User:
    """The query user: holds the CGBE key, the enclave session key and
    (once granted) the data owner's ``sk``."""

    def __init__(self, keyring: UserKeyring) -> None:
        self.keyring = keyring

    # -- step 2: encrypt the query -----------------------------------
    def prepare_query(
        self,
        query: Query,
        *,
        use_bf: bool,
        use_twiglet: bool,
        use_path: bool,
        use_neighbor: bool,
        twiglet_h: int,
        bf_config: BFConfig,
        enclaves: list[Enclave],
        sizes: MessageSizes,
        timings: PhaseTimings,
        faults: FaultInjector | None = None,
        degrade_bf: bool = True,
    ) -> tuple[EncryptedQueryMessage, UserQueryState]:
        cgbe = self.keyring.cgbe
        state = UserQueryState(query=query,
                               codec=LabelCodec.from_alphabet(query.alphabet))
        with Stopwatch() as watch:
            message = EncryptedQueryMessage(
                semantics=query.semantics,
                diameter=query.diameter,
                vertex_labels=tuple(query.label(u)
                                    for u in query.vertex_order),
                params=cgbe.public_params(),
                encrypted_matrix=encrypt_query_matrix(cgbe, query),
                c_one=cgbe.encrypt_one(),
            )
            ct_bytes = cgbe.ciphertext_bytes()
            sizes.add("encrypted_matrix", query.size ** 2 * ct_bytes)
            if use_twiglet:
                tables = build_twiglet_tables(cgbe, query, twiglet_h)
                # Queries with |Sigma_Q| < 3 admit no twiglets at all --
                # the technique is inapplicable, not "prunes everything".
                if tables and len(tables[0]) > 0:
                    message.twiglet_tables = tables
                    sizes.add("twiglet_tables",
                              sum(len(t) for t in tables) * ct_bytes)
            if use_path:
                tables = build_path_tables(cgbe, query, twiglet_h)
                if tables and len(tables[0]) > 0:
                    message.path_tables = tables
                    sizes.add("twiglet_tables",
                              sum(len(t) for t in tables) * ct_bytes)
            if use_neighbor:
                message.neighbor_tables = build_neighbor_tables(cgbe, query)
                sizes.add("twiglet_tables",
                          sum(len(t) for t in message.neighbor_tables)
                          * ct_bytes)
            if use_bf:
                if not enclaves:
                    raise ValueError("BF pruning needs at least one enclave")
                injector = faults if faults is not None else FaultInjector()
                try:
                    for i, enclave in enumerate(enclaves):
                        state.channels.append(SecureChannel.establish(
                            enclave, self.keyring.enclave_key,
                            faults=injector, fault_key=f"enclave:{i}"))
                except AttestationFailure as exc:
                    # Injected or genuine: the enclave fleet cannot be
                    # trusted this run.  BF is the only TEE-dependent
                    # pruning method; dropping it only keeps *more*
                    # candidates (Prop. 3 is one-sided), so the final
                    # match set is unchanged -- continue twiglet-only.
                    if not degrade_bf:
                        raise
                    key = f"enclave:{len(state.channels)}"
                    injector.record(FaultKind.ENCLAVE_ATTESTATION, key,
                                    FaultAction.DETECTED, detail=str(exc))
                    injector.record(
                        FaultKind.ENCLAVE_ATTESTATION, key,
                        FaultAction.DEGRADED,
                        detail="BF pruning disabled for this query; "
                               "continuing twiglet-only")
                    state.channels.clear()
                else:
                    message.bf_message = user_prepare_encodings(
                        query, state.codec, state.channels[0], bf_config)
                    sizes.add("bf_encodings",
                              len(message.bf_message.sealed_blob))
        timings.user_preprocessing += watch.total
        return message, state

    # -- step 4: decrypt pruning messages ----------------------------
    def decrypt_pms(
        self,
        pms: PruningMessages,
        ball_ids: Iterable[int],
        state: UserQueryState,
        timings: PhaseTimings,
    ) -> tuple[DecryptedPMs, dict[str, dict[int, bool]]]:
        """Combine every active method's verdicts; a ball is positive only
        when no method proved it spurious.  Returns the per-method verdict
        maps as well (the experiments compare methods individually)."""
        cgbe = self.keyring.cgbe
        ordered = tuple(sorted(ball_ids))
        per_method: dict[str, dict[int, bool]] = {}
        with Stopwatch() as watch:
            if pms.bf:
                channel = state.channels[0]
                per_method["bf"] = {
                    bid: user_decode_outcome(channel, outcome)
                    for bid, outcome in pms.bf.items()}
            for name, results in (("twiglet", pms.twiglet),
                                  ("path", pms.path),
                                  ("neighbor", pms.neighbor)):
                if results:
                    per_method[name] = {
                        bid: decide_positive(cgbe, result)
                        for bid, result in results.items()}
            positives = frozenset(
                bid for bid in ordered
                if all(verdicts.get(bid, True)
                       for verdicts in per_method.values()))
        timings.user_pm_decryption += watch.total
        return DecryptedPMs(ball_ids=ordered, positives=positives), per_method

    # -- step 8: decrypt ciphertext results --------------------------
    def decrypt_results(self, results: Iterable[EvaluationResult],
                        timings: PhaseTimings) -> set[int]:
        """Ball ids whose ciphertext result proves a surviving candidate."""
        cgbe = self.keyring.cgbe
        verified: set[int] = set()
        with Stopwatch() as watch:
            for result in results:
                if result.ball_id in verified:
                    continue
                verdict = result.verdict
                if hasattr(verdict, "per_vertex"):  # SsimBallVerdict
                    positive = decide_ssim_ball(cgbe, verdict)
                else:
                    positive = decide_positive(cgbe, verdict)
                if positive:
                    verified.add(result.ball_id)
        timings.user_result_decryption += watch.total
        return verified

    # -- step 9: retrieve balls and match ----------------------------
    def retrieve_and_match(
        self,
        verified_ids: Iterable[int],
        dealer: "Dealer",
        query: Query,
        sizes: MessageSizes,
        timings: PhaseTimings,
        faults: FaultInjector | None = None,
    ) -> dict[int, list[LabeledGraph]]:
        injector = faults if faults is not None else FaultInjector()
        cipher = self.keyring.ball_cipher()
        matches: dict[int, list[LabeledGraph]] = {}
        with Stopwatch() as watch:
            for ball_id in sorted(verified_ids):
                blob = dealer.fetch_encrypted_ball(ball_id)
                sizes.add("retrieved_balls", blob.size)
                try:
                    payload = cipher.decrypt(blob.blob)
                except AuthenticationError as exc:
                    # The ciphertext the Dealer served fails its MAC --
                    # tampered or rotted.  Have the Dealer quarantine its
                    # copy and re-serve from the authoritative source; the
                    # retried blob authenticates or the run fails loudly.
                    key = f"retrieve:b{ball_id}"
                    injector.record(FaultKind.STORE_TAMPER, key,
                                    FaultAction.DETECTED,
                                    detail=f"ball blob failed "
                                           f"authentication: {exc}")
                    injector.record(FaultKind.STORE_TAMPER, key,
                                    FaultAction.RETRIED,
                                    detail="re-fetching from Dealer after "
                                           "quarantine")
                    blob = dealer.refetch_encrypted_ball(ball_id)
                    payload = cipher.decrypt(blob.blob)
                    injector.record(FaultKind.STORE_TAMPER, key,
                                    FaultAction.RECOVERED,
                                    detail="re-served blob authenticated")
                ball = ball_from_bytes(payload)
                found = find_matches(query, ball)
                if found:
                    matches[ball_id] = found
        timings.user_matching += watch.total
        return matches


# ----------------------------------------------------------------------
# Player
# ----------------------------------------------------------------------
def evaluate_ball_kernel(
    message: EncryptedQueryMessage,
    ball: Ball,
    *,
    enumeration_limit: int,
    cmm_bound_bypass: int,
    player_id: int = 0,
    pad_stats: "object | None" = None,
    multiexp: MultiExpRegistry | None = None,
) -> EvaluationResult:
    """Alg. 3 lines 3-8 for one ball, using only the label view of the
    query (the edges stay encrypted).

    A module-level pure function of ``(message, ball)`` so the executor
    backends can ship it to worker processes without serializing a
    :class:`Player` (whose ball index would dominate the payload).
    Enumeration streams directly into verification
    (:func:`repro.core.verification.verify_ball_streaming`): truncation
    and chunk products share a single pass over the CMMs.

    ``multiexp`` (a per-share :class:`MultiExpRegistry`) switches the
    chunk products onto shared Straus window tables -- one table per
    share serving every ball passed with the same registry.  Results are
    value-identical with it, without it, and across registry sharing.
    """
    view = QueryLabelView(labels=message.vertex_labels,
                          diameter=message.diameter,
                          semantics=message.semantics)
    params = message.params
    started = time.perf_counter()
    if message.semantics is Semantics.SSIM:
        plan = ssim_plan(params, view)
        verdict = ssim_verify_ball(params, message.encrypted_matrix,
                                   message.c_one, view, ball, plan,
                                   multiexp=multiexp)
        cost = time.perf_counter() - started
        return EvaluationResult(ball_id=ball.ball_id, verdict=verdict,
                                cost_seconds=cost,
                                player=player_id)
    injective = message.semantics is Semantics.SUB_ISO
    plan = verification_plan(params, view)
    table = None
    if multiexp is not None and multiexp.enabled:
        table = multiexp.table(("verify",), lambda: verification_multiexp(
            params, message.encrypted_matrix, message.c_one, plan,
            multiexp.config))
    if count_cmm_upper_bound(view, ball) > cmm_bound_bypass:
        verdict = BallCiphertextResult(ball_id=ball.ball_id, bypassed=True)
        enumerated = 0
    else:
        verdict, enumerated, _ = verify_ball_streaming(
            params, message.encrypted_matrix, message.c_one, ball,
            iter_cmms(view, ball, injective=injective), plan,
            limit=enumeration_limit, pad_stats=pad_stats,
            multiexp=table)
    cost = time.perf_counter() - started
    return EvaluationResult(
        ball_id=ball.ball_id, verdict=verdict, cost_seconds=cost,
        player=player_id, cmms=enumerated, bypassed=verdict.bypassed)


#: Times a corrupted sealed payload is re-requested before the share
#: degrades to twiglet-only.
_CHANNEL_RETRIES = 3


def _load_encodings_with_recovery(enclave: Enclave, blob: bytes,
                                  injector: FaultInjector,
                                  player_id: int) -> bool:
    """Install the sealed BF payload, re-requesting it on corruption.

    The channel is authenticated, so a flipped byte surfaces as
    :class:`~repro.tee.enclave.ChannelIntegrityError` -- never as silently
    wrong encodings.  Returns False when every attempt failed, in which
    case the caller skips BF for this share (sound: a missing BF verdict
    counts the ball positive downstream).
    """
    key = f"bf-blob:p{player_id}"
    for attempt in range(_CHANNEL_RETRIES + 1):
        payload = injector.corrupt(FaultKind.CHANNEL_CORRUPTION, key, blob,
                                   attempt=attempt)
        try:
            enclave.load_query_encodings(payload)
        except ChannelIntegrityError as exc:
            injector.record(FaultKind.CHANNEL_CORRUPTION, key,
                            FaultAction.DETECTED, detail=str(exc),
                            attempt=attempt)
            if attempt < _CHANNEL_RETRIES:
                injector.record(FaultKind.CHANNEL_CORRUPTION, key,
                                FaultAction.RETRIED,
                                detail="re-requesting sealed BF payload",
                                attempt=attempt)
                continue
            injector.record(
                FaultKind.CHANNEL_CORRUPTION, key, FaultAction.DEGRADED,
                detail="sealed payload unrecoverable; BF skipped for "
                       "this share", attempt=attempt)
            return False
        if attempt > 0:
            injector.record(FaultKind.CHANNEL_CORRUPTION, key,
                            FaultAction.RECOVERED,
                            detail=f"payload accepted on attempt {attempt}",
                            attempt=attempt)
        return True
    return False  # pragma: no cover - loop always returns


def _bf_prune_with_recovery(enclave: Enclave, ball: Ball, codec: LabelCodec,
                            bf_config: BFConfig, injector: FaultInjector,
                            player_id: int):
    """One BF ECALL with a single retry on enclave memory pressure.

    EPC exhaustion is transient (the filter allocation is freed per call),
    so one retry usually recovers; if the enclave aborts again the ball's
    BF verdict is skipped (``None``) -- sound, since a ball without a BF
    pruning message is treated as positive by the user.
    """
    key = f"enclave-mem:p{player_id}:b{ball.ball_id}"
    for attempt in range(2):
        try:
            if injector.should(FaultKind.ENCLAVE_MEMORY, key,
                               attempt=attempt,
                               detail="ECALL aborted (EPC exhausted)"):
                raise EnclaveMemoryError(
                    f"injected EPC exhaustion on {key}")
            outcome = player_bf_prune(enclave, ball, codec, bf_config)
        except EnclaveMemoryError as exc:
            injector.record(FaultKind.ENCLAVE_MEMORY, key,
                            FaultAction.DETECTED, detail=str(exc),
                            attempt=attempt)
            if attempt == 0:
                injector.record(FaultKind.ENCLAVE_MEMORY, key,
                                FaultAction.RETRIED,
                                detail="re-issuing ECALL", attempt=attempt)
                continue
            injector.record(
                FaultKind.ENCLAVE_MEMORY, key, FaultAction.DEGRADED,
                detail="BF verdict skipped for this ball (missing PM "
                       "counts positive -- sound)", attempt=attempt)
            return None
        else:
            if attempt > 0:
                injector.record(FaultKind.ENCLAVE_MEMORY, key,
                                FaultAction.RECOVERED,
                                detail="ECALL succeeded on retry",
                                attempt=attempt)
            return outcome
    return None  # pragma: no cover - loop always returns


def compute_pms_kernel(
    enclave: Enclave,
    message: EncryptedQueryMessage,
    balls: list[Ball],
    *,
    bf_config: BFConfig,
    twiglet_h: int,
    twiglet_features: dict[int, frozenset] | None = None,
    chaos: ChaosPolicy | None = None,
    player_id: int = 0,
    kernels: KernelConfig = DEFAULT_KERNELS,
) -> tuple[PruningMessages, dict[int, float], PhaseTimings,
           list[FaultEvent]]:
    """One player's share of the pruning messages (Secs. 4.1-4.2).

    Returns fresh ``(pms, per-ball costs, phase timings, fault events)``
    so executor backends can run shares in worker processes and merge the
    results deterministically in the parent.

    ``chaos`` (the active fault schedule, if any) drives the enclave-side
    injections -- sealed-payload corruption and EPC exhaustion -- which
    must fire *inside* the worker where the enclave actually executes.
    The recovery paths are shared with genuine failures, and every
    degradation here is sound: BF pruning only ever removes provably
    spurious balls, so skipping it keeps strictly more candidates and the
    final match set is unchanged.

    ``twiglet_features`` supplies precomputed *full-alphabet* per-ball
    twiglet sets (the artifact store's offline output); they are
    restricted to the query alphabet here, yielding exactly the set the
    per-query DFS would enumerate.
    """
    injector = FaultInjector(chaos)
    pms = PruningMessages()
    pm_costs: dict[int, float] = {}
    timings = PhaseTimings()
    codec = LabelCodec.from_alphabet(message.alphabet)
    params = message.params
    # One registry per share: prune-table Straus tables are shared across
    # every ball of this kernel call (keys are public coordinates).
    registry = MultiExpRegistry(kernels) if kernels.multiexp else None
    bf_active = False
    if message.bf_message is not None:
        bf_active = _load_encodings_with_recovery(
            enclave, message.bf_message.sealed_blob, injector, player_id)
    twiglet_plan = None
    if message.twiglet_tables:
        twiglet_plan = table_plan(params, len(message.twiglet_tables[0]))
    path_plan = None
    if message.path_tables:
        path_plan = table_plan(params, len(message.path_tables[0]))
    neighbor_plan = None
    if message.neighbor_tables:
        neighbor_plan = table_plan(params,
                                   len(message.neighbor_tables[0]))
    for ball in balls:
        started = time.perf_counter()
        if bf_active:
            bf_start = time.perf_counter()
            outcome = _bf_prune_with_recovery(enclave, ball, codec,
                                              bf_config, injector, player_id)
            if outcome is not None:
                pms.bf[ball.ball_id] = outcome
            timings.pm_bf += time.perf_counter() - bf_start
        if message.twiglet_tables:
            t_start = time.perf_counter()
            if (twiglet_features is not None
                    and ball.ball_id in twiglet_features):
                features = filter_twiglets(twiglet_features[ball.ball_id],
                                           message.alphabet)
            else:
                features = twiglets_from(ball.graph, ball.center, twiglet_h,
                                         message.alphabet)
            pms.twiglet[ball.ball_id] = player_table_prune(
                params, message.twiglet_tables, ball, features,
                message.c_one, twiglet_plan,
                multiexp=registry, kind="twiglet")
            timings.pm_twiglet += time.perf_counter() - t_start
        if message.path_tables:
            features = paths_from(ball.graph, ball.center, twiglet_h,
                                  message.alphabet)
            pms.path[ball.ball_id] = player_table_prune(
                params, message.path_tables, ball, features,
                message.c_one, path_plan,
                multiexp=registry, kind="path")
        if message.neighbor_tables:
            features = neighbor_features(ball.graph, ball.center)
            pms.neighbor[ball.ball_id] = player_table_prune(
                params, message.neighbor_tables, ball, features,
                message.c_one, neighbor_plan,
                multiexp=registry, kind="neighbor")
        elapsed = time.perf_counter() - started
        pm_costs[ball.ball_id] = elapsed
        timings.pm_computation += elapsed
    return pms, pm_costs, timings, injector.report.events


def merge_pms(into: PruningMessages, share: PruningMessages) -> None:
    """Merge one player's PM share into the run-wide collection."""
    into.bf.update(share.bf)
    into.twiglet.update(share.twiglet)
    into.path.update(share.path)
    into.neighbor.update(share.neighbor)


class Player:
    """One Player server: plaintext balls + an SGX enclave."""

    def __init__(self, player_id: int, index: BallIndex,
                 enclave: Enclave | None = None) -> None:
        self.player_id = player_id
        self.index = index
        self.enclave = enclave if enclave is not None else Enclave()

    # -- pruning-message computation (Secs. 4.1-4.2) -----------------
    def compute_pms(
        self,
        message: EncryptedQueryMessage,
        balls: list[Ball],
        *,
        bf_config: BFConfig,
        twiglet_h: int,
        pms: PruningMessages,
        pm_costs: dict[int, float],
        timings: PhaseTimings,
        faults: FaultInjector | None = None,
    ) -> None:
        """Compute this player's share of the PMs, appending into ``pms``."""
        share, costs, share_timings, events = compute_pms_kernel(
            self.enclave, message, balls,
            bf_config=bf_config, twiglet_h=twiglet_h,
            chaos=faults.policy if faults is not None and faults.active
            else None,
            player_id=self.player_id)
        if faults is not None:
            faults.report.extend(events)
        merge_pms(pms, share)
        pm_costs.update(costs)
        timings.pm_bf += share_timings.pm_bf
        timings.pm_twiglet += share_timings.pm_twiglet
        timings.pm_computation += share_timings.pm_computation

    # -- ball evaluation (Secs. 3.1-3.2) ------------------------------
    def evaluate_ball(
        self,
        message: EncryptedQueryMessage,
        ball: Ball,
        *,
        enumeration_limit: int,
        cmm_bound_bypass: int,
    ) -> EvaluationResult:
        """Alg. 3 lines 3-8 for one ball (see :func:`evaluate_ball_kernel`)."""
        return evaluate_ball_kernel(
            message, ball,
            enumeration_limit=enumeration_limit,
            cmm_bound_bypass=cmm_bound_bypass,
            player_id=self.player_id)


# ----------------------------------------------------------------------
# Dealer
# ----------------------------------------------------------------------
class Dealer:
    """The Dealer server: encrypted balls, sequence generation, relaying."""

    def __init__(self, store: EncryptedBallStore) -> None:
        self._store = store

    def generate_sequences(
        self,
        decrypted: DecryptedPMs,
        k: int,
        *,
        use_ssg: bool,
        seed: int = 0,
    ) -> tuple[list[PlayerSequence], str]:
        """Step 5: SSG when enabled (falling back to the normal case at
        theta >= 1/2 internally), plain RSG otherwise."""
        if use_ssg:
            return ssg_sequences(decrypted.ball_ids, decrypted.positives,
                                 k, seed=seed)
        return rsg_sequences(decrypted.ball_ids, k, seed=seed), "rsg"

    def fetch_encrypted_ball(self, ball_id: int) -> EncryptedBallBlob:
        """Step 9: serve one encrypted ball."""
        return self._store.get(ball_id)

    def refetch_encrypted_ball(self, ball_id: int) -> EncryptedBallBlob:
        """Re-serve a ball whose previous blob failed authentication,
        bypassing (and evicting/quarantining) the bad copy."""
        refetch = getattr(self._store, "refetch", None)
        if refetch is not None:
            return refetch(ball_id)
        return self._store.get(ball_id)
