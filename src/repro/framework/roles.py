"""The four parties of the system model (Sec. 2.3, Fig. 4).

* :class:`DataOwner` -- generates ``sk``, extracts all balls offline, ships
  plaintext balls to the Players (the data graph is public; only the query
  is protected) and encrypted balls to the Dealer (so the Dealer cannot
  correlate retrievals with content it can read).
* :class:`User` -- encrypts queries, decrypts pruning messages and results,
  retrieves and decrypts target balls, computes final matches on plaintext.
* :class:`Player` -- computes pruning messages (BF inside its enclave,
  twiglets under CGBE) and evaluates balls in its Dealer-given order.
* :class:`Dealer` -- stores encrypted balls, runs SSG/RSG, relays results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.aggregation import BallCiphertextResult, decide_positive
from repro.core.bf_pruning import (
    BFConfig,
    player_bf_prune,
    user_decode_outcome,
    user_prepare_encodings,
)
from repro.core.encoding import LabelCodec, encrypt_query_matrix
from repro.core.enumeration import count_cmm_upper_bound, iter_cmms
from repro.core.neighbors import build_neighbor_tables, neighbor_features
from repro.core.paths import build_path_tables, paths_from
from repro.core.retrieval import PlayerSequence, rsg_sequences, ssg_sequences
from repro.core.ssim_verification import (
    decide_ssim_ball,
    ssim_plan,
    ssim_verify_ball,
)
from repro.core.table_pruning import player_table_prune, table_plan
from repro.core.twiglets import (
    build_twiglet_tables,
    filter_twiglets,
    twiglets_from,
)
from repro.core.verification import verification_plan, verify_ball_streaming
from repro.crypto.keys import DataOwnerKey, UserKeyring
from repro.framework.messages import (
    DecryptedPMs,
    EncryptedBallBlob,
    EncryptedQueryMessage,
    EvaluationResult,
    PruningMessages,
)
from repro.framework.metrics import MessageSizes, PhaseTimings, Stopwatch
from repro.graph.ball import Ball, BallIndex
from repro.graph.io import ball_from_bytes, ball_to_bytes
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query, QueryLabelView, Semantics
from repro.semantics.evaluate import find_matches
from repro.tee.channel import SecureChannel
from repro.tee.enclave import Enclave


# ----------------------------------------------------------------------
# Data owner
# ----------------------------------------------------------------------
class DataOwner:
    """Owns the graph, the ball index, and the ball-encryption key ``sk``.

    With ``store`` (a :class:`repro.storage.ArtifactStore`), the offline
    outsourcing output is *loaded* rather than recomputed: the ball index
    reads from the mmap'd pack and the Dealer's blobs come pre-encrypted.
    The store is staleness-checked against the live graph, radii and key
    at construction -- a mismatch raises rather than serving wrong balls.
    """

    def __init__(self, graph: LabeledGraph, radii: tuple[int, ...],
                 seed: int = 0, store=None) -> None:
        self.key = DataOwnerKey.generate(seed)
        self._graph = graph
        self._radii = radii
        self._store = store
        self._index: BallIndex | None = None
        self._dealer_store = None
        if store is not None:
            store.check(graph=graph, radii=radii, key=self.key)

    @property
    def index(self) -> BallIndex:
        """The ball index, built (or store-loaded) once on first access."""
        if self._index is None:
            if self._store is not None:
                self._index = self._store.ball_index(self._graph)
            else:
                self._index = BallIndex(self._graph, self._radii)
        return self._index

    def player_store(self) -> BallIndex:
        """Step 1a: plaintext balls for the Players (memoized -- every
        caller shares one index and hence one ball cache)."""
        return self.index

    def dealer_store(self):
        """Step 1b: encrypted balls for the Dealer (memoized -- repeated
        calls must not discard the store's encryption cache)."""
        if self._dealer_store is None:
            if self._store is not None:
                self._dealer_store = self._store.encrypted_store()
            else:
                self._dealer_store = EncryptedBallStore(self.index, self.key)
        return self._dealer_store

    def grant_key(self, user: "User") -> None:
        """Out-of-band ``sk`` delivery to an authorized user."""
        user.keyring.grant_owner_key(self.key)

    def export_archive(self, root, radii: tuple[int, ...] | None = None):
        """Persist the encrypted balls to disk (the durable step-1 hand-off
        to the Dealer); returns the created
        :class:`repro.storage.EncryptedBallArchive`."""
        from repro.storage import EncryptedBallArchive

        return EncryptedBallArchive.create(root, self.index, self.key,
                                           radii=radii)


class EncryptedBallStore:
    """Lazy (memoized) encrypted-ball storage, as held by the Dealer."""

    def __init__(self, index: BallIndex, key: DataOwnerKey) -> None:
        self._index = index
        self._cipher = key.cipher()
        self._cache: dict[int, EncryptedBallBlob] = {}

    def get(self, ball_id: int) -> EncryptedBallBlob:
        blob = self._cache.get(ball_id)
        if blob is None:
            ball = self._index.ball_by_id(ball_id)
            blob = EncryptedBallBlob(
                ball_id=ball_id,
                blob=self._cipher.encrypt(ball_to_bytes(ball)))
            self._cache[ball_id] = blob
        return blob


# ----------------------------------------------------------------------
# User
# ----------------------------------------------------------------------
@dataclass
class UserQueryState:
    """The user's private per-query state (never leaves the user)."""

    query: Query
    codec: LabelCodec
    channels: list[SecureChannel] = field(default_factory=list)


class User:
    """The query user: holds the CGBE key, the enclave session key and
    (once granted) the data owner's ``sk``."""

    def __init__(self, keyring: UserKeyring) -> None:
        self.keyring = keyring

    # -- step 2: encrypt the query -----------------------------------
    def prepare_query(
        self,
        query: Query,
        *,
        use_bf: bool,
        use_twiglet: bool,
        use_path: bool,
        use_neighbor: bool,
        twiglet_h: int,
        bf_config: BFConfig,
        enclaves: list[Enclave],
        sizes: MessageSizes,
        timings: PhaseTimings,
    ) -> tuple[EncryptedQueryMessage, UserQueryState]:
        cgbe = self.keyring.cgbe
        state = UserQueryState(query=query,
                               codec=LabelCodec.from_alphabet(query.alphabet))
        with Stopwatch() as watch:
            message = EncryptedQueryMessage(
                semantics=query.semantics,
                diameter=query.diameter,
                vertex_labels=tuple(query.label(u)
                                    for u in query.vertex_order),
                params=cgbe.public_params(),
                encrypted_matrix=encrypt_query_matrix(cgbe, query),
                c_one=cgbe.encrypt_one(),
            )
            ct_bytes = cgbe.ciphertext_bytes()
            sizes.add("encrypted_matrix", query.size ** 2 * ct_bytes)
            if use_twiglet:
                tables = build_twiglet_tables(cgbe, query, twiglet_h)
                # Queries with |Sigma_Q| < 3 admit no twiglets at all --
                # the technique is inapplicable, not "prunes everything".
                if tables and len(tables[0]) > 0:
                    message.twiglet_tables = tables
                    sizes.add("twiglet_tables",
                              sum(len(t) for t in tables) * ct_bytes)
            if use_path:
                tables = build_path_tables(cgbe, query, twiglet_h)
                if tables and len(tables[0]) > 0:
                    message.path_tables = tables
                    sizes.add("twiglet_tables",
                              sum(len(t) for t in tables) * ct_bytes)
            if use_neighbor:
                message.neighbor_tables = build_neighbor_tables(cgbe, query)
                sizes.add("twiglet_tables",
                          sum(len(t) for t in message.neighbor_tables)
                          * ct_bytes)
            if use_bf:
                if not enclaves:
                    raise ValueError("BF pruning needs at least one enclave")
                for enclave in enclaves:
                    state.channels.append(SecureChannel.establish(
                        enclave, self.keyring.enclave_key))
                message.bf_message = user_prepare_encodings(
                    query, state.codec, state.channels[0], bf_config)
                sizes.add("bf_encodings",
                          len(message.bf_message.sealed_blob))
        timings.user_preprocessing += watch.total
        return message, state

    # -- step 4: decrypt pruning messages ----------------------------
    def decrypt_pms(
        self,
        pms: PruningMessages,
        ball_ids: Iterable[int],
        state: UserQueryState,
        timings: PhaseTimings,
    ) -> tuple[DecryptedPMs, dict[str, dict[int, bool]]]:
        """Combine every active method's verdicts; a ball is positive only
        when no method proved it spurious.  Returns the per-method verdict
        maps as well (the experiments compare methods individually)."""
        cgbe = self.keyring.cgbe
        ordered = tuple(sorted(ball_ids))
        per_method: dict[str, dict[int, bool]] = {}
        with Stopwatch() as watch:
            if pms.bf:
                channel = state.channels[0]
                per_method["bf"] = {
                    bid: user_decode_outcome(channel, outcome)
                    for bid, outcome in pms.bf.items()}
            for name, results in (("twiglet", pms.twiglet),
                                  ("path", pms.path),
                                  ("neighbor", pms.neighbor)):
                if results:
                    per_method[name] = {
                        bid: decide_positive(cgbe, result)
                        for bid, result in results.items()}
            positives = frozenset(
                bid for bid in ordered
                if all(verdicts.get(bid, True)
                       for verdicts in per_method.values()))
        timings.user_pm_decryption += watch.total
        return DecryptedPMs(ball_ids=ordered, positives=positives), per_method

    # -- step 8: decrypt ciphertext results --------------------------
    def decrypt_results(self, results: Iterable[EvaluationResult],
                        timings: PhaseTimings) -> set[int]:
        """Ball ids whose ciphertext result proves a surviving candidate."""
        cgbe = self.keyring.cgbe
        verified: set[int] = set()
        with Stopwatch() as watch:
            for result in results:
                if result.ball_id in verified:
                    continue
                verdict = result.verdict
                if hasattr(verdict, "per_vertex"):  # SsimBallVerdict
                    positive = decide_ssim_ball(cgbe, verdict)
                else:
                    positive = decide_positive(cgbe, verdict)
                if positive:
                    verified.add(result.ball_id)
        timings.user_result_decryption += watch.total
        return verified

    # -- step 9: retrieve balls and match ----------------------------
    def retrieve_and_match(
        self,
        verified_ids: Iterable[int],
        dealer: "Dealer",
        query: Query,
        sizes: MessageSizes,
        timings: PhaseTimings,
    ) -> dict[int, list[LabeledGraph]]:
        cipher = self.keyring.ball_cipher()
        matches: dict[int, list[LabeledGraph]] = {}
        with Stopwatch() as watch:
            for ball_id in sorted(verified_ids):
                blob = dealer.fetch_encrypted_ball(ball_id)
                sizes.add("retrieved_balls", blob.size)
                ball = ball_from_bytes(cipher.decrypt(blob.blob))
                found = find_matches(query, ball)
                if found:
                    matches[ball_id] = found
        timings.user_matching += watch.total
        return matches


# ----------------------------------------------------------------------
# Player
# ----------------------------------------------------------------------
def evaluate_ball_kernel(
    message: EncryptedQueryMessage,
    ball: Ball,
    *,
    enumeration_limit: int,
    cmm_bound_bypass: int,
    player_id: int = 0,
    pad_stats: "object | None" = None,
) -> EvaluationResult:
    """Alg. 3 lines 3-8 for one ball, using only the label view of the
    query (the edges stay encrypted).

    A module-level pure function of ``(message, ball)`` so the executor
    backends can ship it to worker processes without serializing a
    :class:`Player` (whose ball index would dominate the payload).
    Enumeration streams directly into verification
    (:func:`repro.core.verification.verify_ball_streaming`): truncation
    and chunk products share a single pass over the CMMs.
    """
    view = QueryLabelView(labels=message.vertex_labels,
                          diameter=message.diameter,
                          semantics=message.semantics)
    params = message.params
    started = time.perf_counter()
    if message.semantics is Semantics.SSIM:
        plan = ssim_plan(params, view)
        verdict = ssim_verify_ball(params, message.encrypted_matrix,
                                   message.c_one, view, ball, plan)
        cost = time.perf_counter() - started
        return EvaluationResult(ball_id=ball.ball_id, verdict=verdict,
                                cost_seconds=cost,
                                player=player_id)
    injective = message.semantics is Semantics.SUB_ISO
    plan = verification_plan(params, view)
    if count_cmm_upper_bound(view, ball) > cmm_bound_bypass:
        verdict = BallCiphertextResult(ball_id=ball.ball_id, bypassed=True)
        enumerated = 0
    else:
        verdict, enumerated, _ = verify_ball_streaming(
            params, message.encrypted_matrix, message.c_one, ball,
            iter_cmms(view, ball, injective=injective), plan,
            limit=enumeration_limit, pad_stats=pad_stats)
    cost = time.perf_counter() - started
    return EvaluationResult(
        ball_id=ball.ball_id, verdict=verdict, cost_seconds=cost,
        player=player_id, cmms=enumerated, bypassed=verdict.bypassed)


def compute_pms_kernel(
    enclave: Enclave,
    message: EncryptedQueryMessage,
    balls: list[Ball],
    *,
    bf_config: BFConfig,
    twiglet_h: int,
    twiglet_features: dict[int, frozenset] | None = None,
) -> tuple[PruningMessages, dict[int, float], PhaseTimings]:
    """One player's share of the pruning messages (Secs. 4.1-4.2).

    Returns fresh ``(pms, per-ball costs, phase timings)`` so executor
    backends can run shares in worker processes and merge the results
    deterministically in the parent.

    ``twiglet_features`` supplies precomputed *full-alphabet* per-ball
    twiglet sets (the artifact store's offline output); they are
    restricted to the query alphabet here, yielding exactly the set the
    per-query DFS would enumerate.
    """
    pms = PruningMessages()
    pm_costs: dict[int, float] = {}
    timings = PhaseTimings()
    codec = LabelCodec.from_alphabet(message.alphabet)
    params = message.params
    if message.bf_message is not None:
        enclave.load_query_encodings(message.bf_message.sealed_blob)
    twiglet_plan = None
    if message.twiglet_tables:
        twiglet_plan = table_plan(params, len(message.twiglet_tables[0]))
    path_plan = None
    if message.path_tables:
        path_plan = table_plan(params, len(message.path_tables[0]))
    neighbor_plan = None
    if message.neighbor_tables:
        neighbor_plan = table_plan(params,
                                   len(message.neighbor_tables[0]))
    for ball in balls:
        started = time.perf_counter()
        if message.bf_message is not None:
            bf_start = time.perf_counter()
            pms.bf[ball.ball_id] = player_bf_prune(
                enclave, ball, codec, bf_config)
            timings.pm_bf += time.perf_counter() - bf_start
        if message.twiglet_tables:
            t_start = time.perf_counter()
            if (twiglet_features is not None
                    and ball.ball_id in twiglet_features):
                features = filter_twiglets(twiglet_features[ball.ball_id],
                                           message.alphabet)
            else:
                features = twiglets_from(ball.graph, ball.center, twiglet_h,
                                         message.alphabet)
            pms.twiglet[ball.ball_id] = player_table_prune(
                params, message.twiglet_tables, ball, features,
                message.c_one, twiglet_plan)
            timings.pm_twiglet += time.perf_counter() - t_start
        if message.path_tables:
            features = paths_from(ball.graph, ball.center, twiglet_h,
                                  message.alphabet)
            pms.path[ball.ball_id] = player_table_prune(
                params, message.path_tables, ball, features,
                message.c_one, path_plan)
        if message.neighbor_tables:
            features = neighbor_features(ball.graph, ball.center)
            pms.neighbor[ball.ball_id] = player_table_prune(
                params, message.neighbor_tables, ball, features,
                message.c_one, neighbor_plan)
        elapsed = time.perf_counter() - started
        pm_costs[ball.ball_id] = elapsed
        timings.pm_computation += elapsed
    return pms, pm_costs, timings


def merge_pms(into: PruningMessages, share: PruningMessages) -> None:
    """Merge one player's PM share into the run-wide collection."""
    into.bf.update(share.bf)
    into.twiglet.update(share.twiglet)
    into.path.update(share.path)
    into.neighbor.update(share.neighbor)


class Player:
    """One Player server: plaintext balls + an SGX enclave."""

    def __init__(self, player_id: int, index: BallIndex,
                 enclave: Enclave | None = None) -> None:
        self.player_id = player_id
        self.index = index
        self.enclave = enclave if enclave is not None else Enclave()

    # -- pruning-message computation (Secs. 4.1-4.2) -----------------
    def compute_pms(
        self,
        message: EncryptedQueryMessage,
        balls: list[Ball],
        *,
        bf_config: BFConfig,
        twiglet_h: int,
        pms: PruningMessages,
        pm_costs: dict[int, float],
        timings: PhaseTimings,
    ) -> None:
        """Compute this player's share of the PMs, appending into ``pms``."""
        share, costs, share_timings = compute_pms_kernel(
            self.enclave, message, balls,
            bf_config=bf_config, twiglet_h=twiglet_h)
        merge_pms(pms, share)
        pm_costs.update(costs)
        timings.pm_bf += share_timings.pm_bf
        timings.pm_twiglet += share_timings.pm_twiglet
        timings.pm_computation += share_timings.pm_computation

    # -- ball evaluation (Secs. 3.1-3.2) ------------------------------
    def evaluate_ball(
        self,
        message: EncryptedQueryMessage,
        ball: Ball,
        *,
        enumeration_limit: int,
        cmm_bound_bypass: int,
    ) -> EvaluationResult:
        """Alg. 3 lines 3-8 for one ball (see :func:`evaluate_ball_kernel`)."""
        return evaluate_ball_kernel(
            message, ball,
            enumeration_limit=enumeration_limit,
            cmm_bound_bypass=cmm_bound_bypass,
            player_id=self.player_id)


# ----------------------------------------------------------------------
# Dealer
# ----------------------------------------------------------------------
class Dealer:
    """The Dealer server: encrypted balls, sequence generation, relaying."""

    def __init__(self, store: EncryptedBallStore) -> None:
        self._store = store

    def generate_sequences(
        self,
        decrypted: DecryptedPMs,
        k: int,
        *,
        use_ssg: bool,
        seed: int = 0,
    ) -> tuple[list[PlayerSequence], str]:
        """Step 5: SSG when enabled (falling back to the normal case at
        theta >= 1/2 internally), plain RSG otherwise."""
        if use_ssg:
            return ssg_sequences(decrypted.ball_ids, decrypted.positives,
                                 k, seed=seed)
        return rsg_sequences(decrypted.ball_ids, k, seed=seed), "rsg"

    def fetch_encrypted_ball(self, ball_id: int) -> EncryptedBallBlob:
        """Step 9: serve one encrypted ball."""
        return self._store.get(ball_id)
