"""Prilo* -- the optimized framework (Sec. 4).

Same machinery as :class:`repro.framework.prilo.Prilo` with the three
optimizations enabled by default:

* BF pruning in the simulated enclaves (Sec. 4.1),
* query-oblivious twiglet pruning under CGBE (Sec. 4.2),
* SSG secure ball retrieval (Sec. 4.3).

Each can be toggled independently for the ablation experiments
(e.g. ``PriloStar.setup(graph, use_bf=False)`` isolates the twiglet
contribution; ``use_path=True, use_twiglet=False`` swaps in the [57]
baseline for the Fig. 10/11 comparisons).
"""

from __future__ import annotations

from repro.framework.prilo import Prilo


class PriloStar(Prilo):
    """Prilo with BF + twiglet pruning and SSG retrieval on by default."""

    _OVERRIDES = dict(use_bf=True, use_twiglet=True, use_ssg=True)
