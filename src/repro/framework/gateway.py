"""Scatter-gather serving gateway over consistent-hash ball shards.

The gateway is the front end of the sharded serving tier: it holds no
engine, no keys and no graph -- only the membership ring, connection
pools to every shard, and the merge state of in-flight queries.  For
each query it fans one task out to every live shard; each shard
self-restricts to its ring-owned slice of the ball space and returns a
*verdict* (its answer slice plus per-run counters).  Because per-ball
evaluation is independent -- Alg. 3 iterates balls with no cross-ball
state -- the union of slice answers is exactly the single-engine answer,
and :func:`repro.framework.wire.canonical_answer` makes the equality
checkable byte-for-byte.

Failure model: a shard dying (SIGKILL, the chaos hook's weapon) fails
its in-flight and queued tasks.  Each failed task ``(members M)`` is
re-dispatched to every survivor as ``(members M', prev M)`` where ``M'``
is the *current* membership; consistent hashing guarantees the
survivors' ``owned(M') - owned(M)`` sets union to (a superset of) the
dead member's slice, and the union-based merge makes over-coverage
harmless -- a ball evaluated twice yields the identical verdict, and the
merge cross-checks instead of double-counting.  Re-dispatched tasks get
fresh journal indices (``qid + wave << 20``) so survivor journals never
see two different runs under one idempotency key.

Trust model: with an :class:`~repro.framework.verify.AnswerVerifier`
installed, shards are *untrusted* -- every OK verdict must carry a
certificate proving its slice complete (against the owner-committed
Merkle root + candidate catalog) and sound (keyed digests the SP cannot
mint) before the merge sees it.  A shard caught forging is evicted and
its task re-scattered to the honest survivors exactly like a death;
when no honest member can re-cover the slice, the query is marked
``FORGED`` and its answer withheld.  See
:mod:`repro.framework.verify`.

Metrics honesty: per-shard cache counters merge under shard-qualified
keys (:meth:`RunMetrics.record_shard_caches`) and crypto-op buckets
under ``role@shard<k>`` scopes (:meth:`OpCounter.merge_scoped`), so
fleet totals are exact sums and per-shard attribution survives the
merge -- summed exactly once, at the gateway, never shard-side.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import logging
import random
import time
from dataclasses import dataclass, field

from repro.crypto.ops import OpCounter
from repro.framework import wire
from repro.framework.metrics import CacheStats, JournalCounters, RunMetrics
from repro.framework.placement import DEFAULT_SALT, DEFAULT_VNODES
from repro.framework.server import QueryStatus
from repro.graph.query import Query
from repro.observability.spans import NULL_TRACER

logger = logging.getLogger(__name__)

#: Frames in flight per shard before dispatch blocks (per-shard slots).
DEFAULT_WINDOW = 4
#: Pooled connections per shard.
DEFAULT_POOL = 2
#: Re-dispatch waves shift the journal index by this many bits, keeping
#: replacement runs disjoint from epoch-0 commits in survivor journals.
_WAVE_SHIFT = 20

#: Status severity for the cross-shard fold (worst wins).  The lattice
#: mirrors the CLI exit-code fold: a query is only ``ok`` when every
#: covering slice completed.
_SEVERITY = {
    QueryStatus.OK: 0,
    QueryStatus.DRAINED: 1,
    QueryStatus.REJECTED_OVERLOAD: 2,
    QueryStatus.REJECTED_BALL_BUDGET: 3,
    QueryStatus.DEADLINE_EXCEEDED: 4,
    QueryStatus.FORGED: 5,
}


class GatewayError(RuntimeError):
    """Unrecoverable gateway state (no shards left, divergent answers,
    a shard-side evaluation error)."""


class ShardDied(GatewayError):
    """The peer went away mid-conversation (EOF, reset, write failure)."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"shard {shard_id} died")
        self.shard_id = shard_id


@dataclass
class GatewayChaos:
    """Deterministic failure injection: SIGKILL one shard mid-batch.

    Either name the victim outright (``kill_shard``) or derive it from
    ``seed`` -- same seed, same membership, same victim, so a chaos run
    is as reproducible as a clean one.  The kill fires after the victim
    delivers its ``kill_after_verdicts``-th verdict, guaranteeing the
    death lands mid-batch (some work done, some stranded) rather than
    degenerating into an N-1-shard run.
    """

    kill_shard: int | None = None
    kill_after_verdicts: int = 1
    seed: int | None = None

    def resolve(self, members: tuple[int, ...]) -> tuple[int, int] | None:
        after = max(1, int(self.kill_after_verdicts))
        if self.kill_shard is not None:
            if self.kill_shard not in members:
                raise GatewayError(
                    f"chaos victim {self.kill_shard} is not a member "
                    f"of {list(members)}")
            return self.kill_shard, after
        if self.seed is None:
            return None
        return random.Random(self.seed).choice(list(members)), after


class ShardClient:
    """Connection pool + request/response matching for one shard.

    Requests tag a monotonically increasing ``rid``; the shard echoes it
    and per-connection reader tasks resolve the matching future, so many
    requests ride each pooled connection concurrently.  Death is
    detected at the socket (EOF/reset on read, failure on write), fails
    every pending future with :class:`ShardDied`, and fires ``on_death``
    exactly once.
    """

    def __init__(self, shard_id: int, host: str, port: int, *,
                 pool: int = DEFAULT_POOL) -> None:
        if pool < 1:
            raise GatewayError("connection pool must be >= 1")
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.pool = pool
        self.hello: dict | None = None
        self.dead = False
        self.on_death = None
        self._closing = False
        self._rids = itertools.count()
        self._round_robin = 0
        self._conns: list[tuple[asyncio.StreamReader,
                                asyncio.StreamWriter]] = []
        self._readers: list[asyncio.Task] = []
        self._pending: dict[int, asyncio.Future] = {}

    async def connect(self) -> None:
        for _ in range(self.pool):
            reader, writer = await asyncio.open_connection(self.host,
                                                           self.port)
            hello = await wire.read_frame(reader)
            if hello is None or hello.get("t") != "hello":
                raise GatewayError(
                    f"shard {self.shard_id} at {self.host}:{self.port} "
                    f"did not say hello (got {hello!r})")
            self.hello = hello
            self._conns.append((reader, writer))
            self._readers.append(
                asyncio.ensure_future(self._read_loop(reader)))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await wire.read_frame(reader)
                if frame is None:
                    break
                future = self._pending.pop(frame.get("rid"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (wire.WireError, ConnectionError, OSError):
            pass
        self._mark_dead()

    def _mark_dead(self) -> None:
        if self.dead or self._closing:
            return
        self.dead = True
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(ShardDied(self.shard_id))
        # Tear the pool down *now*: a dead client's sockets must not
        # linger as live pool entries (half-open writers would otherwise
        # sit until close(), and a torn frame on one connection says
        # nothing good about its siblings).
        for task in self._readers:
            if not task.done():
                task.cancel()
        for _, writer in self._conns:
            writer.close()
        self._conns.clear()
        if self.on_death is not None:
            self.on_death(self.shard_id)

    async def request(self, payload: dict) -> dict:
        """Send one frame and await the matching reply."""
        if self.dead:
            raise ShardDied(self.shard_id)
        rid = next(self._rids)
        tagged = dict(payload)
        tagged["rid"] = rid
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        _, writer = self._conns[self._round_robin % len(self._conns)]
        self._round_robin += 1
        try:
            await wire.write_frame(writer, tagged)
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            self._mark_dead()
            raise ShardDied(self.shard_id) from exc
        return await future

    async def close(self) -> None:
        self._closing = True
        for task in self._readers:
            task.cancel()
        for _, writer in self._conns:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._conns.clear()
        self._readers.clear()


@dataclass
class _QueryState:
    """Merge state of one query across its covering tasks."""

    outstanding: int = 0
    finished: bool = False
    statuses: list[str] = field(default_factory=list)
    details: list[str] = field(default_factory=list)
    candidates: set[int] = field(default_factory=set)
    pm_positive: set[int] = field(default_factory=set)
    verified: set[int] = field(default_factory=set)
    matches: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class GatewayOutcome:
    """The merged fate of one submitted query."""

    index: int
    status: str
    answer: dict | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == QueryStatus.OK


@dataclass
class GatewayReport:
    """What one gateway batch did, across the fleet."""

    outcomes: list[GatewayOutcome]
    makespan: float
    #: Exact-once merged fleet counters: caches under ``name@shard<k>``
    #: keys, crypto ops under ``role@shard<k>`` buckets, journal summed.
    metrics: RunMetrics
    #: Engine-busy CPU seconds per shard (per-query ``process_time`` the
    #: shard reported, summed over its verdicts -- re-placed work
    #: included; scheduler wait on oversubscribed hosts excluded).
    per_shard_busy: dict[int, float] = field(default_factory=dict)
    shards: int = 0
    deaths: list[int] = field(default_factory=list)
    re_dispatches: int = 0
    final_members: tuple[int, ...] = ()
    drain_summaries: dict[int, dict] = field(default_factory=dict)
    #: Untrusted-shard serving: whether a verifier judged every OK
    #: verdict, how many certificates checked out, how many forged
    #: verdicts were caught (and their shards evicted), and what the
    #: proofs cost (bytes on the wire, seconds at the merge).
    verify_enabled: bool = False
    proofs_checked: int = 0
    forgeries_detected: int = 0
    evictions: list[int] = field(default_factory=list)
    proof_bytes: int = 0
    verify_seconds: float = 0.0

    @property
    def answers(self) -> list[dict | None]:
        return [outcome.answer for outcome in self.outcomes]

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def critical_path_seconds(self) -> float:
        """The busiest shard's engine seconds: the simulated-cluster
        makespan on hardware with one core per shard.  On a single-core
        host the shard processes timeshare one CPU, so wall-clock
        measures the scheduler, not the architecture; this is the same
        convention as the replay-speedup benchmarks."""
        return max(self.per_shard_busy.values(), default=0.0)

    @property
    def busy_seconds(self) -> float:
        return sum(self.per_shard_busy.values())

    @property
    def forged(self) -> int:
        """Queries whose answer was withheld as unrecoverably forged."""
        return sum(1 for outcome in self.outcomes
                   if outcome.status == QueryStatus.FORGED)

    @property
    def answers_digest(self) -> str:
        """One hex digest over every canonical answer in query order --
        what two runs (chaos vs. clean, sharded vs. plain) must agree on
        for their answers to be byte-identical."""
        hasher = hashlib.sha256()
        for answer in self.answers:
            hasher.update(b"\x00" if answer is None
                          else wire.answer_bytes(answer))
            hasher.update(b"\x1e")
        return hasher.hexdigest()

    def summary(self) -> dict:
        return {
            "queries": len(self.outcomes),
            "completed": self.completed,
            "answers_digest": self.answers_digest,
            "statuses": [outcome.status for outcome in self.outcomes],
            "makespan_seconds": self.makespan,
            "busy_seconds": self.busy_seconds,
            "critical_path_seconds": self.critical_path_seconds,
            "per_shard_busy_seconds": {str(k): v for k, v
                                       in sorted(self.per_shard_busy.items())},
            "shards": self.shards,
            "deaths": list(self.deaths),
            "re_dispatches": self.re_dispatches,
            "final_members": list(self.final_members),
            "caches": {name: stats.as_dict() for name, stats
                       in sorted(self.metrics.cache_totals().items())},
            "journal": self.metrics.journal.as_dict(),
            "crypto_ops": self.metrics.ops.as_dict(),
            "verify": {
                "enabled": self.verify_enabled,
                "proofs_checked": self.proofs_checked,
                "forgeries_detected": self.forgeries_detected,
                "evictions": list(self.evictions),
                "forged_answers": self.forged,
                "proof_bytes": self.proof_bytes,
                "verify_seconds": self.verify_seconds,
            },
        }


class Gateway:
    """Fan queries out over shard handles; merge verdicts deterministically.

    ``handles`` expose ``shard_id``/``host``/``port`` (and, for local
    clusters, ``kill()`` used by the chaos hook) -- see
    :class:`repro.framework.shard.ShardHandle`.  One :meth:`serve` call
    is one batch; the gateway groups queries by enumeration signature
    (cache-affine dispatch order, like the batch engine), routes every
    query to every live shard, and merges each query's verdicts as they
    land -- no cross-query barrier, so one slow signature group never
    stalls the fleet.
    """

    def __init__(self, handles, *, vnodes: int = DEFAULT_VNODES,
                 salt: str = DEFAULT_SALT, pool: int = DEFAULT_POOL,
                 window: int = DEFAULT_WINDOW,
                 chaos: GatewayChaos | None = None,
                 verifier=None,
                 tracer=None) -> None:
        handles = sorted(handles, key=lambda h: h.shard_id)
        ids = [h.shard_id for h in handles]
        if not handles:
            raise GatewayError("a gateway needs at least one shard")
        if len(set(ids)) != len(ids):
            raise GatewayError(f"duplicate shard ids: {ids}")
        if window < 1:
            raise GatewayError("dispatch window must be >= 1")
        self.handles = {h.shard_id: h for h in handles}
        self.vnodes = vnodes
        self.salt = salt
        self.pool = pool
        self.window = window
        self.chaos = chaos
        #: An :class:`repro.framework.verify.AnswerVerifier` makes this
        #: an *untrusted-shard* gateway: every OK verdict must carry a
        #: certificate that checks out before its slice touches the
        #: merge.  ``None`` keeps the PR 7 trusted-shard behavior.
        self.verifier = verifier
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- public entry points -------------------------------------------
    def run(self, queries: list[Query]) -> GatewayReport:
        return asyncio.run(self.serve(queries))

    async def serve(self, queries: list[Query]) -> GatewayReport:
        started = time.perf_counter()
        self._queries = list(queries)
        self._members: tuple[int, ...] = tuple(sorted(self.handles))
        self._initial_shards = len(self._members)
        self._dead: set[int] = set()
        self._deaths: list[int] = []
        self._evicted: list[int] = []
        self._forgeries = 0
        self._proofs_checked = 0
        self._proof_bytes = 0
        self._verify_seconds = 0.0
        self._wave = 0
        self._re_dispatches = 0
        self._states = [_QueryState() for _ in self._queries]
        self._remaining = len(self._queries)
        self._busy: dict[int, float] = {sid: 0.0 for sid in self._members}
        self._metrics = RunMetrics()
        self._queues: dict[int, asyncio.Queue] = {
            sid: asyncio.Queue() for sid in self._members}
        self._done = asyncio.Event()
        self._chaos_plan = (self.chaos.resolve(self._members)
                            if self.chaos else None)
        self._chaos_verdicts = 0
        self._chaos_fired = False
        drain_summaries: dict[int, dict] = {}

        clients = {sid: ShardClient(sid, handle.host, handle.port,
                                    pool=self.pool)
                   for sid, handle in self.handles.items()}
        self._clients = clients
        workers: list[asyncio.Task] = []
        try:
            with self.tracer.span("gateway.serve", "sp",
                                  shards=self._initial_shards,
                                  queries=len(self._queries),
                                  pool=self.pool, window=self.window):
                for client in clients.values():
                    client.on_death = self._death_callback
                    await client.connect()
                    pong = await client.request({"t": "ping"})
                    if pong.get("t") != "pong":
                        raise GatewayError(
                            f"shard {client.shard_id} failed its health "
                            f"check: {pong!r}")
                self._route()
                if self._remaining == 0:
                    self._done.set()
                workers = [
                    asyncio.create_task(
                        self._slot(sid, clients[sid]),
                        name=f"gateway-slot-{sid}-{k}")
                    for sid in self._members for k in range(self.window)
                ]
                await self._supervise(workers)
                drain_summaries = await self._drain(clients)
        finally:
            for worker in workers:
                worker.cancel()
            for client in clients.values():
                client.on_death = None
                await client.close()

        return self._build_report(started, drain_summaries)

    # -- routing & supervision -----------------------------------------
    def _route(self) -> None:
        """Queue every query to every member, grouped by enumeration
        signature so shard-side CMM caches see signature-affine order."""
        groups: dict[tuple, list[int]] = {}
        for qid, query in enumerate(self._queries):
            # The bound-free prefix of the engine's enumeration_signature
            # (the gateway does not know shard enumeration bounds, and
            # routing only needs stable affinity, not exact cache keys).
            signature = (tuple(query.label(u) for u in query.vertex_order),
                         query.diameter, query.semantics)
            groups.setdefault(signature, []).append(qid)
        self._wire_queries = [wire.query_to_jsonable(q)
                              for q in self._queries]
        for indices in groups.values():
            for qid in indices:
                state = self._states[qid]
                state.outstanding = len(self._members)
                for sid in self._members:
                    self._queues[sid].put_nowait({
                        "qid": qid, "jindex": qid,
                        "members": self._members,
                        "prev_members": None,
                    })

    async def _supervise(self, workers: list[asyncio.Task]) -> None:
        waiter = asyncio.create_task(self._done.wait())
        alive = set(workers)
        try:
            while True:
                finished, _ = await asyncio.wait(
                    alive | {waiter}, return_when=asyncio.FIRST_COMPLETED)
                if waiter in finished:
                    return
                for task in finished:
                    alive.discard(task)
                    exc = task.exception()
                    if exc is not None:
                        raise exc
                if not alive:  # pragma: no cover -- workers exit on done
                    raise GatewayError("all dispatch slots exited with "
                                       "queries outstanding")
        finally:
            waiter.cancel()

    async def _slot(self, sid: int, client: ShardClient) -> None:
        queue = self._queues[sid]
        while True:
            task = await queue.get()
            if task is None:
                return
            if sid in self._dead:
                self._reassign(task)
                continue
            payload = {
                "t": "query", "qid": task["qid"], "jindex": task["jindex"],
                "query": self._wire_queries[task["qid"]],
                "members": list(task["members"]),
            }
            if task["prev_members"] is not None:
                payload["prev_members"] = list(task["prev_members"])
            try:
                verdict = await client.request(payload)
            except ShardDied:
                self._on_death(sid)
                self._reassign(task)
                continue
            if verdict.get("t") == "error":
                raise GatewayError(
                    f"shard {sid} could not serve query {task['qid']}: "
                    f"{verdict.get('detail', '')}")
            if not self._verify(sid, task, verdict):
                continue
            self._absorb(sid, task, verdict)
            self._maybe_fire_chaos(sid)

    # -- certificate verification (untrusted shards) --------------------
    def _verify(self, sid: int, task: dict, verdict: dict) -> bool:
        """Judge one verdict user-side before the merge sees it.

        Returns ``True`` when the slice may be absorbed.  Only OK
        verdicts carry answer slices, so only they are judged; a shard
        claiming overload/deadline contributes no answer bytes and can
        at worst fail the query loudly (availability, not integrity).
        """
        if self.verifier is None:
            return True
        status = verdict.get("status", QueryStatus.OK)
        if status != QueryStatus.OK:
            return True
        from repro.framework.verify import VerificationError

        qid = task["qid"]
        t0 = time.perf_counter()
        try:
            self._proof_bytes += self.verifier.verify_verdict(
                qid=qid, shard_id=sid, members=task["members"],
                prev_members=task["prev_members"],
                query=self._queries[qid], verdict=verdict)
        except VerificationError as err:
            self._verify_seconds += time.perf_counter() - t0
            self._on_forgery(sid, task, err)
            return False
        self._verify_seconds += time.perf_counter() - t0
        self._proofs_checked += 1
        self.tracer.event("gateway.verify", "user", qid=qid, shard=sid)
        return True

    def _on_forgery(self, sid: int, task: dict, err) -> None:
        """A shard's certificate failed: the shard is malicious (or
        serving corrupt state).  Evict it and re-scatter the task to the
        honest survivors; with nobody left to cover the slice, the query
        is marked FORGED and its answer withheld -- a forged answer
        never reaches the user, whatever happens."""
        from repro.framework.faults import FaultAction

        qid = task["qid"]
        key = f"shard{sid}:q{qid}"
        self._forgeries += 1
        self._metrics.faults.record(err.kind, key, FaultAction.DETECTED,
                                    detail=str(err))
        self.tracer.event("gateway.forgery", "user", qid=qid, shard=sid,
                          kind=err.kind)
        logger.warning("gateway: shard %d failed verification on query "
                       "%d (%s): %s", sid, qid, err.kind, err)
        if sid not in self._dead and len(self._members) > 1:
            self._evict(sid)
        if self._members and sid not in self._members:
            self._reassign(task)
            self._metrics.faults.record(
                err.kind, key, FaultAction.RECOVERED,
                detail=f"re-scattered to {len(self._members)} honest "
                       f"member(s)")
            return
        state = self._states[qid]
        state.statuses.append(QueryStatus.FORGED)
        state.details.append(f"shard{sid}: {err}")
        self._metrics.faults.record(
            err.kind, key, FaultAction.DEGRADED,
            detail="no honest members left to re-cover the slice; "
                   "answer withheld")
        self._task_done(qid)

    def _evict(self, sid: int) -> None:
        """Remove a malicious member: like a death, but the process
        stays up (we just stop talking to it) and running out of honest
        members degrades per-query instead of failing the batch."""
        self._dead.add(sid)
        self._evicted.append(sid)
        self._members = tuple(m for m in self._members if m != sid)
        logger.warning("gateway: evicting shard %d after forged verdict; "
                       "%d members remain", sid, len(self._members))
        self.tracer.event("gateway.eviction", "user", shard=sid,
                          shards=len(self._members))
        queue = self._queues[sid]
        stranded = []
        while not queue.empty():
            task = queue.get_nowait()
            if task is not None:
                stranded.append(task)
        for task in stranded:
            self._reassign(task)
        for _ in range(self.window):
            queue.put_nowait(None)

    # -- failure handling ----------------------------------------------
    def _death_callback(self, sid: int) -> None:
        # Socket readers fire this from their own task; route through
        # the same idempotent path the dispatch slots use.
        self._on_death(sid)

    def _on_death(self, sid: int) -> None:
        if sid in self._dead:
            return
        self._dead.add(sid)
        self._deaths.append(sid)
        survivors = tuple(m for m in self._members if m != sid)
        if not survivors:
            raise GatewayError(
                f"shard {sid} died and no members survive")
        self._members = survivors
        logger.warning("gateway: shard %d died; %d survivors, "
                       "re-placing its slice", sid, len(survivors))
        self.tracer.event("gateway.shard_death", "sp", shard=sid,
                          shards=len(survivors))
        queue = self._queues[sid]
        stranded = []
        while not queue.empty():
            task = queue.get_nowait()
            if task is not None:
                stranded.append(task)
        for task in stranded:
            self._reassign(task)
        # Wake the dead shard's dispatch slots so they exit.
        for _ in range(self.window):
            queue.put_nowait(None)

    def _reassign(self, task: dict) -> None:
        """Re-dispatch one failed task to every survivor as a
        re-placement pass over the balls that moved."""
        if not self._members:
            raise GatewayError("cannot re-place orphaned work: "
                               "no shards left")
        qid = task["qid"]
        state = self._states[qid]
        self._wave += 1
        for sid in self._members:
            state.outstanding += 1
            self._queues[sid].put_nowait({
                "qid": qid,
                "jindex": qid + (self._wave << _WAVE_SHIFT),
                "members": self._members,
                "prev_members": task["members"],
            })
        self._re_dispatches += len(self._members)
        self._task_done(qid)

    def _maybe_fire_chaos(self, sid: int) -> None:
        if self._chaos_plan is None or self._chaos_fired:
            return
        victim, after = self._chaos_plan
        if sid != victim:
            return
        self._chaos_verdicts += 1
        if self._chaos_verdicts < after:
            return
        self._chaos_fired = True
        handle = self.handles[victim]
        kill = getattr(handle, "kill", None)
        if kill is None:
            raise GatewayError(
                f"chaos victim {victim} has no kill() handle")
        logger.warning("gateway: chaos killing shard %d after %d "
                       "verdicts", victim, self._chaos_verdicts)
        kill()

    # -- merge ----------------------------------------------------------
    def _absorb(self, sid: int, task: dict, verdict: dict) -> None:
        qid = task["qid"]
        state = self._states[qid]
        status = verdict.get("status", QueryStatus.OK)
        state.statuses.append(status)
        detail = verdict.get("detail", "")
        if detail:
            state.details.append(f"shard{sid}: {detail}")
        self._busy[sid] = (self._busy.get(sid, 0.0)
                           + float(verdict.get("busy", 0.0)))
        if "caches" in verdict:
            self._metrics.record_shard_caches(sid, {
                name: CacheStats.from_dict(payload)
                for name, payload in verdict["caches"].items()})
        if "ops" in verdict:
            self._metrics.ops.merge_scoped(
                OpCounter.from_dict(verdict["ops"]),
                scope=f"shard{sid}")
        if "journal" in verdict:
            self._metrics.journal.merge(
                JournalCounters.from_dict(verdict["journal"]))
        if status == QueryStatus.OK and "candidates" in verdict:
            state.candidates.update(int(b) for b in verdict["candidates"])
            state.pm_positive.update(int(b) for b in verdict["pm_positive"])
            state.verified.update(int(b) for b in verdict["verified"])
            for ball_id, subs in verdict.get("matches", {}).items():
                subs = list(subs)
                existing = state.matches.get(ball_id)
                if existing is None:
                    state.matches[ball_id] = subs
                elif existing != subs:
                    # Two slices evaluated the same ball (re-placement
                    # overlap) and disagreed: per-ball evaluation is
                    # deterministic, so divergence means corruption.
                    raise GatewayError(
                        f"divergent answers for ball {ball_id} of query "
                        f"{qid}: shard {sid} disagrees with an earlier "
                        f"slice")
        self._task_done(qid)

    def _task_done(self, qid: int) -> None:
        state = self._states[qid]
        state.outstanding -= 1
        if state.outstanding > 0 or state.finished:
            return
        state.finished = True
        self._remaining -= 1
        if self._remaining == 0:
            for queue in self._queues.values():
                for _ in range(self.window):
                    queue.put_nowait(None)
            self._done.set()

    # -- wrap-up ---------------------------------------------------------
    async def _drain(self, clients: dict[int, ShardClient]) -> dict:
        summaries: dict[int, dict] = {}
        for sid, client in clients.items():
            # Evicted shards are alive but untrusted: no drain handshake,
            # and certainly no merging of their self-reported summaries.
            if client.dead or sid in self._dead:
                continue
            try:
                reply = await client.request({"t": "drain"})
            except ShardDied:
                continue
            if reply.get("t") == "drained":
                summaries[sid] = reply.get("summary", {})
        return summaries

    def _build_report(self, started: float,
                      drain_summaries: dict[int, dict]) -> GatewayReport:
        outcomes = []
        for qid, state in enumerate(self._states):
            status = max(state.statuses, key=lambda s: _SEVERITY.get(s, 5),
                         default=QueryStatus.DRAINED)
            answer = None
            if status == QueryStatus.OK:
                answer = wire.canonical_answer(
                    state.candidates, state.pm_positive, state.verified,
                    state.matches)
            outcomes.append(GatewayOutcome(
                index=qid, status=status, answer=answer,
                detail="; ".join(state.details)))
        return GatewayReport(
            outcomes=outcomes,
            makespan=time.perf_counter() - started,
            metrics=self._metrics,
            per_shard_busy=dict(sorted(self._busy.items())),
            shards=self._initial_shards,
            deaths=list(self._deaths),
            re_dispatches=self._re_dispatches,
            final_members=self._members,
            drain_summaries=drain_summaries,
            verify_enabled=self.verifier is not None,
            proofs_checked=self._proofs_checked,
            forgeries_detected=self._forgeries,
            evictions=list(self._evicted),
            proof_bytes=self._proof_bytes,
            verify_seconds=self._verify_seconds,
        )


__all__ = [
    "DEFAULT_POOL",
    "DEFAULT_WINDOW",
    "Gateway",
    "GatewayChaos",
    "GatewayError",
    "GatewayOutcome",
    "GatewayReport",
    "ShardClient",
    "ShardDied",
]
