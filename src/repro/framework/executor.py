"""Parallel ball-evaluation backends for the SP side.

The paper's scalability argument is that the k Player servers evaluate
their sequences concurrently ("evaluations can be readily parallelized",
Sec. 4.3).  The engines express that through one abstraction:

* :class:`SerialExecutor` runs every player share in-process, in order --
  deterministic, debuggable, and the right default on one core;
* :class:`ProcessExecutor` maps player shares onto a
  :class:`concurrent.futures.ProcessPoolExecutor`, one task per Player
  sequence, so the pure-Python big-integer arithmetic of Alg. 2 escapes
  the GIL entirely.

Both backends produce *identical* :class:`QueryResult` contents: per-ball
evaluation is a pure function of ``(message, ball)`` (all CGBE operations
the Players perform are deterministic given their ciphertext inputs), the
work partition is fixed by the Dealer's sequences before any backend is
consulted, and shares are merged in sequence order with
first-evaluation-wins per ball id.  The only things that differ are the
measured wall-clocks.

Fault tolerance: every call carries a stable key (its protocol
coordinate), so a share lost to a crashed or hung worker can be
re-dispatched -- and only the *lost* shares are re-run.  The process
backend survives ``BrokenProcessPool`` (worker death, injected via
``os._exit`` under chaos) and per-share deadlines by respawning the pool
with exponential backoff; because share evaluation is pure, the merged
results are value-identical to a fault-free serial run under any injected
schedule.  Fault decisions come from the installed
:class:`~repro.framework.faults.FaultInjector` (see ``PriloConfig.chaos``)
and every injection/detection/retry is recorded in its report.

Obliviousness is unaffected: the executor schedules *shares*, which are
derived from the Dealer's sequences only -- never from ciphertext values,
verdicts, or any other query-dependent signal -- and every ball in a share
is evaluated unconditionally.  Chaos decisions, likewise, hash public
coordinates only.  See DESIGN.md ("Executor architecture", "Fault model
and recovery").

Worker payloads are ``(message, balls)`` rather than whole
:class:`~repro.framework.roles.Player` objects: players hold the full ball
index, which must never be re-pickled per task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.core.aggregation import BallCiphertextResult, aggregate_items
from repro.core.bf_pruning import BFConfig
from repro.core.verification import (
    verification_multiexp,
    verification_plan,
    verify_projected_rows,
)
from repro.crypto import ops as crypto_ops
from repro.crypto.cgbe import CiphertextPowerCache
from repro.crypto.kernels import (
    DEFAULT_KERNELS,
    KernelConfig,
    MultiExpRegistry,
    kernel_scope,
    mask_of_pattern,
)
from repro.framework.faults import (
    ChaosPolicy,
    FaultAction,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultRecoveryExhausted,
    InjectedFault,
    RecoveryPolicy,
)
from repro.framework.messages import (
    EncryptedQueryMessage,
    EvaluationResult,
    PruningMessages,
)
from repro.framework.metrics import CacheStats, PhaseTimings
from repro.framework.roles import compute_pms_kernel, evaluate_ball_kernel
from repro.observability.spans import NULL_TRACER, player_role
from repro.graph.ball import Ball
from repro.graph.query import QueryLabelView
from repro.tee.enclave import Enclave

#: Registry of backend names accepted by ``PriloConfig.executor``.
EXECUTOR_BACKENDS = ("serial", "process")


def eval_share_key(index: int, player: int) -> str:
    """The stable protocol coordinate of one evaluation share -- the same
    string keys the chaos schedule, the fault report, and the run
    journal's checkpoint records."""
    return f"eval:{index}:p{player}"


def verify_share_key(index: int, player: int) -> str:
    """The stable coordinate of one prepared-verification share."""
    return f"verify:{index}:p{player}"


@dataclass(frozen=True)
class EvaluationShare:
    """One worker's slice of the evaluation work: the balls that first
    appear in one Player's Dealer-given sequence."""

    player: int
    balls: tuple[Ball, ...]


@dataclass
class ShareOutcome:
    """What one worker reports back for its evaluation share."""

    player: int
    wall_seconds: float
    results: list[EvaluationResult] = field(default_factory=list)
    #: Per-cache statistics observed inside the worker (e.g. the pad-power
    #: caches), merged into ``RunMetrics.caches`` by the engine.
    caches: dict[str, CacheStats] = field(default_factory=dict)
    #: Crypto op counts observed inside the worker (modmul/modexp/table
    #: builds per phase), merged into ``RunMetrics.ops`` by the engine.
    #: ``None`` on outcomes replayed from pre-accounting journals.
    ops: crypto_ops.OpCounter | None = None


#: One ball's projected-pattern groups: the enumeration output a
#: :class:`~repro.framework.server.CMMCache` shares across a signature
#: group, shipped to workers as plain integer tuples (no graph objects).
@dataclass(frozen=True)
class PreparedBall:
    """The verification work order for one ball under one signature.

    ``patterns`` holds the *distinct* projected matrices ``M_p`` of the
    ball's CMMs (tuples of 0/1 rows); ``pattern_of_cmm`` maps each CMM, in
    enumeration order, to its pattern index.  Verification computes one
    chunked product per distinct pattern and replicates it per CMM -- the
    exact multiset of per-CMM products the streaming kernel emits, at a
    fraction of the ciphertext multiplications.
    """

    ball_id: int
    enumerated: int
    truncated: bool
    bound_bypassed: bool
    patterns: tuple[tuple[tuple[int, ...], ...], ...]
    pattern_of_cmm: tuple[int, ...]
    #: Packed off-diagonal selection masks, one per entry of ``patterns``
    #: (:func:`repro.crypto.kernels.mask_of_pattern` layout).  Empty on
    #: objects built before the kernel layer; consumers fall back to
    #: deriving masks from ``patterns``.
    masks: tuple[int, ...] = ()

    @property
    def bypassed(self) -> bool:
        return self.truncated or self.bound_bypassed

    @property
    def weight(self) -> int:
        """Cache weight in CMM units (per-CMM index + distinct patterns)."""
        return max(len(self.pattern_of_cmm) + len(self.patterns), 1)


@dataclass(frozen=True)
class PreparedShare:
    """One worker's slice of prepared (pattern-grouped) verification."""

    player: int
    balls: tuple[PreparedBall, ...]


@dataclass
class PmShareOutcome:
    """What one worker reports back for its pruning-message share."""

    player: int
    wall_seconds: float
    pms: PruningMessages
    pm_costs: dict[int, float]
    timings: PhaseTimings
    #: Fault events observed inside the kernel (enclave/channel recovery),
    #: merged into the run's fault report by the engine.
    faults: list[FaultEvent] = field(default_factory=list)
    #: Worker-side crypto op counts (see :class:`ShareOutcome.ops`).
    ops: crypto_ops.OpCounter | None = None


# ----------------------------------------------------------------------
# module-level worker entry points (must be picklable by reference)
# ----------------------------------------------------------------------
def _evaluate_share(message: EncryptedQueryMessage,
                    share: EvaluationShare,
                    enumeration_limit: int,
                    cmm_bound_bypass: int,
                    kernels: KernelConfig = DEFAULT_KERNELS) -> ShareOutcome:
    started = time.perf_counter()
    pad_stats = CacheStats()
    counter = crypto_ops.OpCounter()
    # One multi-exp registry per share: the Straus tables (and their
    # pattern memos) are shared across every ball this worker evaluates.
    registry = MultiExpRegistry(kernels) if kernels.multiexp else None
    role = f"player:{share.player}"
    with kernel_scope(kernels, message.params), \
            crypto_ops.counting(counter, "evaluation", role):
        results = [
            evaluate_ball_kernel(message, ball,
                                 enumeration_limit=enumeration_limit,
                                 cmm_bound_bypass=cmm_bound_bypass,
                                 player_id=share.player,
                                 pad_stats=pad_stats,
                                 multiexp=registry)
            for ball in share.balls
        ]
    return ShareOutcome(player=share.player,
                        wall_seconds=time.perf_counter() - started,
                        results=results,
                        caches={"pad": pad_stats},
                        ops=counter)


def verify_prepared_kernel(message: EncryptedQueryMessage,
                           prepared: PreparedBall,
                           player_id: int = 0,
                           pad_stats: CacheStats | None = None,
                           multiexp: MultiExpRegistry | None = None,
                           ) -> EvaluationResult:
    """Alg. 2 + Alg. 3 lines 6-7 for one ball from pre-enumerated pattern
    groups (the batch server's fast path).

    One chunked product is computed per *distinct* projected pattern; the
    chunk lists are then replicated per CMM in enumeration order before
    aggregation.  Products over identical factor multisets in identical
    chunk layouts are identical ciphertexts, so the aggregated verdict is
    value-identical to :func:`~repro.framework.roles.evaluate_ball_kernel`
    re-running enumeration + per-CMM verification from scratch.

    The SP-observable access pattern is unchanged: which patterns exist
    and how CMMs map onto them is a function of the ball's plaintext
    adjacency and the public label view only -- never of ciphertext
    values or verdicts.
    """
    params = message.params
    started = time.perf_counter()
    if prepared.bypassed:
        verdict = BallCiphertextResult(ball_id=prepared.ball_id,
                                       bypassed=True)
        return EvaluationResult(
            ball_id=prepared.ball_id, verdict=verdict,
            cost_seconds=time.perf_counter() - started, player=player_id,
            cmms=prepared.enumerated, bypassed=True)
    view = QueryLabelView(labels=message.vertex_labels,
                          diameter=message.diameter,
                          semantics=message.semantics)
    plan = verification_plan(params, view)
    if multiexp is not None and multiexp.enabled:
        table = multiexp.table(("verify",), lambda: verification_multiexp(
            params, message.encrypted_matrix, message.c_one, plan,
            multiexp.config))
        masks = prepared.masks or tuple(
            mask_of_pattern(pattern) for pattern in prepared.patterns)
        distinct = [table.chunk_ciphertexts(mask) for mask in masks]
    else:
        pad_cache = CiphertextPowerCache(params, message.c_one,
                                         stats=pad_stats)
        distinct = [
            verify_projected_rows(params, message.encrypted_matrix,
                                  message.c_one, rows, plan,
                                  pad_cache=pad_cache)
            for rows in prepared.patterns
        ]
    chunk_lists = [distinct[index] for index in prepared.pattern_of_cmm]
    verdict = aggregate_items(params, prepared.ball_id, chunk_lists, plan)
    return EvaluationResult(
        ball_id=prepared.ball_id, verdict=verdict,
        cost_seconds=time.perf_counter() - started, player=player_id,
        cmms=prepared.enumerated, bypassed=verdict.bypassed)


def _verify_share(message: EncryptedQueryMessage,
                  share: PreparedShare,
                  kernels: KernelConfig = DEFAULT_KERNELS) -> ShareOutcome:
    started = time.perf_counter()
    pad_stats = CacheStats()
    counter = crypto_ops.OpCounter()
    registry = MultiExpRegistry(kernels) if kernels.multiexp else None
    role = f"player:{share.player}"
    with kernel_scope(kernels, message.params), \
            crypto_ops.counting(counter, "evaluation", role):
        results = [
            verify_prepared_kernel(message, prepared,
                                   player_id=share.player,
                                   pad_stats=pad_stats,
                                   multiexp=registry)
            for prepared in share.balls
        ]
    return ShareOutcome(player=share.player,
                        wall_seconds=time.perf_counter() - started,
                        results=results,
                        caches={"pad": pad_stats},
                        ops=counter)


def _compute_pm_share(enclave: Enclave,
                      message: EncryptedQueryMessage,
                      player: int,
                      balls: tuple[Ball, ...],
                      bf_config: BFConfig,
                      twiglet_h: int,
                      twiglet_features: dict[int, frozenset] | None,
                      chaos: ChaosPolicy | None = None,
                      kernels: KernelConfig = DEFAULT_KERNELS,
                      ) -> PmShareOutcome:
    started = time.perf_counter()
    counter = crypto_ops.OpCounter()
    with kernel_scope(kernels, message.params), \
            crypto_ops.counting(counter, "pm_computation",
                                f"player:{player}"):
        pms, pm_costs, timings, fault_events = compute_pms_kernel(
            enclave, message, list(balls),
            bf_config=bf_config, twiglet_h=twiglet_h,
            twiglet_features=twiglet_features,
            chaos=chaos, player_id=player, kernels=kernels)
    return PmShareOutcome(player=player,
                          wall_seconds=time.perf_counter() - started,
                          pms=pms, pm_costs=pm_costs, timings=timings,
                          faults=fault_events, ops=counter)


def _watch_parent(parent_pid: int) -> None:
    """Pool-worker initializer: exit when the spawning engine dies.

    A ``kill -9`` of the engine process (the crash-recovery model of
    DESIGN.md section 9) must not leak idle pool workers -- they would
    otherwise block forever on the call queue.  A daemon thread polls the
    parent pid and hard-exits the worker once it is reparented; the poll
    touches no query state, so obliviousness is unaffected.
    """
    import threading

    def watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(0.5)
        os._exit(0)

    threading.Thread(target=watch, daemon=True,
                     name="parent-watchdog").start()


def _chaos_call(policy: ChaosPolicy | None, key: str, attempt: int,
                fn, *args):
    """Worker-side chaos shim: fail as the schedule dictates, then run the
    real kernel.  A worker crash is a *real* ``os._exit`` (the parent sees
    a genuine ``BrokenProcessPool``, not a simulated exception); a hang is
    a real sleep past the deadline.  The parent records the injection event
    at submit time by re-evaluating the same pure decision."""
    if policy is not None:
        if policy.decides(FaultKind.WORKER_CRASH, key, attempt):
            os._exit(66)
        if policy.decides(FaultKind.SHARE_TIMEOUT, key, attempt):
            time.sleep(policy.timeout_sleep_seconds)
            raise InjectedFault(
                FaultKind.SHARE_TIMEOUT,
                f"injected hang on {key} (attempt {attempt})")
    return fn(*args)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class BallExecutor:
    """Maps Player shares onto compute resources.

    Subclasses implement :meth:`_run_all` over ``(key, fn, args)`` calls
    and must return outcomes in submission order -- merging stays
    deterministic no matter how the backend schedules (or re-dispatches)
    the work.  ``install_faults`` binds the current run's injector; the
    default is the inert null injector, so the recovery machinery is
    always armed for *real* faults even with chaos off.
    """

    backend = "abstract"

    def __init__(self, workers: int = 1,
                 recovery: RecoveryPolicy | None = None) -> None:
        if workers < 1:
            raise ValueError("executor needs at least one worker")
        self.workers = workers
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.faults = FaultInjector()
        self.tracer = NULL_TRACER

    def install_faults(self, injector: FaultInjector) -> None:
        """Bind the fault injector/report for the next run(s)."""
        self.faults = injector

    def install_tracer(self, tracer) -> None:
        """Bind the run's span tracer (same lifecycle as the injector);
        the default :data:`NULL_TRACER` keeps untraced dispatch free of
        span allocations."""
        self.tracer = tracer

    def _trace_shares(self, name: str, calls: list, outcomes: list,
                      completed: dict | None) -> None:
        """One ``player:<k>``-scope span per harvested share outcome.

        Emitted in the parent (never inside workers), with the measured
        worker wall-clock as the duration and only access-pattern
        attributes: the public share coordinate, ball/CGBE-op counts and
        whether the outcome was replayed from the journal.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        for (key, _fn, _args), outcome in zip(calls, outcomes):
            attrs: dict[str, object] = {
                "share_key": key,
                "replayed": bool(completed) and key in completed,
            }
            if isinstance(outcome, ShareOutcome):
                attrs["balls"] = len(outcome.results)
                attrs["cmms"] = sum(r.cmms for r in outcome.results)
                attrs["bypassed"] = sum(1 for r in outcome.results
                                        if r.bypassed)
                pad = outcome.caches.get("pad")
                if pad is not None:
                    attrs["hits"] = pad.hits
                    attrs["misses"] = pad.misses
            else:  # PmShareOutcome
                attrs["balls"] = len(outcome.pm_costs)
            # getattr: journaled outcomes from pre-accounting runs lack
            # the ops field entirely.
            counter = getattr(outcome, "ops", None)
            if counter is not None:
                totals = counter.totals()
                attrs["modmuls"] = totals.modmul
                attrs["modexps"] = totals.modexp
                attrs["table_builds"] = totals.table_build
            tracer.event(name, player_role(outcome.player),
                         duration_s=outcome.wall_seconds, **attrs)

    # -- public API ----------------------------------------------------
    def evaluate_shares(self, message: EncryptedQueryMessage,
                        shares: list[EvaluationShare],
                        *, enumeration_limit: int,
                        cmm_bound_bypass: int,
                        kernels: KernelConfig = DEFAULT_KERNELS,
                        completed: dict[str, ShareOutcome] | None = None,
                        on_result=None) -> list[ShareOutcome]:
        """Evaluate every share; outcomes come back in share order.

        ``completed`` maps share keys to already-known outcomes (a resumed
        run's journaled checkpoints): those shares are never dispatched,
        their outcomes are spliced back in place.  ``on_result(key,
        outcome)`` fires in the parent as each *newly computed* share
        outcome is harvested -- the journal's checkpoint hook -- without
        ever blocking the worker pool.
        """
        calls = [
            (eval_share_key(i, share.player),
             _evaluate_share,
             (message, share, enumeration_limit, cmm_bound_bypass, kernels))
            for i, share in enumerate(shares)
        ]
        outcomes = self._run_with_completed(calls, completed, on_result)
        self._trace_shares("evaluation_share", calls, outcomes, completed)
        return outcomes

    def verify_shares(self, message: EncryptedQueryMessage,
                      shares: list[PreparedShare],
                      kernels: KernelConfig = DEFAULT_KERNELS,
                      completed: dict[str, ShareOutcome] | None = None,
                      on_result=None) -> list[ShareOutcome]:
        """Verify every prepared share; outcomes come back in share order.

        The prepared path carries no enumeration parameters: truncation and
        bound bypass were already decided when the patterns were built, and
        travel inside each :class:`PreparedBall`.  ``completed`` and
        ``on_result`` behave as in :meth:`evaluate_shares`.
        """
        calls = [(verify_share_key(i, share.player), _verify_share,
                  (message, share, kernels))
                 for i, share in enumerate(shares)]
        outcomes = self._run_with_completed(calls, completed, on_result)
        self._trace_shares("verification_share", calls, outcomes, completed)
        return outcomes

    def _run_with_completed(self, calls, completed, on_result) -> list:
        """Dispatch only the calls whose key has no known outcome, then
        splice the known outcomes back into call order."""
        if not completed:
            return self._run_all(calls, on_result=on_result)
        pending = [(key, fn, args) for key, fn, args in calls
                   if key not in completed]
        fresh = iter(self._run_all(pending, on_result=on_result))
        return [completed[key] if key in completed else next(fresh)
                for key, _fn, _args in calls]

    def compute_pm_shares(self, message: EncryptedQueryMessage,
                          shares: list[tuple[int, Enclave, tuple[Ball, ...]]],
                          *, bf_config: BFConfig,
                          twiglet_h: int,
                          twiglet_features: dict[int, frozenset] | None = None,
                          kernels: KernelConfig = DEFAULT_KERNELS,
                          ) -> list[PmShareOutcome]:
        """Compute every player's PM share; outcomes in share order.

        ``twiglet_features`` (artifact-store output) is sliced per share
        so process workers only pickle the features of their own balls.
        The active chaos policy travels into the kernel so enclave/channel
        faults fire inside the worker, where the enclave actually runs.
        """
        chaos = self.faults.policy if self.faults.active else None
        calls = []
        for player, enclave, balls in shares:
            subset = None
            if twiglet_features is not None:
                subset = {ball.ball_id: twiglet_features[ball.ball_id]
                          for ball in balls
                          if ball.ball_id in twiglet_features}
            calls.append(
                (f"pm:p{player}", _compute_pm_share,
                 (enclave, message, player, balls, bf_config, twiglet_h,
                  subset, chaos, kernels)))
        outcomes = self._run_all(calls)
        for outcome in outcomes:
            if outcome.faults:
                self.faults.report.extend(outcome.faults)
                outcome.faults = []
        self._trace_shares("pm_share", calls, outcomes, None)
        return outcomes

    # -- backend hook --------------------------------------------------
    def _run_all(self, calls: list[tuple[str, object, tuple]],
                 on_result=None) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "BallExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(BallExecutor):
    """In-process, in-order execution -- the determinism/debug baseline.

    Under chaos, crash/hang injections surface as in-process
    :class:`InjectedFault` stand-ins and go through the same
    detect/backoff/retry loop as the process backend, so the fault
    *schedule* and the recovery decisions are backend-independent.
    """

    backend = "serial"

    def __init__(self, recovery: RecoveryPolicy | None = None) -> None:
        super().__init__(workers=1, recovery=recovery)

    def _run_all(self, calls: list[tuple[str, object, tuple]],
                 on_result=None) -> list:
        results = []
        for key, fn, args in calls:
            if not self.faults.active:
                result = fn(*args)
            else:
                result = self._run_one(key, fn, args)
            if on_result is not None:
                on_result(key, result)
            results.append(result)
        return results

    def _run_one(self, key: str, fn, args: tuple):
        injector = self.faults
        attempt = 0
        last_kind: str | None = None
        while True:
            try:
                if injector.should(FaultKind.WORKER_CRASH, key,
                                   attempt=attempt,
                                   detail="worker crash (serial stand-in)"):
                    raise InjectedFault(
                        FaultKind.WORKER_CRASH,
                        f"injected worker crash on {key}")
                if injector.should(FaultKind.SHARE_TIMEOUT, key,
                                   attempt=attempt,
                                   detail="share deadline (serial stand-in)"):
                    raise InjectedFault(
                        FaultKind.SHARE_TIMEOUT,
                        f"injected share timeout on {key}")
                result = fn(*args)
            except InjectedFault as fault:
                injector.record(fault.kind, key, FaultAction.DETECTED,
                                detail=str(fault), attempt=attempt)
                if attempt >= self.recovery.max_retries:
                    raise FaultRecoveryExhausted(
                        f"share {key} still failing after "
                        f"{attempt + 1} attempts "
                        f"(max_retries={self.recovery.max_retries})"
                    ) from fault
                time.sleep(self.recovery.backoff_for(attempt))
                injector.record(fault.kind, key, FaultAction.RETRIED,
                                detail="re-running share in-process",
                                attempt=attempt)
                last_kind = fault.kind
                attempt += 1
                continue
            if last_kind is not None:
                injector.record(last_kind, key, FaultAction.RECOVERED,
                                detail=f"share succeeded on attempt "
                                       f"{attempt}", attempt=attempt)
            return result


class ProcessExecutor(BallExecutor):
    """Player shares on a process pool (one task per share).

    The pool is created lazily on first use and reused across queries, so
    the fork/spawn cost is paid once per engine, not once per run.  Results
    are gathered in submission order, which keeps merging bit-compatible
    with :class:`SerialExecutor`.

    The dispatch loop is *always* resilient (chaos merely makes failures
    likely): a dead worker breaks the whole pool, so the loop harvests
    whatever completed, discards the broken pool, respawns it after
    exponential backoff, and re-dispatches only the shares that never
    returned.  ``RecoveryPolicy.share_timeout`` adds a per-share deadline
    for hung workers.  Because every share is a pure function of its
    arguments, a re-dispatched share returns the same value it would have
    the first time.
    """

    backend = "process"

    def __init__(self, workers: int | None = None,
                 recovery: RecoveryPolicy | None = None) -> None:
        if workers is None:
            workers = max(os.cpu_count() or 1, 1)
        super().__init__(workers=workers, recovery=recovery)
        self._pool: ProcessPoolExecutor | None = None
        #: Pool respawns over this executor's lifetime (observable in
        #: tests and the fault report's detail strings).
        self.respawns = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # fork (where available) shares the already-imported modules
            # and the RFC 3526 constants with workers at no pickling cost.
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=context,
                                             initializer=_watch_parent,
                                             initargs=(os.getpid(),))
        return self._pool

    def _reset_pool(self) -> None:
        """Discard a broken/hung pool; the next dispatch respawns it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.respawns += 1

    def _run_all(self, calls: list[tuple[str, object, tuple]],
                 on_result=None) -> list:
        injector = self.faults
        policy = injector.policy if injector.active else None
        recovery = self.recovery
        results: list = [None] * len(calls)
        pending = list(range(len(calls)))
        attempts = [0] * len(calls)
        incident = 0
        while pending:
            pool = self._ensure_pool()
            futures: dict[int, Future] = {}
            for i in pending:
                key, fn, args = calls[i]
                if policy is not None:
                    # The worker decides the same pure coin flips; record
                    # the injection here because a killed child cannot.
                    if policy.decides(FaultKind.WORKER_CRASH, key,
                                      attempts[i]):
                        injector.record(FaultKind.WORKER_CRASH, key,
                                        FaultAction.INJECTED,
                                        detail="worker os._exit(66)",
                                        attempt=attempts[i])
                    elif policy.decides(FaultKind.SHARE_TIMEOUT, key,
                                        attempts[i]):
                        injector.record(FaultKind.SHARE_TIMEOUT, key,
                                        FaultAction.INJECTED,
                                        detail="worker hang injected",
                                        attempt=attempts[i])
                futures[i] = pool.submit(_chaos_call, policy, key,
                                         attempts[i], fn, *args)
            failed: dict[int, str] = {}
            pool_broken = False
            pool_hung = False
            for i in pending:
                key = calls[i][0]
                try:
                    results[i] = futures[i].result(
                        timeout=recovery.share_timeout)
                    if attempts[i] > 0:
                        injector.record(
                            FaultKind.WORKER_CRASH, key,
                            FaultAction.RECOVERED,
                            detail=f"share recovered on attempt "
                                   f"{attempts[i]}",
                            attempt=attempts[i])
                    if on_result is not None:
                        on_result(key, results[i])
                except InjectedFault as fault:
                    failed[i] = fault.kind
                    injector.record(fault.kind, key, FaultAction.DETECTED,
                                    detail=str(fault), attempt=attempts[i])
                except BrokenExecutor as exc:
                    # One dead worker breaks the whole pool; innocent
                    # still-pending shares land here too and are simply
                    # re-dispatched on the fresh pool.
                    pool_broken = True
                    failed[i] = FaultKind.WORKER_CRASH
                    injector.record(FaultKind.WORKER_CRASH, key,
                                    FaultAction.DETECTED,
                                    detail=type(exc).__name__,
                                    attempt=attempts[i])
                except FutureTimeoutError:
                    pool_hung = True
                    failed[i] = FaultKind.SHARE_TIMEOUT
                    injector.record(
                        FaultKind.SHARE_TIMEOUT, key, FaultAction.DETECTED,
                        detail=f"no result within {recovery.share_timeout}s",
                        attempt=attempts[i])
            still_pending: list[int] = []
            for i, kind in failed.items():
                attempts[i] += 1
                if attempts[i] > recovery.max_retries:
                    raise FaultRecoveryExhausted(
                        f"share {calls[i][0]} still failing after "
                        f"{attempts[i]} attempts "
                        f"(max_retries={recovery.max_retries})")
                still_pending.append(i)
            pending = still_pending
            if pending:
                if pool_broken or pool_hung:
                    self._reset_pool()
                delay = recovery.backoff_for(incident)
                incident += 1
                if delay > 0:
                    time.sleep(delay)
                for i in pending:
                    injector.record(
                        failed[i], calls[i][0], FaultAction.RETRIED,
                        detail=f"re-dispatch (pool respawn #{self.respawns}, "
                               f"backoff {delay:.3f}s)",
                        attempt=attempts[i] - 1)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def create_executor(backend: str, parallelism: int,
                    recovery: RecoveryPolicy | None = None) -> BallExecutor:
    """Build the configured backend (``PriloConfig.executor``)."""
    if backend == "serial":
        return SerialExecutor(recovery=recovery)
    if backend == "process":
        return ProcessExecutor(workers=parallelism, recovery=recovery)
    raise ValueError(f"unknown executor backend {backend!r}; "
                     f"choose one of {EXECUTOR_BACKENDS}")


def partition_shares(sequences, by_id: dict[int, Ball],
                     num_players: int) -> list[EvaluationShare]:
    """Deduplicate the Dealer's sequences into disjoint evaluation shares.

    Each unique ball id is assigned to the first sequence that mentions it
    (first-evaluation-wins; SSG's dummy duplicates are evaluated once, as
    in the serial engine).  The partition depends only on the sequences --
    public scheduling state -- never on ball contents or verdicts.
    """
    assigned: set[int] = set()
    shares: list[EvaluationShare] = []
    for seq in sequences:
        balls: list[Ball] = []
        for ball_id in seq.sequence:
            if ball_id in assigned:
                continue
            assigned.add(ball_id)
            balls.append(by_id[ball_id])
        shares.append(EvaluationShare(player=seq.player % max(num_players, 1),
                                      balls=tuple(balls)))
    return shares


__all__ = [
    "EXECUTOR_BACKENDS",
    "BallExecutor",
    "EvaluationShare",
    "PmShareOutcome",
    "PreparedBall",
    "PreparedShare",
    "ProcessExecutor",
    "SerialExecutor",
    "ShareOutcome",
    "create_executor",
    "eval_share_key",
    "partition_shares",
    "verify_prepared_kernel",
    "verify_share_key",
]
