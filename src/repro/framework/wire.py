"""The gateway <-> shard wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian length followed by a UTF-8 JSON object.
JSON (not pickle) keeps the boundary inspectable and language-neutral;
msgpack would shave bytes but is not in the baked toolchain, and frame
payloads are dominated by ball-id lists, not encoding overhead.

Frame vocabulary (``"t"`` discriminates):

* ``hello``   shard -> gateway on connect: shard id + serving stats.
* ``ping`` / ``pong``  gateway health checks.
* ``query``   gateway -> shard: one query + the membership under which
  the shard must compute its owned slice (``members``; optional
  ``prev_members`` marks a re-placement pass that evaluates only balls
  that newly moved here -- see :mod:`repro.framework.placement`).
* ``verdict`` shard -> gateway: the shard's slice of the answer plus its
  per-query counters (caches, crypto ops, journal) for the shard-aware
  metrics merge.
* ``drain`` / ``drained``  graceful shutdown handshake.
* ``error``   a request the shard could not parse/serve; carries detail.

Everything in a ``verdict`` is data the Dealer/SP boundary already
reveals to the coordinator in the single-engine layout (ball ids,
counts, decrypted match subgraphs destined for the user), so sharding
adds transport, not leakage surface.

Serialization of answers is *canonical*: :func:`canonical_answer` sorts
every id list and renders match subgraphs through the deterministic
:func:`repro.graph.io.graph_to_json`, so "byte-identical answers" is a
simple bytes comparison (:func:`answer_bytes`) between any two of: a
plain engine run, a 1-shard gateway, an N-shard gateway, or a gateway
that lost a shard mid-batch.
"""

from __future__ import annotations

import asyncio
import json

from repro.graph.io import graph_from_json, graph_to_json
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query, Semantics

#: Upper bound on a single frame (64 MiB).  Far above any verdict at the
#: paper's scales; a length prefix beyond it means a corrupt or hostile
#: peer, and failing fast beats allocating whatever the prefix claims.
MAX_FRAME_BYTES = 64 << 20

_LEN_BYTES = 4


class WireError(RuntimeError):
    """Malformed frame, oversized frame, or an unparsable payload."""


def encode_frame(payload: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON."""
    body = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    return len(body).to_bytes(_LEN_BYTES, "big") + body


def decode_frame(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"unparsable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(f"frame payload must be an object, "
                        f"got {type(payload).__name__}")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-frame") from exc
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame "
                        f"(cap {MAX_FRAME_BYTES})")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# Query serialization
# ----------------------------------------------------------------------
def query_to_jsonable(query: Query) -> dict:
    """A query as wire data: the pattern's canonical JSON, the vertex
    order (repr-encoded, like every graph payload in :mod:`repro.graph.io`),
    the semantics and the diameter.  Round-trips to a query with an
    identical enumeration signature and identical answers."""
    return {
        "pattern": graph_to_json(query.pattern),
        "vertex_order": [repr(v) for v in query.vertex_order],
        "semantics": query.semantics.value,
        "diameter": query.diameter,
    }


def query_from_jsonable(payload: dict) -> Query:
    import ast

    pattern = graph_from_json(payload["pattern"])
    order = tuple(ast.literal_eval(v) for v in payload["vertex_order"])
    return Query(pattern=pattern,
                 semantics=Semantics(payload["semantics"]),
                 vertex_order=order,
                 diameter=int(payload["diameter"]))


# ----------------------------------------------------------------------
# Canonical answers (the byte-identity contract)
# ----------------------------------------------------------------------
def _match_json(sub) -> str:
    if isinstance(sub, LabeledGraph):
        return graph_to_json(sub)
    return str(sub)


def canonical_answer(candidate_ids, pm_positive_ids, verified_ids,
                     matches) -> dict:
    """The deterministic, merge-stable form of one query's answer.

    ``matches`` maps ball id -> list of match subgraphs, each either a
    :class:`LabeledGraph` (engine side) or an already-canonical graph
    JSON string (wire side); both normalize to the same sorted strings.
    """
    canon_matches = {
        str(ball_id): sorted(_match_json(sub) for sub in subs)
        for ball_id, subs in matches.items()
    }
    return {
        "candidates": sorted(int(b) for b in candidate_ids),
        "pm_positive": sorted(int(b) for b in pm_positive_ids),
        "verified": sorted(int(b) for b in verified_ids),
        "matches": {k: canon_matches[k] for k in sorted(canon_matches,
                                                        key=int)},
        "num_matches": sum(len(v) for v in canon_matches.values()),
    }


def canonical_answer_of_result(result) -> dict:
    """:func:`canonical_answer` for a :class:`~repro.framework.prilo.QueryResult`."""
    return canonical_answer(result.candidate_ids, result.pm_positive_ids,
                            result.verified_ids, result.matches)


def answer_bytes(answer: dict) -> bytes:
    """The bytes two answers must agree on exactly."""
    return json.dumps(answer, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
def verdict_payload(qid: int, shard_id: int, outcome, *,
                    busy: float | None = None,
                    cert: dict | None = None) -> dict:
    """One shard's reply for one query: its answer slice plus counters.

    ``outcome`` is the :class:`~repro.framework.server.QueryOutcome` of
    the shard-local :class:`~repro.framework.server.QueryStream`.
    ``busy`` overrides the reported busy seconds -- shards pass their
    per-query CPU time so the gateway's critical-path metric stays
    meaningful on hosts with fewer cores than shards (wall latency there
    includes scheduler wait, which grows with fleet size).
    ``cert`` attaches the shard's result certificate
    (:class:`repro.framework.verify.Certifier`) for untrusted-shard
    gateways.
    """
    payload = {
        "t": "verdict",
        "qid": qid,
        "shard": shard_id,
        "status": outcome.status,
        "detail": outcome.detail,
        "busy": outcome.latency_seconds if busy is None else busy,
    }
    result = outcome.result
    # OK outcomes carry their RunMetrics on the result; only aborted runs
    # (deadline) stash partial metrics on the outcome itself.
    metrics = outcome.metrics
    if metrics is None and result is not None:
        metrics = result.metrics
    if metrics is not None:
        payload["caches"] = {name: stats.as_dict()
                             for name, stats in metrics.caches.items()}
        payload["ops"] = metrics.ops.as_dict()
        payload["journal"] = metrics.journal.as_dict()
    if cert is not None:
        payload["cert"] = cert
    if result is not None:
        payload.update({
            "candidates": sorted(int(b) for b in result.candidate_ids),
            "pm_positive": sorted(int(b) for b in result.pm_positive_ids),
            "verified": sorted(int(b) for b in result.verified_ids),
            "matches": {str(ball_id): sorted(graph_to_json(sub)
                                             for sub in subs)
                        for ball_id, subs in result.matches.items()},
        })
    return payload


__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "answer_bytes",
    "canonical_answer",
    "canonical_answer_of_result",
    "decode_frame",
    "encode_frame",
    "query_from_jsonable",
    "query_to_jsonable",
    "read_frame",
    "verdict_payload",
    "write_frame",
]
