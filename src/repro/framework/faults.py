"""Seeded fault injection and the recovery policy for the online path.

The paper's deployment (a semi-honest SP running k Player servers, an SGX
enclave per Player, a Dealer holding outsourced artifacts) is exactly the
setting where partial failure is the norm: worker processes die, enclaves
fail attestation or run out of EPC, sealed payloads are corrupted in
transit, and on-disk artifact packs rot or are tampered with.  This module
supplies the two halves every recovery site shares:

* :class:`ChaosPolicy` -- a *deterministic, seeded* fault schedule.  Every
  injection decision is a pure function of ``(seed, kind, key, attempt)``
  (a SHA-256 coin flip), so the same policy replays the same fault
  schedule on any backend, in any process, in any order -- which is what
  makes "answers are byte-identical to a fault-free serial run under any
  injected schedule" a testable statement rather than a hope.
* :class:`RecoveryPolicy` -- the explicit knobs of the recovery layer:
  retry budget and exponential backoff, the per-share deadline, and the
  three degradation switches (enclave down -> twiglet-only pruning, Player
  dropout -> Dealer re-plans onto survivors, tampered store pack ->
  quarantine and recompute).

:class:`FaultInjector` binds a policy to a :class:`FaultReport` event log;
the engine threads one injector per run through the executor, the roles,
the TEE channel, and the artifact store, and surfaces the resulting events
as ``RunMetrics.faults``.

Soundness of degradation: every pruning message only ever *discards*
provably spurious balls (Props. 3-6), so skipping a pruning method keeps
strictly more candidates and the final match set is unchanged.  Likewise
re-planning a dropped Player's balls onto survivors changes scheduling
only -- per-ball evaluation is a pure function of ``(message, ball)``.
See DESIGN.md ("Fault model and recovery").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


class FaultKind:
    """The injectable (and detectable) fault classes of the pipeline."""

    #: A pool worker dies mid-share (``BrokenProcessPool`` on the SP).
    WORKER_CRASH = "worker_crash"
    #: A share hangs past its deadline (stuck worker, lost reply).
    SHARE_TIMEOUT = "share_timeout"
    #: An enclave's attestation report fails verification.
    ENCLAVE_ATTESTATION = "enclave_attestation"
    #: An enclave ECALL aborts (EPC exhaustion / enclave crash).
    ENCLAVE_MEMORY = "enclave_memory"
    #: A sealed user->enclave payload is corrupted in transit.
    CHANNEL_CORRUPTION = "channel_corruption"
    #: An artifact-store pack byte is flipped (tamper / bit rot).
    STORE_TAMPER = "store_tamper"
    #: A Player server disappears between sequencing and evaluation.
    PLAYER_DROPOUT = "player_dropout"
    #: Detection-only label: a store found stale at engine setup (never
    #: injected -- staleness comes from the manifest check).
    STORE_STALE = "store_stale"
    #: The whole serving process dies uncleanly (``SIGKILL``), exactly as
    #: an OOM kill or host restart would -- exercised by the crash-resume
    #: harness at journal checkpoint boundaries.  Opt-in only: it is
    #: *not* part of :data:`INJECTABLE_KINDS`, so a plain
    #: ``ChaosPolicy(fault_rate=...)`` never kills the process.
    KILL_PROCESS = "kill_process"
    #: Detection-only label: a journal record failed its keyed digest on
    #: replay (never injected -- tampering comes from the disk bytes).
    JOURNAL_TAMPER = "journal_tamper"
    #: A malicious SP shard fabricates or mutates its answer slice
    #: (extra matches, altered verified set) without holding the owner's
    #: verification key.  Injected only at the shard boundary by a
    #: *rogue* policy (see :mod:`repro.framework.shard`); caught by the
    #: merge-time certificate verifier.
    FORGE_RESULT = "forge_result"
    #: A lazy SP shard silently omits a candidate ball from its slice
    #: (skipped evaluation sold as a complete answer).  Caught by the
    #: completeness check against the committed candidate catalog.
    DROP_BALL = "drop_ball"
    #: A malicious SP shard replays a previously valid verdict for a
    #: different query/membership.  Caught because certificates bind the
    #: query id and the membership under which the slice was computed.
    REPLAY_STALE = "replay_stale"


#: The malicious-SP tier: never part of :data:`INJECTABLE_KINDS` (a
#: plain ``ChaosPolicy(fault_rate=...)`` stays semi-honest, mirroring
#: the ``KILL_PROCESS`` opt-in) -- these kinds only act when named in a
#: rogue-shard policy, and they model an adversary *without* the
#: owner-derived verification key.
MALICIOUS_KINDS = (
    FaultKind.FORGE_RESULT,
    FaultKind.DROP_BALL,
    FaultKind.REPLAY_STALE,
)


#: Every kind :class:`ChaosPolicy` injects by default (``STORE_STALE``
#: and ``JOURNAL_TAMPER`` are detection-only; ``KILL_PROCESS`` must be
#: requested explicitly because only journal-backed runs survive it).
INJECTABLE_KINDS = (
    FaultKind.WORKER_CRASH,
    FaultKind.SHARE_TIMEOUT,
    FaultKind.ENCLAVE_ATTESTATION,
    FaultKind.ENCLAVE_MEMORY,
    FaultKind.CHANNEL_CORRUPTION,
    FaultKind.STORE_TAMPER,
    FaultKind.PLAYER_DROPOUT,
)

#: Kinds accepted by ``ChaosPolicy.kinds`` (the defaults plus the opt-in
#: process kill and the opt-in malicious-SP tier).
VALID_KINDS = INJECTABLE_KINDS + (FaultKind.KILL_PROCESS,) + MALICIOUS_KINDS


class FaultAction:
    """What a :class:`FaultEvent` records about one fault's lifecycle."""

    INJECTED = "injected"
    DETECTED = "detected"
    RETRIED = "retried"
    RECOVERED = "recovered"
    DEGRADED = "degraded"


class InjectedFault(RuntimeError):
    """A chaos-injected failure (crash/timeout stand-in), carrying its
    fault kind so the recovery site can attribute the detection event.

    Constructed as ``InjectedFault(kind, message)`` so the exception
    survives pickling across process boundaries (``args`` round-trips).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(kind, message)
        self.kind = kind
        self.message = message

    def __str__(self) -> str:
        return self.message


class FaultRecoveryExhausted(RuntimeError):
    """A share kept failing past the configured retry budget."""


@dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic, seeded fault-injection schedule.

    ``decides(kind, key, attempt)`` is a pure function: a SHA-256 hash of
    ``(seed, kind, key, attempt)`` compared against ``fault_rate``.  Keys
    are stable protocol coordinates ("eval share 2", "enclave 1", "store
    ball 17"), so the schedule is identical whether shares run serially,
    on a process pool, or are re-dispatched after a crash.

    ``faulted_attempts`` bounds how many retries of the same key keep
    faulting: with the default 1 only the first attempt can fail, so any
    recovery loop with at least one retry converges.  Raise it (up to or
    past ``RecoveryPolicy.max_retries``) to exercise retry exhaustion.
    """

    seed: int = 0
    fault_rate: float = 0.0
    kinds: tuple[str, ...] = INJECTABLE_KINDS
    faulted_attempts: int = 1
    #: How long an injected hang sleeps in the worker before giving up --
    #: set it above ``RecoveryPolicy.share_timeout`` to trip the deadline.
    timeout_sleep_seconds: float = 0.25

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(
                f"ChaosPolicy.seed must be an int (the fault schedule is "
                f"derived from it); got {self.seed!r}")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(
                f"ChaosPolicy.fault_rate must be in [0, 1] (a per-decision "
                f"probability); got {self.fault_rate!r}")
        unknown = set(self.kinds) - set(VALID_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)}; choose from "
                f"{list(VALID_KINDS)}")
        if self.faulted_attempts < 1:
            raise ValueError("faulted_attempts must be >= 1")
        if self.timeout_sleep_seconds <= 0:
            raise ValueError("timeout_sleep_seconds must be positive")

    @classmethod
    def disabled(cls) -> "ChaosPolicy":
        """The null schedule (never injects)."""
        return cls(fault_rate=0.0)

    @property
    def active(self) -> bool:
        return self.fault_rate > 0.0 and bool(self.kinds)

    def decides(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Whether to inject ``kind`` at protocol coordinate ``key`` on
        retry number ``attempt`` -- deterministic, order-independent."""
        if kind not in self.kinds or self.fault_rate <= 0.0:
            return False
        if attempt >= self.faulted_attempts:
            return False
        digest = hashlib.sha256(
            f"chaos:{self.seed}:{kind}:{key}:{attempt}"
            .encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") < self.fault_rate * 2 ** 64


@dataclass(frozen=True)
class RecoveryPolicy:
    """The recovery layer's explicit knobs (retries, deadlines,
    degradation switches).  Defaults favour availability: retry crashed
    shares, drop BF pruning when the enclave is down, re-plan around
    dropped Players, quarantine tampered packs -- but *raise* on a store
    found stale at setup (serving wrong balls silently is worse than
    failing loudly; opt in to the recompute fallback explicitly)."""

    #: Re-dispatches per share (and pool respawns per fan-out) before
    #: :class:`FaultRecoveryExhausted` is raised.
    max_retries: int = 3
    #: First respawn delay; grows by ``backoff_factor`` per incident.
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    #: Per-share deadline for the process backend (None: no deadline).
    share_timeout: float | None = None
    #: Enclave attestation/ECALL failure -> continue twiglet-only
    #: (Sec. 4.2 needs no TEE); BF pruning only ever discards spurious
    #: balls, so the match set is unchanged.
    degrade_bf: bool = True
    #: Player dropout -> the Dealer re-plans orphaned balls across the
    #: surviving Players' sequences.
    replan_dropouts: bool = True
    #: Tampered/corrupt store pack detected online -> quarantine the pack
    #: and recompute from the live graph.
    quarantine_store: bool = True
    #: Store stale at engine setup -> rebuild in-process instead of
    #: raising.  Off by default: staleness usually means misconfiguration.
    recompute_on_stale_store: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.share_timeout is not None and self.share_timeout <= 0:
            raise ValueError(
                f"share_timeout must be positive seconds or None "
                f"(no deadline); got {self.share_timeout!r}")

    def backoff_for(self, incident: int) -> float:
        """Backoff before respawn number ``incident`` (0-based)."""
        return self.backoff_seconds * self.backoff_factor ** incident


@dataclass
class FaultEvent:
    """One injected/detected/recovered fault or degradation decision."""

    kind: str
    key: str
    action: str
    detail: str = ""
    attempt: int = 0

    def as_dict(self) -> dict:
        return {"kind": self.kind, "key": self.key, "action": self.action,
                "detail": self.detail, "attempt": self.attempt}


@dataclass
class FaultReport:
    """Every fault event of one run, with the counters benchmarks and the
    CLI summary print (``RunMetrics.faults``)."""

    events: list[FaultEvent] = field(default_factory=list)

    def record(self, kind: str, key: str, action: str, detail: str = "",
               attempt: int = 0) -> None:
        self.events.append(FaultEvent(kind=kind, key=key, action=action,
                                      detail=detail, attempt=attempt))

    def extend(self, events: list[FaultEvent]) -> None:
        self.events.extend(events)

    def count(self, action: str) -> int:
        return sum(1 for e in self.events if e.action == action)

    @property
    def injected(self) -> int:
        return self.count(FaultAction.INJECTED)

    @property
    def detected(self) -> int:
        return self.count(FaultAction.DETECTED)

    @property
    def retries(self) -> int:
        return self.count(FaultAction.RETRIED)

    @property
    def recovered(self) -> int:
        return self.count(FaultAction.RECOVERED)

    @property
    def degraded(self) -> int:
        return self.count(FaultAction.DEGRADED)

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __bool__(self) -> bool:
        return bool(self.events)

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "detected": self.detected,
            "retries": self.retries,
            "recovered": self.recovered,
            "degraded": self.degraded,
            "by_kind": self.by_kind(),
            "events": [e.as_dict() for e in self.events],
        }

    def summary_line(self) -> str:
        return (f"injected={self.injected} detected={self.detected} "
                f"retries={self.retries} recovered={self.recovered} "
                f"degraded={self.degraded}")


class FaultInjector:
    """A :class:`ChaosPolicy` bound to an event log.

    The engine builds one injector per run (recording straight into that
    run's ``RunMetrics.faults``) and threads it through every recovery
    site.  A ``None`` policy yields the free null injector -- recovery
    sites stay installed but never inject, so *real* faults (a genuinely
    crashed worker, a genuinely tampered pack) flow through the same
    detect/retry/degrade paths chaos exercises.
    """

    def __init__(self, policy: ChaosPolicy | None = None,
                 report: FaultReport | None = None) -> None:
        self.policy = policy if policy is not None else ChaosPolicy.disabled()
        self.report = report if report is not None else FaultReport()

    @property
    def active(self) -> bool:
        return self.policy.active

    def should(self, kind: str, key: str, attempt: int = 0,
               detail: str = "") -> bool:
        """Decide-and-log: True means the caller must now fail as
        ``kind`` would (the injection event is already recorded)."""
        if not self.policy.decides(kind, key, attempt):
            return False
        self.record(kind, key, FaultAction.INJECTED, detail=detail,
                    attempt=attempt)
        return True

    def record(self, kind: str, key: str, action: str, detail: str = "",
               attempt: int = 0) -> None:
        self.report.record(kind, key, action, detail=detail, attempt=attempt)

    def corrupt(self, kind: str, key: str, blob: bytes,
                attempt: int = 0) -> bytes:
        """Return ``blob`` with one byte flipped when the schedule says to
        tamper with this coordinate; the pristine blob otherwise."""
        if not blob or not self.should(kind, key, attempt=attempt,
                                       detail=f"flipped byte in {len(blob)}B "
                                              f"payload"):
            return blob
        tampered = bytearray(blob)
        tampered[len(tampered) // 2] ^= 0xFF
        return bytes(tampered)


__all__ = [
    "ChaosPolicy",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultRecoveryExhausted",
    "FaultReport",
    "INJECTABLE_KINDS",
    "InjectedFault",
    "MALICIOUS_KINDS",
    "RecoveryPolicy",
    "VALID_KINDS",
]
