"""Multi-query batch serving with cross-query CMM reuse.

``Prilo.run`` is the faithful single-query pipeline: enumeration streams
straight into verification and nothing survives the call.  A serving
deployment answers *streams* of queries against one outsourced graph, and
most of the SP-side work is re-derivable: Alg. 1's enumeration depends
only on the query's *label view* (the ordered ``V_Q`` labels, ``d_Q`` and
the semantics -- exactly the plaintext fields of the encrypted query
message), never on the encrypted edges.  Two queries with the same label
view induce identical CMM sets on every ball.

:class:`QueryBatchEngine` exploits that by interposing a
:class:`CMMCache` between enumeration and verification:

* on first contact with a ``(ball, signature)`` pair the enumeration runs
  once and is distilled into a :class:`~repro.framework.executor.PreparedBall`
  -- the *distinct* projected 0/1 patterns plus the per-CMM pattern index;
* every query (including the first!) then verifies from the prepared form:
  one chunked product per distinct pattern instead of one per CMM.  Balls
  repeat projected patterns heavily (measurements in DESIGN.md show >5x
  CMM-to-pattern redundancy on the paper's datasets), so this is the main
  speedup even at batch size 1;
* later queries in the same signature group skip enumeration entirely
  (a cache hit).

Correctness: a chunked product is a pure function of its factor multiset
and the public chunk layout, and the factor list of Alg. 2 is a function
of the projected pattern alone.  Replicating each pattern's chunk list
per CMM in enumeration order therefore feeds ``aggregate_items`` the
exact ciphertext multiset the streaming kernel produces -- batch results
are *value-identical* to independent ``run`` calls (asserted by
``tests/test_server.py`` across semantics, pruning and backends).

Obliviousness: the cache key and everything inside a prepared ball are
functions of the ball's plaintext adjacency (SP-owned) and the public
label view.  No ciphertext value, verdict, or pruning outcome ever flows
into cache state, and per query the SP still performs one verification
pass per scheduled ball.  See DESIGN.md ("Batch serving").
"""

from __future__ import annotations

import logging
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.enumeration import count_cmm_upper_bound, iter_cmms
from repro.framework.executor import PreparedBall
from repro.crypto.ops import OpCounter
from repro.framework.metrics import CacheStats, JournalCounters, RunMetrics
from repro.framework.wire import canonical_answer_of_result
from repro.framework.prilo import (
    BallBudgetExceeded,
    DeadlineExceeded,
    Prilo,
    QueryResult,
)
from repro.graph.ball import Ball, BallIndex
from repro.graph.delta import (
    GraphDelta,
    dirty_ball_keys,
    touched_min_distances,
)
from repro.graph.matrix import ProjectionCache
from repro.graph.query import Query, QueryLabelView, Semantics
from repro.observability.spans import ROLE_SP
from repro.storage.journal import (
    JournalError,
    RecordType,
    RunJournal,
    answer_digest,
    config_fingerprint,
    query_idempotency_key,
)
from repro.storage.store import graph_digest

logger = logging.getLogger(__name__)

#: Default CMM cache capacity, in CMM units (see ``PreparedBall.weight``).
#: 512k units is ~a few hundred MB of tuple data at the paper's query
#: sizes -- far above any tier-1 workload, so eviction only engages on
#: serving workloads with genuinely large working sets.
DEFAULT_CMM_CACHE_WEIGHT = 512_000


def enumeration_signature(query: Query, *, enumeration_limit: int,
                          cmm_bound_bypass: int) -> tuple:
    """The inputs Alg. 1 actually reads: ordered ``V_Q`` labels, ``d_Q``,
    the matching semantics, and the engine's enumeration bounds.

    Two queries with equal signatures induce identical CMM streams on
    every ball -- the encrypted edges never participate.  The bounds are
    part of the signature because truncation/bypass verdicts depend on
    them.
    """
    labels = tuple(query.label(u) for u in query.vertex_order)
    return (labels, query.diameter, query.semantics,
            enumeration_limit, cmm_bound_bypass)


def signature_of_view(view: QueryLabelView, *, enumeration_limit: int,
                      cmm_bound_bypass: int) -> tuple:
    """:func:`enumeration_signature` computed from the SP-side label view.

    ``message.vertex_labels`` is the query's labels in ``vertex_order``,
    so this produces the exact tuple :func:`enumeration_signature` builds
    from the query -- the engine keys the cache with this, the batch
    server groups with that, and they must agree.
    """
    return (tuple(view.labels), view.diameter, view.semantics,
            enumeration_limit, cmm_bound_bypass)


def prepare_ball(view: QueryLabelView, ball: Ball, *,
                 enumeration_limit: int,
                 cmm_bound_bypass: int) -> PreparedBall:
    """Run Alg. 1 once and distill the CMM stream into pattern groups.

    Mirrors the decision structure of
    :func:`repro.framework.roles.evaluate_ball_kernel` exactly: the bound
    bypass is checked before any enumeration (``enumerated == 0``), and
    producing a ``limit+1``-th CMM truncates with ``enumerated == limit``
    -- so the prepared verdicts agree with the streaming kernel's.

    CMMs are grouped by their packed off-diagonal selection mask
    (:meth:`ProjectionCache.project_mask`) -- one int comparison per CMM
    instead of a nested-tuple build.  The mask ignores the diagonal, but
    projections keep the diagonal 0 by construction, so mask equality and
    pattern equality coincide; the explicit row tuples (the naive
    verification path's input) are materialized only once per distinct
    pattern.
    """
    if count_cmm_upper_bound(view, ball) > cmm_bound_bypass:
        return PreparedBall(ball_id=ball.ball_id, enumerated=0,
                            truncated=False, bound_bypassed=True,
                            patterns=(), pattern_of_cmm=())
    injective = view.semantics is Semantics.SUB_ISO
    projection_cache = ProjectionCache(ball.graph)
    patterns: list[tuple[tuple[int, ...], ...]] = []
    masks: list[int] = []
    index_of: dict[int, int] = {}
    order: list[int] = []
    enumerated = 0
    for cmm in iter_cmms(view, ball, injective=injective):
        if enumerated >= enumeration_limit:
            return PreparedBall(ball_id=ball.ball_id, enumerated=enumerated,
                                truncated=True, bound_bypassed=False,
                                patterns=(), pattern_of_cmm=())
        mask = projection_cache.project_mask(cmm.assignment)
        index = index_of.get(mask)
        if index is None:
            rows = cmm.project_rows(projection_cache)
            pattern = tuple(tuple(int(v) for v in row) for row in rows)
            index = len(patterns)
            index_of[mask] = index
            patterns.append(pattern)
            masks.append(mask)
        order.append(index)
        enumerated += 1
    return PreparedBall(ball_id=ball.ball_id, enumerated=enumerated,
                        truncated=False, bound_bypassed=False,
                        patterns=tuple(patterns),
                        pattern_of_cmm=tuple(order),
                        masks=tuple(masks))


class CMMCache:
    """Bounded LRU cache of :class:`PreparedBall` keyed by
    ``(ball_id, enumeration signature)``.

    The size bound is expressed in CMM units (``PreparedBall.weight``:
    per-CMM index entries plus distinct patterns) rather than entry
    count, so one giant ball cannot silently dominate memory.  Eviction
    is least-recently-used and never evicts the entry being inserted.
    Counters are exposed through a shared :class:`CacheStats`, the same
    hook the pad-power and decrypt caches report through.
    """

    def __init__(self, max_weight: int = DEFAULT_CMM_CACHE_WEIGHT,
                 stats: CacheStats | None = None) -> None:
        if max_weight < 1:
            raise ValueError("CMM cache weight bound must be positive")
        self.max_weight = max_weight
        self.stats = stats if stats is not None else CacheStats()
        self.stats.capacity = max_weight
        self._entries: "OrderedDict[tuple, PreparedBall]" = OrderedDict()
        self._weight = 0
        #: Wall-clock seconds spent building entries, per ball id, for the
        #: most recent ``prepare`` call (0.0 on hits).  Read by the engine
        #: to account enumeration cost into per-ball evaluation cost.
        self.last_build_seconds = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def weight(self) -> int:
        return self._weight

    def prepare(self, view: QueryLabelView, ball: Ball, *,
                enumeration_limit: int,
                cmm_bound_bypass: int) -> PreparedBall:
        """Return the ball's prepared form, enumerating on first contact."""
        signature = signature_of_view(
            view, enumeration_limit=enumeration_limit,
            cmm_bound_bypass=cmm_bound_bypass)
        key = (ball.ball_id, signature)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.last_build_seconds = 0.0
            self._update_fill()
            return entry
        self.stats.misses += 1
        started = time.perf_counter()
        entry = prepare_ball(view, ball,
                             enumeration_limit=enumeration_limit,
                             cmm_bound_bypass=cmm_bound_bypass)
        self.last_build_seconds = time.perf_counter() - started
        self._entries[key] = entry
        self._weight += entry.weight
        while self._weight > self.max_weight and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._weight -= evicted.weight
            self.stats.evictions += 1
        self._update_fill()
        return entry

    def _update_fill(self) -> None:
        self.stats.entries = len(self._entries)
        self.stats.weight = self._weight

    def invalidate_balls(self, ball_ids) -> int:
        """Drop every cached prepared form of the given balls (all
        signatures).  Called after a delta: a dirty ball's adjacency
        changed, so its enumerations -- cached under *every* signature --
        describe a ball that no longer exists.  Returns the number of
        entries dropped (counted as evictions)."""
        targets = set(ball_ids)
        dropped = 0
        for key in [k for k in self._entries if k[0] in targets]:
            entry = self._entries.pop(key)
            self._weight -= entry.weight
            self.stats.evictions += 1
            dropped += 1
        if dropped:
            self._update_fill()
        return dropped


class QueryStatus:
    """Admission-control vocabulary for one submitted query."""

    #: Ran to completion (possibly replayed from the journal).
    OK = "ok"
    #: Shed at admission: the batch exceeded the queue bound.
    REJECTED_OVERLOAD = "rejected(overload)"
    #: Shed pre-evaluation: candidate balls exceeded ``config.ball_budget``.
    REJECTED_BALL_BUDGET = "rejected(ball_budget)"
    #: Aborted mid-run by the per-query wall-clock deadline.
    DEADLINE_EXCEEDED = "deadline_exceeded"
    #: Never started: a graceful drain (SIGTERM/SIGINT) was requested.
    DRAINED = "drained"
    #: Gateway-side verdict: every covering slice either failed its
    #: result certificate or had no honest shard left to serve it, so
    #: the (possibly forged) answer was withheld from the user.
    FORGED = "forged(result)"


@dataclass
class QueryOutcome:
    """What happened to one submitted query -- one entry per submission,
    in submission order, whatever its fate.  ``result`` is None for every
    non-``OK`` status; ``metrics`` carries the partial run state of a
    deadline-exceeded query (phases completed before the abort, fault and
    journal counters) so callers observe *where* the budget ran out."""

    index: int
    status: str
    result: QueryResult | None = None
    latency_seconds: float = 0.0
    detail: str = ""
    metrics: RunMetrics | None = None
    #: Journal idempotency key ("" when the batch is not journaled).
    query_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == QueryStatus.OK


@dataclass
class AdmissionStats:
    """Admission-control counters of one ``serve`` call."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    shed_overload: int = 0
    shed_ball_budget: int = 0
    deadline_exceeded: int = 0
    drained: int = 0
    #: Queries whose committed answer was replayed and cross-checked
    #: against the journal instead of recomputed from scratch.
    replayed_commits: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed_overload": self.shed_overload,
            "shed_ball_budget": self.shed_ball_budget,
            "deadline_exceeded": self.deadline_exceeded,
            "drained": self.drained,
            "replayed_commits": self.replayed_commits,
        }

    def summary_line(self) -> str:
        return (f"submitted={self.submitted} admitted={self.admitted} "
                f"completed={self.completed} "
                f"shed={self.shed_overload + self.shed_ball_budget} "
                f"deadline={self.deadline_exceeded} drained={self.drained}")


@dataclass
class BatchReport:
    """What one ``serve`` call did, for benchmarks and the CLI."""

    results: list[QueryResult]
    #: Per-query end-to-end latency, in submission order.
    latencies: list[float]
    #: Wall-clock of the whole batch.
    makespan: float
    #: Signature -> indices of the queries sharing it (submission order).
    signature_groups: dict[tuple, list[int]] = field(default_factory=dict)
    #: CMM cache counters accumulated over this batch.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: One entry per *submitted* query (``results`` holds completed runs
    #: only; shed/drained/deadline queries appear here, not there).
    outcomes: list[QueryOutcome] = field(default_factory=list)
    #: Admission-control counters for the batch.
    admission: AdmissionStats = field(default_factory=AdmissionStats)
    #: Journal counters merged across every run of the batch.
    journal: JournalCounters = field(default_factory=JournalCounters)

    @property
    def distinct_signatures(self) -> int:
        return len(self.signature_groups)

    def summary(self) -> dict:
        report = {
            "queries": len(self.results),
            "distinct_signatures": self.distinct_signatures,
            "makespan_seconds": self.makespan,
            "latency_seconds": list(self.latencies),
            "mean_latency_seconds": (sum(self.latencies) / len(self.latencies)
                                     if self.latencies else 0.0),
            "cmm_cache": self.cache_stats.as_dict(),
            "matches": [r.num_matches for r in self.results],
        }
        if self.outcomes:
            report["statuses"] = [o.status for o in self.outcomes]
            report["admission"] = self.admission.as_dict()
        if self.journal:
            report["journal"] = self.journal.as_dict()
        ops = OpCounter()
        for result in self.results:
            ops.merge(getattr(result.metrics, "ops", None))
        if ops:
            report["crypto_ops"] = ops.as_dict()
        return report


@dataclass
class StandingQuery:
    """One registered continuous query and its last known match set.

    ``matches`` is the canonical per-ball match map (ball id string ->
    sorted canonical match JSON) of :func:`canonical_answer` -- the
    merge-stable form the gateway already compares answers in.  After a
    delta, only the affected balls are re-evaluated and their slice of
    this map is replaced; the query *re-notifies* exactly when the merged
    map differs from the previous one.
    """

    name: str
    query: Query
    matches: dict[str, list[str]] = field(default_factory=dict)
    #: Times the match set changed (registration does not count).
    notifications: int = 0
    #: Delta-driven partial re-evaluations performed.
    evaluations: int = 0

    @property
    def num_matches(self) -> int:
        return sum(len(v) for v in self.matches.values())


@dataclass(frozen=True)
class StandingNotice:
    """What one delta did to one standing query."""

    name: str
    changed: bool
    num_matches: int

    def as_dict(self) -> dict:
        return {"name": self.name, "changed": self.changed,
                "num_matches": self.num_matches}


@dataclass
class DeltaApplication:
    """The outcome of one :meth:`QueryBatchEngine.apply_delta`."""

    #: Ball ids whose content changed (survivors re-encrypted).
    dirty_ball_ids: tuple[int, ...]
    added_ball_ids: tuple[int, ...]
    removed_ball_ids: tuple[int, ...]
    #: CMM cache entries dropped by the invalidation sweep.
    cache_invalidated: int
    #: The store-side report, or None for a no-store engine.
    store_report: object | None = None
    notices: list[StandingNotice] = field(default_factory=list)

    @property
    def notified(self) -> int:
        return sum(1 for n in self.notices if n.changed)

    def as_dict(self) -> dict:
        payload = {
            "dirty": len(self.dirty_ball_ids),
            "added": len(self.added_ball_ids),
            "removed": len(self.removed_ball_ids),
            "cache_invalidated": self.cache_invalidated,
            "standing": len(self.notices),
            "notified": self.notified,
            "notices": [n.as_dict() for n in self.notices],
        }
        if self.store_report is not None:
            payload["store"] = self.store_report.as_dict()
        return payload


class QueryBatchEngine:
    """Serves query batches over one :class:`Prilo` engine.

    Queries execute strictly in submission order -- ``prepare_query``
    consumes the user's CGBE randomness, so order preservation is what
    makes batch results bit-identical to the same queries run alone.
    Signature grouping is purely logical: it decides cache keys and the
    report's grouping, not execution order, and it never changes what the
    SP observes for any individual query.
    """

    def __init__(self, engine: Prilo,
                 cache: CMMCache | None = None,
                 max_cache_weight: int = DEFAULT_CMM_CACHE_WEIGHT,
                 journal: RunJournal | None = None,
                 queue_bound: int | None = None) -> None:
        if queue_bound is not None and (isinstance(queue_bound, bool)
                                        or queue_bound < 1):
            raise ValueError("queue_bound must be a positive int or None")
        self.engine = engine
        self.cache = cache if cache is not None else CMMCache(max_cache_weight)
        #: Optional :class:`repro.storage.RunJournal`.  When set, every
        #: batch admission, query begin/commit and executor-share result
        #: is checkpointed durably; a journal file left behind by a killed
        #: process is replayed at the next ``serve`` and only unjournaled
        #: work is re-evaluated.
        self.journal = journal
        #: Admission bound: queries past this many per batch are shed
        #: deterministically (the earliest ``queue_bound`` run, the rest
        #: are rejected up front with ``REJECTED(overload)`` -- they never
        #: wait, so overload can't stall the queries that were admitted).
        self.queue_bound = queue_bound
        self._drain = threading.Event()
        #: Registered standing queries, partially re-evaluated (dirty
        #: balls only) after every applied delta.
        self._standing: list[StandingQuery] = []

    def close(self) -> None:
        """Shut down the underlying engine's executor (idempotent) -- a
        failed batch must not leak pool worker processes."""
        self.engine.close()

    def __enter__(self) -> "QueryBatchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- graceful drain -------------------------------------------------
    def request_drain(self) -> None:
        """Stop admitting new queries; the in-flight query finishes (its
        shares are already being checkpointed) and ``serve`` returns with
        the remaining queries marked ``drained``."""
        self._drain.set()

    def _on_drain_signal(self, signum: int, frame: object) -> None:
        logger.warning("received signal %d: draining batch (in-flight "
                       "query checkpoints, the rest are not admitted)",
                       signum)
        self.request_drain()

    def _install_drain_handlers(self) -> dict | None:
        """SIGTERM/SIGINT -> graceful drain, main thread only (signal
        handlers cannot be installed elsewhere); returns the previous
        handlers for restoration."""
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, self._on_drain_signal)
        return previous

    # -- journal hand-off -----------------------------------------------
    def fingerprint(self) -> str:
        """This engine's journal identity: every answer- or
        partition-shaping config field plus the graph digest."""
        return config_fingerprint(self.engine.config,
                                  graph_digest(self.engine.graph))

    def _load_journal_state(self):
        """Replay (and tail-truncate) the journal, refusing a fingerprint
        mismatch: a journal written under another config/graph would
        splice foreign ciphertexts into this engine's shares."""
        with self.engine.tracer.span("journal_replay", ROLE_SP) as span:
            state = self.journal.replay()
            span.set("records", state.records)
            span.set("tampered", state.tampered_records)
            span.set("truncated_bytes", state.truncated_bytes)
            span.set("queries", len(state.queries))
        fingerprint = self.fingerprint()
        if state.fingerprint and state.fingerprint != fingerprint:
            raise JournalError(
                f"journal {self.journal.path} was written by a different "
                f"engine configuration (fingerprint "
                f"{state.fingerprint[:12]}.. != {fingerprint[:12]}..); "
                f"refusing to resume")
        return state, fingerprint

    def serve(self, queries: list[Query]) -> BatchReport:
        """Answer every admitted query; results are value-identical to
        independent ``engine.run`` calls in the same order.

        With a journal attached this is also the resume entry point: call
        it again after a crash with the *same* submission list and every
        journaled share (and every committed query's answer) is replayed
        instead of recomputed.  Queries execute strictly in submission
        order -- ``prepare_query`` consumes the user's CGBE randomness,
        so order preservation is what makes a resumed run's messages
        bit-identical to the uninterrupted run's.
        """
        config = self.engine.config
        state = fingerprint = None
        if self.journal is not None:
            state, fingerprint = self._load_journal_state()
        admission = AdmissionStats(submitted=len(queries))
        journal_counters = JournalCounters()
        outcomes: list[QueryOutcome] = []
        bound = self.queue_bound
        admitted = queries if bound is None else queries[:bound]
        admission.admitted = len(admitted)
        admission.shed_overload = len(queries) - len(admitted)
        self.engine.tracer.event("admission", ROLE_SP,
                                 submitted=admission.submitted,
                                 admitted=admission.admitted,
                                 shed=admission.shed_overload)

        groups: dict[tuple, list[int]] = {}
        results: list[QueryResult] = []
        latencies: list[float] = []
        before = self.cache.stats.snapshot()
        previous_handlers = self._install_drain_handlers()
        batch_started = time.perf_counter()
        try:
            if self.journal is not None:
                self.journal.append(RecordType.BATCH_ADMIT,
                                    {"fingerprint": fingerprint,
                                     "submitted": len(queries),
                                     "admitted": len(admitted)})
            for index, query in enumerate(admitted):
                if self._drain.is_set():
                    admission.drained += len(admitted) - index
                    outcomes.extend(
                        QueryOutcome(index=i, status=QueryStatus.DRAINED,
                                     detail="graceful drain requested")
                        for i in range(index, len(admitted)))
                    if self.journal is not None:
                        self.journal.append(RecordType.DRAIN,
                                            {"at_index": index})
                    break
                outcomes.append(self._serve_one(
                    index, query, state, groups, results, latencies,
                    admission, journal_counters))
        finally:
            if previous_handlers is not None:
                for signum, handler in previous_handlers.items():
                    signal.signal(signum, handler)
        outcomes.extend(
            QueryOutcome(index=i, status=QueryStatus.REJECTED_OVERLOAD,
                         detail=f"queue bound {bound} exceeded")
            for i in range(len(admitted), len(queries)))
        makespan = time.perf_counter() - batch_started
        return BatchReport(results=results, latencies=latencies,
                           makespan=makespan, signature_groups=groups,
                           cache_stats=self.cache.stats.delta(before),
                           outcomes=outcomes, admission=admission,
                           journal=journal_counters)

    def _serve_one(self, index: int, query: Query, state, groups: dict,
                   results: list, latencies: list,
                   admission: AdmissionStats,
                   journal_counters: JournalCounters) -> QueryOutcome:
        """Admit, run, and (when journaled) commit one query."""
        config = self.engine.config
        signature = enumeration_signature(
            query,
            enumeration_limit=config.enumeration_limit,
            cmm_bound_bypass=config.cmm_bound_bypass)
        groups.setdefault(signature, []).append(index)
        query_key = ""
        resume = None
        if self.journal is not None:
            query_key = query_idempotency_key(self.journal.key, query, index)
            resume = state.queries.get(query_key)
            self.journal.append(RecordType.QUERY_BEGIN,
                                {"query": query_key, "index": index})
        started = time.perf_counter()
        try:
            result = self.engine.run(query, cmm_cache=self.cache,
                                     journal=self.journal,
                                     query_key=query_key, resume=resume)
        except BallBudgetExceeded as exc:
            admission.shed_ball_budget += 1
            logger.warning("query %d shed: %s", index, exc)
            return QueryOutcome(index=index,
                                status=QueryStatus.REJECTED_BALL_BUDGET,
                                latency_seconds=time.perf_counter() - started,
                                detail=str(exc), query_key=query_key)
        except DeadlineExceeded as exc:
            admission.deadline_exceeded += 1
            if exc.metrics is not None:
                journal_counters.merge(exc.metrics.journal)
            logger.warning("query %d aborted: %s", index, exc)
            return QueryOutcome(index=index,
                                status=QueryStatus.DEADLINE_EXCEEDED,
                                latency_seconds=time.perf_counter() - started,
                                detail=str(exc), metrics=exc.metrics,
                                query_key=query_key)
        latency = time.perf_counter() - started
        if self.journal is not None:
            self._commit(query_key, index, result, resume, admission)
        journal_counters.merge(result.metrics.journal)
        admission.completed += 1
        results.append(result)
        latencies.append(latency)
        return QueryOutcome(index=index, status=QueryStatus.OK,
                            result=result, latency_seconds=latency,
                            metrics=result.metrics, query_key=query_key)

    def _commit(self, query_key: str, index: int, result: QueryResult,
                resume, admission: AdmissionStats) -> None:
        """Durably commit one answer -- or, when the journal already holds
        a commit for this submission, cross-check it: a digest mismatch on
        a *committed* answer is an integrity violation, never a recovery
        (the journaled shares fed the recomputation, so only tampering or
        a foreign journal can get here)."""
        digest = answer_digest(self.journal.key, result.verified_ids,
                               result.match_ball_ids, result.num_matches)
        if resume is not None and resume.committed:
            if resume.answer_digest != digest:
                raise JournalError(
                    f"journaled commit for query #{index} does not match "
                    f"the recomputed answer ({resume.answer_digest[:12]}.. "
                    f"!= {digest[:12]}..); journal integrity violated")
            admission.replayed_commits += 1
            self.engine.tracer.event("query_commit", ROLE_SP,
                                     index=index, replayed=True)
            return
        faults = result.metrics.faults
        self.journal.append(RecordType.QUERY_COMMIT,
                            {"query": query_key, "index": index,
                             "answer_digest": digest,
                             "faults": {"injected": faults.injected,
                                        "detected": faults.detected,
                                        "retries": faults.retries,
                                        "recovered": faults.recovered,
                                        "degraded": faults.degraded}})
        self.engine.tracer.event("query_commit", ROLE_SP,
                                 index=index, replayed=False)

    # -- standing queries & dynamic updates -----------------------------
    @property
    def standing(self) -> tuple[StandingQuery, ...]:
        return tuple(self._standing)

    def register_standing(self, query: Query,
                          name: str | None = None) -> StandingQuery:
        """Register ``query`` for continuous evaluation across deltas.

        The query is evaluated once, in full, to seed the baseline match
        set; registration itself never counts as a notification.  After
        every :meth:`apply_delta` the query is re-evaluated against only
        the dirty/added balls and a notice is raised iff the merged match
        set actually changed."""
        if name is None:
            name = f"standing-{len(self._standing)}"
        result = self.engine.run(query, cmm_cache=self.cache)
        sq = StandingQuery(
            name=name, query=query,
            matches=dict(canonical_answer_of_result(result)["matches"]))
        self._standing.append(sq)
        return sq

    def apply_delta(self, delta: GraphDelta) -> DeltaApplication:
        """Apply a graph delta to the live engine and its artifacts.

        Store-backed engines delegate the artifact surgery to
        :meth:`repro.storage.ArtifactStore.apply_delta` (dirty-ball
        re-encryption, Merkle/catalog patching); in-memory engines mutate
        the graph and rebuild a ball index that keeps the surviving
        balls' ids stable.  Either way the CMM cache entries of every
        affected ball are invalidated and each standing query is
        re-evaluated over only the dirty/added balls.

        The emitted ``delta_apply`` trace span carries counts only
        (balls, dirty, reencrypted, standing, notified) -- never vertex
        names, labels or match content, per the leakage model.
        """
        engine = self.engine
        graph = engine.graph
        radii = tuple(sorted(set(engine.config.radii)))
        store_report = None
        if engine.store is not None:
            store_report = engine.store.apply_delta(delta, graph,
                                                    engine.owner.key)
            engine.refresh()
            dirty = tuple(store_report.dirty_ball_ids)
            added = tuple(store_report.added_ball_ids)
            removed = tuple(store_report.removed_ball_ids)
        else:
            old_ids = engine.index.id_map()
            cutoff = max(radii)
            touched = delta.touched_vertices()
            # Distances on both the pre- and post-delta graph: a ball is
            # dirty if a touched vertex is within reach before OR after.
            dists = touched_min_distances(graph, touched, cutoff)
            delta.apply(graph)
            dists = touched_min_distances(graph, touched, cutoff,
                                          into=dists)
            removed_set = set(delta.removed_vertices)
            added_centers = [v for v, _ in delta.added_vertices]
            dirty_keys = dirty_ball_keys(
                dists, radii, exclude=removed_set.union(added_centers))
            removed = tuple(sorted(old_ids[(v, r)]
                                   for v in removed_set for r in radii))
            # Surviving balls keep their ids; new centers extend the id
            # space past the historical maximum so ids never get reused.
            new_ids = {k: i for k, i in old_ids.items()
                       if k[0] not in removed_set}
            next_id = max(old_ids.values(), default=-1) + 1
            added_list = []
            for v in added_centers:
                for r in radii:
                    new_ids[(v, r)] = next_id
                    added_list.append(next_id)
                    next_id += 1
            added = tuple(added_list)
            dirty = tuple(sorted(old_ids[k] for k in dirty_keys))
            engine.refresh(index=BallIndex(graph, radii, ids=new_ids))
        affected = set(dirty) | set(added) | set(removed)
        invalidated = self.cache.invalidate_balls(affected)
        restrict = set(dirty) | set(added)
        notices = [self._renotify(sq, restrict, set(removed))
                   for sq in self._standing]
        application = DeltaApplication(
            dirty_ball_ids=dirty, added_ball_ids=added,
            removed_ball_ids=removed, cache_invalidated=invalidated,
            store_report=store_report, notices=notices)
        engine.tracer.event(
            "delta_apply", ROLE_SP,
            balls=len(engine.index.id_map()),
            dirty=len(dirty),
            reencrypted=(store_report.reencrypted
                         if store_report is not None else len(restrict)),
            standing=len(self._standing),
            notified=application.notified)
        return application

    def _renotify(self, sq: StandingQuery, restrict: set,
                  removed: set) -> StandingNotice:
        """Re-evaluate one standing query against only ``restrict`` balls
        and merge into its retained match set."""
        engine = self.engine
        fresh: dict[str, list[str]] = {}
        if restrict:
            previous = engine.ball_filter
            if previous is None:
                predicate = restrict.__contains__
            else:
                def predicate(ball_id, _keep=previous):
                    return ball_id in restrict and _keep(ball_id)
            engine.install_ball_filter(predicate)
            try:
                result = engine.run(sq.query, cmm_cache=self.cache)
            finally:
                engine.install_ball_filter(previous)
            fresh = canonical_answer_of_result(result)["matches"]
        stale_keys = {str(b) for b in restrict | removed}
        merged = {bid: match for bid, match in sq.matches.items()
                  if bid not in stale_keys}
        merged.update(fresh)
        merged = {bid: merged[bid] for bid in sorted(merged, key=int)}
        changed = merged != sq.matches
        sq.evaluations += 1
        if changed:
            sq.matches = merged
            sq.notifications += 1
        return StandingNotice(name=sq.name, changed=changed,
                              num_matches=sq.num_matches)


class QueryStream:
    """Incremental serving over a :class:`QueryBatchEngine`: one query at
    a time, caller-chosen indices, same machinery as :meth:`serve`.

    The batch entry point takes the whole submission list up front; a
    network shard receives queries one frame at a time and cannot know
    the batch in advance.  This facade loads journal state once at
    construction (so crash-resume works identically: re-submitting the
    same ``(query, index)`` pairs replays journaled shares/commits), then
    funnels each submission through the engine's ``_serve_one`` -- cache,
    admission, journal and metrics behavior are exactly the batch path's.

    Indices are the caller's (the gateway assigns globally unique ones so
    per-shard journal idempotency keys line up across the fleet);
    ``serve_one`` defaults to submission order when the caller does not
    care.  Not thread-safe -- queries execute strictly in submission
    order, like the batch path.
    """

    def __init__(self, server: QueryBatchEngine) -> None:
        self._server = server
        self._state = None
        self._fingerprint = None
        if server.journal is not None:
            self._state, self._fingerprint = server._load_journal_state()
            server.journal.append(RecordType.BATCH_ADMIT,
                                  {"fingerprint": self._fingerprint,
                                   "submitted": 0, "admitted": 0,
                                   "streaming": True})
        self.groups: dict[tuple, list[int]] = {}
        self.results: list[QueryResult] = []
        self.latencies: list[float] = []
        self.outcomes: list[QueryOutcome] = []
        self.admission = AdmissionStats()
        self.journal_counters = JournalCounters()
        self._cache_before = server.cache.stats.snapshot()
        self._started = time.perf_counter()
        self._drained = False

    @property
    def engine(self) -> Prilo:
        return self._server.engine

    def request_drain(self) -> None:
        """Stop serving: every later submission reports ``drained``
        without touching the engine (mirrors the batch drain path)."""
        if self._drained:
            return
        self._drained = True
        if self._server.journal is not None:
            self._server.journal.append(
                RecordType.DRAIN, {"at_index": self.admission.submitted})

    def serve_one(self, query: Query, index: int | None = None,
                  ) -> QueryOutcome:
        """Admit, run and (when journaled) commit one query."""
        if index is None:
            index = self.admission.submitted
        self.admission.submitted += 1
        if self._drained:
            self.admission.drained += 1
            outcome = QueryOutcome(index=index, status=QueryStatus.DRAINED,
                                   detail="stream drained")
            self.outcomes.append(outcome)
            return outcome
        self.admission.admitted += 1
        outcome = self._server._serve_one(
            index, query, self._state, self.groups, self.results,
            self.latencies, self.admission, self.journal_counters)
        self.outcomes.append(outcome)
        return outcome

    def report(self) -> BatchReport:
        """Everything served so far, in the batch report shape."""
        return BatchReport(
            results=list(self.results), latencies=list(self.latencies),
            makespan=time.perf_counter() - self._started,
            signature_groups=dict(self.groups),
            cache_stats=self._server.cache.stats.delta(self._cache_before),
            outcomes=list(self.outcomes), admission=self.admission,
            journal=self.journal_counters)


__all__ = [
    "DEFAULT_CMM_CACHE_WEIGHT",
    "AdmissionStats",
    "BatchReport",
    "CMMCache",
    "DeltaApplication",
    "QueryBatchEngine",
    "QueryOutcome",
    "QueryStatus",
    "QueryStream",
    "StandingNotice",
    "StandingQuery",
    "enumeration_signature",
    "prepare_ball",
    "signature_of_view",
]
