"""Multi-query batch serving with cross-query CMM reuse.

``Prilo.run`` is the faithful single-query pipeline: enumeration streams
straight into verification and nothing survives the call.  A serving
deployment answers *streams* of queries against one outsourced graph, and
most of the SP-side work is re-derivable: Alg. 1's enumeration depends
only on the query's *label view* (the ordered ``V_Q`` labels, ``d_Q`` and
the semantics -- exactly the plaintext fields of the encrypted query
message), never on the encrypted edges.  Two queries with the same label
view induce identical CMM sets on every ball.

:class:`QueryBatchEngine` exploits that by interposing a
:class:`CMMCache` between enumeration and verification:

* on first contact with a ``(ball, signature)`` pair the enumeration runs
  once and is distilled into a :class:`~repro.framework.executor.PreparedBall`
  -- the *distinct* projected 0/1 patterns plus the per-CMM pattern index;
* every query (including the first!) then verifies from the prepared form:
  one chunked product per distinct pattern instead of one per CMM.  Balls
  repeat projected patterns heavily (measurements in DESIGN.md show >5x
  CMM-to-pattern redundancy on the paper's datasets), so this is the main
  speedup even at batch size 1;
* later queries in the same signature group skip enumeration entirely
  (a cache hit).

Correctness: a chunked product is a pure function of its factor multiset
and the public chunk layout, and the factor list of Alg. 2 is a function
of the projected pattern alone.  Replicating each pattern's chunk list
per CMM in enumeration order therefore feeds ``aggregate_items`` the
exact ciphertext multiset the streaming kernel produces -- batch results
are *value-identical* to independent ``run`` calls (asserted by
``tests/test_server.py`` across semantics, pruning and backends).

Obliviousness: the cache key and everything inside a prepared ball are
functions of the ball's plaintext adjacency (SP-owned) and the public
label view.  No ciphertext value, verdict, or pruning outcome ever flows
into cache state, and per query the SP still performs one verification
pass per scheduled ball.  See DESIGN.md ("Batch serving").
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.enumeration import count_cmm_upper_bound, iter_cmms
from repro.framework.executor import PreparedBall
from repro.framework.metrics import CacheStats
from repro.framework.prilo import Prilo, QueryResult
from repro.graph.ball import Ball
from repro.graph.matrix import ProjectionCache
from repro.graph.query import Query, QueryLabelView, Semantics

#: Default CMM cache capacity, in CMM units (see ``PreparedBall.weight``).
#: 512k units is ~a few hundred MB of tuple data at the paper's query
#: sizes -- far above any tier-1 workload, so eviction only engages on
#: serving workloads with genuinely large working sets.
DEFAULT_CMM_CACHE_WEIGHT = 512_000


def enumeration_signature(query: Query, *, enumeration_limit: int,
                          cmm_bound_bypass: int) -> tuple:
    """The inputs Alg. 1 actually reads: ordered ``V_Q`` labels, ``d_Q``,
    the matching semantics, and the engine's enumeration bounds.

    Two queries with equal signatures induce identical CMM streams on
    every ball -- the encrypted edges never participate.  The bounds are
    part of the signature because truncation/bypass verdicts depend on
    them.
    """
    labels = tuple(query.label(u) for u in query.vertex_order)
    return (labels, query.diameter, query.semantics,
            enumeration_limit, cmm_bound_bypass)


def signature_of_view(view: QueryLabelView, *, enumeration_limit: int,
                      cmm_bound_bypass: int) -> tuple:
    """:func:`enumeration_signature` computed from the SP-side label view.

    ``message.vertex_labels`` is the query's labels in ``vertex_order``,
    so this produces the exact tuple :func:`enumeration_signature` builds
    from the query -- the engine keys the cache with this, the batch
    server groups with that, and they must agree.
    """
    return (tuple(view.labels), view.diameter, view.semantics,
            enumeration_limit, cmm_bound_bypass)


def prepare_ball(view: QueryLabelView, ball: Ball, *,
                 enumeration_limit: int,
                 cmm_bound_bypass: int) -> PreparedBall:
    """Run Alg. 1 once and distill the CMM stream into pattern groups.

    Mirrors the decision structure of
    :func:`repro.framework.roles.evaluate_ball_kernel` exactly: the bound
    bypass is checked before any enumeration (``enumerated == 0``), and
    producing a ``limit+1``-th CMM truncates with ``enumerated == limit``
    -- so the prepared verdicts agree with the streaming kernel's.

    Projection rows are deep-copied to tuples: :class:`ProjectionCache`
    reuses its row buffers across CMMs.
    """
    if count_cmm_upper_bound(view, ball) > cmm_bound_bypass:
        return PreparedBall(ball_id=ball.ball_id, enumerated=0,
                            truncated=False, bound_bypassed=True,
                            patterns=(), pattern_of_cmm=())
    injective = view.semantics is Semantics.SUB_ISO
    projection_cache = ProjectionCache(ball.graph)
    patterns: list[tuple[tuple[int, ...], ...]] = []
    index_of: dict[tuple, int] = {}
    order: list[int] = []
    enumerated = 0
    for cmm in iter_cmms(view, ball, injective=injective):
        if enumerated >= enumeration_limit:
            return PreparedBall(ball_id=ball.ball_id, enumerated=enumerated,
                                truncated=True, bound_bypassed=False,
                                patterns=(), pattern_of_cmm=())
        rows = cmm.project_rows(projection_cache)
        pattern = tuple(tuple(int(v) for v in row) for row in rows)
        index = index_of.get(pattern)
        if index is None:
            index = len(patterns)
            index_of[pattern] = index
            patterns.append(pattern)
        order.append(index)
        enumerated += 1
    return PreparedBall(ball_id=ball.ball_id, enumerated=enumerated,
                        truncated=False, bound_bypassed=False,
                        patterns=tuple(patterns),
                        pattern_of_cmm=tuple(order))


class CMMCache:
    """Bounded LRU cache of :class:`PreparedBall` keyed by
    ``(ball_id, enumeration signature)``.

    The size bound is expressed in CMM units (``PreparedBall.weight``:
    per-CMM index entries plus distinct patterns) rather than entry
    count, so one giant ball cannot silently dominate memory.  Eviction
    is least-recently-used and never evicts the entry being inserted.
    Counters are exposed through a shared :class:`CacheStats`, the same
    hook the pad-power and decrypt caches report through.
    """

    def __init__(self, max_weight: int = DEFAULT_CMM_CACHE_WEIGHT,
                 stats: CacheStats | None = None) -> None:
        if max_weight < 1:
            raise ValueError("CMM cache weight bound must be positive")
        self.max_weight = max_weight
        self.stats = stats if stats is not None else CacheStats()
        self.stats.capacity = max_weight
        self._entries: "OrderedDict[tuple, PreparedBall]" = OrderedDict()
        self._weight = 0
        #: Wall-clock seconds spent building entries, per ball id, for the
        #: most recent ``prepare`` call (0.0 on hits).  Read by the engine
        #: to account enumeration cost into per-ball evaluation cost.
        self.last_build_seconds = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def weight(self) -> int:
        return self._weight

    def prepare(self, view: QueryLabelView, ball: Ball, *,
                enumeration_limit: int,
                cmm_bound_bypass: int) -> PreparedBall:
        """Return the ball's prepared form, enumerating on first contact."""
        signature = signature_of_view(
            view, enumeration_limit=enumeration_limit,
            cmm_bound_bypass=cmm_bound_bypass)
        key = (ball.ball_id, signature)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.last_build_seconds = 0.0
            self._update_fill()
            return entry
        self.stats.misses += 1
        started = time.perf_counter()
        entry = prepare_ball(view, ball,
                             enumeration_limit=enumeration_limit,
                             cmm_bound_bypass=cmm_bound_bypass)
        self.last_build_seconds = time.perf_counter() - started
        self._entries[key] = entry
        self._weight += entry.weight
        while self._weight > self.max_weight and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._weight -= evicted.weight
            self.stats.evictions += 1
        self._update_fill()
        return entry

    def _update_fill(self) -> None:
        self.stats.entries = len(self._entries)
        self.stats.weight = self._weight


@dataclass
class BatchReport:
    """What one ``serve`` call did, for benchmarks and the CLI."""

    results: list[QueryResult]
    #: Per-query end-to-end latency, in submission order.
    latencies: list[float]
    #: Wall-clock of the whole batch.
    makespan: float
    #: Signature -> indices of the queries sharing it (submission order).
    signature_groups: dict[tuple, list[int]] = field(default_factory=dict)
    #: CMM cache counters accumulated over this batch.
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def distinct_signatures(self) -> int:
        return len(self.signature_groups)

    def summary(self) -> dict:
        return {
            "queries": len(self.results),
            "distinct_signatures": self.distinct_signatures,
            "makespan_seconds": self.makespan,
            "latency_seconds": list(self.latencies),
            "mean_latency_seconds": (sum(self.latencies) / len(self.latencies)
                                     if self.latencies else 0.0),
            "cmm_cache": self.cache_stats.as_dict(),
            "matches": [r.num_matches for r in self.results],
        }


class QueryBatchEngine:
    """Serves query batches over one :class:`Prilo` engine.

    Queries execute strictly in submission order -- ``prepare_query``
    consumes the user's CGBE randomness, so order preservation is what
    makes batch results bit-identical to the same queries run alone.
    Signature grouping is purely logical: it decides cache keys and the
    report's grouping, not execution order, and it never changes what the
    SP observes for any individual query.
    """

    def __init__(self, engine: Prilo,
                 cache: CMMCache | None = None,
                 max_cache_weight: int = DEFAULT_CMM_CACHE_WEIGHT) -> None:
        self.engine = engine
        self.cache = cache if cache is not None else CMMCache(max_cache_weight)

    def close(self) -> None:
        """Shut down the underlying engine's executor (idempotent) -- a
        failed batch must not leak pool worker processes."""
        self.engine.close()

    def __enter__(self) -> "QueryBatchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def serve(self, queries: list[Query]) -> BatchReport:
        """Answer every query; results are value-identical to independent
        ``engine.run`` calls in the same order."""
        config = self.engine.config
        groups: dict[tuple, list[int]] = {}
        results: list[QueryResult] = []
        latencies: list[float] = []
        before = self.cache.stats.snapshot()
        batch_started = time.perf_counter()
        for index, query in enumerate(queries):
            signature = enumeration_signature(
                query,
                enumeration_limit=config.enumeration_limit,
                cmm_bound_bypass=config.cmm_bound_bypass)
            groups.setdefault(signature, []).append(index)
            started = time.perf_counter()
            results.append(self.engine.run(query, cmm_cache=self.cache))
            latencies.append(time.perf_counter() - started)
        makespan = time.perf_counter() - batch_started
        return BatchReport(results=results, latencies=latencies,
                           makespan=makespan, signature_groups=groups,
                           cache_stats=self.cache.stats.delta(before))


__all__ = [
    "DEFAULT_CMM_CACHE_WEIGHT",
    "BatchReport",
    "CMMCache",
    "QueryBatchEngine",
    "enumeration_signature",
    "prepare_ball",
    "signature_of_view",
]
