"""Per-query result certificates: the untrusted-shard serving contract.

PR 7's gateway trusted its shards: whatever slice a shard returned was
merged into the user's answer.  This module removes that trust.  Every
shard verdict now travels with a *certificate* that the gateway (acting
for the user, who holds the owner-derived keys) checks before the slice
touches the merge -- the "verified user-side at decrypt time" step of
the verifiable-graph-search setting (PAPERS.md).

A certificate proves two properties about one shard's slice of one
query, against the Merkle root and candidate catalog the data owner
committed at pack-build time (:mod:`repro.storage.authenticate`):

* **completeness** -- the shard evaluated *exactly* the candidate set it
  owed: the committed catalog lists every ball id of the query's
  (radius, chosen label) class, the placement ring determines which of
  those this shard owns under ``(members, prev_members)``, and a Merkle
  multiproof ties each claimed candidate to a committed leaf.  A lazy
  shard that silently skips a ball (``DROP_BALL``) cannot produce a
  matching candidate set.
* **soundness** -- the answer slice is the one an honest engine computed
  under this exact ``(query, shard, membership, config)`` coordinate:
  the certificate carries the PR 4 journal ``answer_digest`` and a
  *binding digest*, both keyed with owner-derived keys the SP never
  holds.  A forged match set (``FORGE_RESULT``) fails the recomputed
  digests; a replayed stale verdict (``REPLAY_STALE``) binds the wrong
  query id or membership.

The adversary modeled is the malicious-SP chaos tier
(:data:`repro.framework.faults.MALICIOUS_KINDS`): it may mutate any
verdict field and rebuild any *public* artifact (Merkle proofs are
public), but holds neither :func:`~repro.storage.authenticate.auth_key`
nor :func:`~repro.storage.journal.journal_key` -- the same key
discipline as the store tamper sweep and journal digests it extends.
"""

from __future__ import annotations

import hashlib
import json

from repro.crypto.keys import DataOwnerKey
from repro.framework import wire
from repro.framework.faults import FaultKind
from repro.framework.placement import (
    DEFAULT_SALT,
    DEFAULT_VNODES,
    orphan_predicate,
)
from repro.storage.authenticate import (
    AuthError,
    MerkleTree,
    auth_key,
    catalog_digest,
    verify_multiproof,
)
from repro.storage.journal import answer_digest, config_fingerprint, \
    journal_key

#: Versioned certificate scheme tag.
CERT_SCHEME = "prilo-cert/1"

_BIND_PREFIX = b"prilo-cert-bind:"


class VerificationError(RuntimeError):
    """A verdict's certificate failed; ``kind`` attributes the failure
    to a malicious-SP fault class for the fault report."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


def binding_digest(vkey: bytes, *, qid: int, shard_id: int, members,
                   prev_members, fingerprint: str, answer: dict,
                   ans_digest: str) -> str:
    """The soundness digest: keyed over the full verdict coordinate.

    Covers the canonical answer bytes (candidates included, so even a
    dropped *unverified* candidate breaks it), the journal answer
    digest, and the dispatch coordinate ``(qid, shard, members,
    prev_members, config fingerprint)`` -- which is what makes replaying
    a genuinely-signed verdict under another query or membership
    detectable.
    """
    payload = json.dumps({
        "qid": int(qid),
        "shard": int(shard_id),
        "members": sorted(int(m) for m in members),
        "prev_members": (None if prev_members is None
                         else sorted(int(m) for m in prev_members)),
        "fingerprint": fingerprint,
        "answer_digest": ans_digest,
        "answer": answer,
    }, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(_BIND_PREFIX + vkey + payload).hexdigest()


class Certifier:
    """Shard-side certificate builder.

    Lives next to the engine inside each shard process.  Note the trust
    story: an *honest* shard builds certificates with keys derived from
    the owner seed its operator was provisioned with; the rogue layer in
    :mod:`repro.framework.shard` mutates verdicts *after* this builder
    ran, modeling an adversary who can tamper with data but not mint
    keyed digests.
    """

    def __init__(self, auth: dict, *, seed: int, config,
                 graph_digest: str) -> None:
        key = DataOwnerKey.generate(seed)
        self._vkey = auth_key(key)
        self._jkey = journal_key(seed)
        self._fingerprint = config_fingerprint(config, graph_digest)
        self._tree = MerkleTree.from_leaf_hexes(auth["leaves"])
        if self._tree.root_hex != auth["root"]:
            raise AuthError("auth block root does not match its leaves")

    @property
    def root_hex(self) -> str:
        return self._tree.root_hex

    @property
    def tree(self) -> MerkleTree:
        return self._tree

    def certify(self, *, qid: int, shard_id: int, members, prev_members,
                result) -> dict:
        """The certificate for one shard-local :class:`QueryResult`."""
        answer = wire.canonical_answer_of_result(result)
        ans_digest = answer_digest(self._jkey, result.verified_ids,
                                   result.match_ball_ids,
                                   result.num_matches)
        cert = {
            "v": CERT_SCHEME,
            "root": self._tree.root_hex,
            "qid": int(qid),
            "shard": int(shard_id),
            "members": sorted(int(m) for m in members),
            "prev_members": (None if prev_members is None
                             else sorted(int(m) for m in prev_members)),
            "fingerprint": self._fingerprint,
            "label": repr(result.chosen_label),
            "proof": self._tree.prove(result.candidate_ids)
            if result.candidate_ids else None,
            "answer_digest": ans_digest,
        }
        cert["binding"] = binding_digest(
            self._vkey, qid=qid, shard_id=shard_id, members=members,
            prev_members=prev_members, fingerprint=self._fingerprint,
            answer=answer, ans_digest=ans_digest)
        return cert


class AnswerVerifier:
    """User/gateway-side verifier: holds the committed root + catalog
    and the owner-derived keys, and judges one verdict at a time.

    Construction itself is defensive: :meth:`from_placement` re-derives
    the catalog digest under the user's key and refuses a catalog the
    coordinator (or anyone on disk) has edited.
    """

    def __init__(self, *, root_hex: str, catalog: dict, vkey: bytes,
                 jkey: bytes, fingerprint: str,
                 vnodes: int = DEFAULT_VNODES,
                 salt: str = DEFAULT_SALT) -> None:
        if not root_hex:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "no committed auth root: rebuild the pack (store build) "
                "to serve verified")
        self._root = str(root_hex)
        self._catalog = catalog or {}
        self._vkey = vkey
        self._jkey = jkey
        self._fingerprint = fingerprint
        self._vnodes = vnodes
        self._salt = salt

    @classmethod
    def from_placement(cls, placement, *, seed: int,
                       config) -> "AnswerVerifier":
        key = DataOwnerKey.generate(seed)
        vkey = auth_key(key)
        if (catalog_digest(vkey, placement.catalog)
                != placement.catalog_digest):
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "candidate catalog fails its keyed digest (tampered "
                "placement manifest)")
        return cls(root_hex=placement.auth_root, catalog=placement.catalog,
                   vkey=vkey, jkey=journal_key(seed),
                   fingerprint=config_fingerprint(config,
                                                  placement.graph_digest),
                   vnodes=placement.vnodes, salt=placement.salt)

    @classmethod
    def from_store(cls, store, *, seed: int, config,
                   vnodes: int = DEFAULT_VNODES,
                   salt: str = DEFAULT_SALT) -> "AnswerVerifier":
        """Verifier straight off an (unsplit) :class:`ArtifactStore` --
        the single-shard / testing path."""
        auth = store.auth
        if auth is None:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "store has no auth block (built before PR 8)")
        key = DataOwnerKey.generate(seed)
        vkey = auth_key(key)
        if catalog_digest(vkey, auth["catalog"]) != auth["catalog_digest"]:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "candidate catalog fails its keyed digest")
        return cls(root_hex=auth["root"], catalog=auth["catalog"],
                   vkey=vkey, jkey=journal_key(seed),
                   fingerprint=config_fingerprint(
                       config, store.manifest_graph_digest),
                   vnodes=vnodes, salt=salt)

    @property
    def root_hex(self) -> str:
        return self._root

    def expected_candidates(self, *, shard_id: int, members, prev_members,
                            radius: int, label: str) -> list[int]:
        """The slice this shard owed: the committed (radius, label)
        class filtered by the placement ring -- recomputed entirely from
        owner-committed data, never from anything the shard sent."""
        class_ids = self._catalog.get(str(int(radius)), {}).get(label, [])
        keep = orphan_predicate(shard_id, members, prev_members,
                                vnodes=self._vnodes, salt=self._salt)
        return sorted(int(b) for b in class_ids if keep(int(b)))

    def verify_verdict(self, *, qid: int, shard_id: int, members,
                       prev_members, query, verdict: dict) -> int:
        """Judge one OK verdict; return the proof size in bytes.

        Raises :class:`VerificationError` with the attributed fault kind
        on any failure.  Checks run cheapest-first and
        attribution-first: a stale replay is named as such before the
        binding digest (which it would also fail) gets a say.
        """
        cert = verdict.get("cert")
        if not isinstance(cert, dict):
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                f"shard {shard_id} returned no certificate for q{qid}")
        if cert.get("v") != CERT_SCHEME:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                f"unknown certificate scheme {cert.get('v')!r}")
        if cert.get("root") != self._root:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                f"certificate root {str(cert.get('root'))[:12]} is not "
                f"the committed pack root")
        members_now = sorted(int(m) for m in members)
        prev_now = (None if prev_members is None
                    else sorted(int(m) for m in prev_members))
        if (cert.get("qid") != int(qid)
                or cert.get("shard") != int(shard_id)
                or cert.get("members") != members_now
                or cert.get("prev_members") != prev_now):
            raise VerificationError(
                FaultKind.REPLAY_STALE,
                f"certificate is bound to q{cert.get('qid')} / shard "
                f"{cert.get('shard')} / members {cert.get('members')}, "
                f"not this dispatch (q{qid}, shard {shard_id}, "
                f"members {members_now})")
        if cert.get("fingerprint") != self._fingerprint:
            raise VerificationError(
                FaultKind.REPLAY_STALE,
                "certificate was produced under a different config "
                "fingerprint")

        candidates = [int(b) for b in verdict.get("candidates", [])]
        pm_positive = [int(b) for b in verdict.get("pm_positive", [])]
        verified = [int(b) for b in verdict.get("verified", [])]
        matches = verdict.get("matches", {})

        # Membership: every claimed candidate has a committed leaf.
        proof = cert.get("proof")
        proof_bytes = 0
        if candidates:
            if proof is None:
                raise VerificationError(
                    FaultKind.FORGE_RESULT,
                    "non-empty candidate set without a Merkle proof")
            try:
                proven = verify_multiproof(self._root, proof)
            except AuthError as exc:
                raise VerificationError(
                    FaultKind.FORGE_RESULT,
                    f"Merkle multiproof rejected: {exc}") from exc
            proof_bytes = len(json.dumps(proof, separators=(",", ":")))
            if set(proven) != set(candidates):
                raise VerificationError(
                    FaultKind.FORGE_RESULT,
                    "multiproof covers a different ball set than the "
                    "claimed candidates")
        elif proof is not None:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "empty candidate set but a non-empty Merkle proof")

        # Completeness: the claimed candidates are exactly the owed
        # slice of the committed (radius, label) class.
        expected = self.expected_candidates(
            shard_id=shard_id, members=members, prev_members=prev_members,
            radius=query.diameter, label=cert.get("label", ""))
        if sorted(candidates) != expected:
            missing = sorted(set(expected) - set(candidates))
            extra = sorted(set(candidates) - set(expected))
            detail = (f"omitted {missing[:5]}" if missing
                      else f"claims unowned balls {extra[:5]}")
            raise VerificationError(
                FaultKind.DROP_BALL,
                f"incomplete candidate set for q{qid}: shard {shard_id} "
                f"{detail} (owed {len(expected)} ball(s) of its "
                f"committed slice)")

        # Pipeline containment: pruning only ever narrows (Props. 3-6).
        if not (set(verified) <= set(pm_positive) <= set(candidates)):
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "verdict violates candidate ⊇ pm_positive ⊇ verified "
                "containment")
        match_ids = [int(b) for b in matches]
        if not set(match_ids) <= set(verified):
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                "verdict reports matches on unverified balls")

        # Soundness: recompute both keyed digests from the verdict.
        num_matches = sum(len(v) for v in matches.values())
        if answer_digest(self._jkey, verified, match_ids,
                         num_matches) != cert.get("answer_digest"):
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                f"answer digest mismatch for q{qid}: the match set was "
                f"not produced by a keyed engine run")
        answer = wire.canonical_answer(candidates, pm_positive, verified,
                                       matches)
        expected_binding = binding_digest(
            self._vkey, qid=qid, shard_id=shard_id, members=members,
            prev_members=prev_members, fingerprint=self._fingerprint,
            answer=answer, ans_digest=cert["answer_digest"])
        if cert.get("binding") != expected_binding:
            raise VerificationError(
                FaultKind.FORGE_RESULT,
                f"binding digest mismatch for q{qid}: verdict bytes were "
                f"altered after certification")
        return proof_bytes


__all__ = [
    "AnswerVerifier",
    "CERT_SCHEME",
    "Certifier",
    "VerificationError",
    "binding_digest",
]
