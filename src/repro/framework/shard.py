"""One serving shard: a :class:`QueryBatchEngine` behind a loopback socket.

A shard is deliberately thin: the full single-engine serving stack
(CMM cache, admission control, write-ahead journal, tracer, fault
recovery) wrapped in an asyncio TCP server speaking the
:mod:`repro.framework.wire` frame protocol.  What makes it a *shard*
rather than a replica is the per-request ball filter: every ``query``
frame carries the membership under which the shard derives its owned
slice of the ball space (:func:`repro.framework.placement.orphan_predicate`),
so the shard evaluates only its partition -- and, on a re-placement pass
after a peer died, only the orphaned balls that newly moved here.

Shards never talk to each other.  Each holds the full public data graph
(the SP-side view) plus, optionally, its own sliced
:class:`~repro.storage.ArtifactStore` pack cut by ``store shard-split``;
balls outside the pack fall back to live-graph extraction through
:class:`~repro.storage.store.StoreMiss`, which is what makes re-placed
orphans servable at all.

Process model: :class:`LocalCluster` forks one process per shard, each
binding an ephemeral loopback port reported back over a pipe.  SIGKILL
on a member is the failure mode the gateway's recovery path is built
around (and what the chaos hook injects); SIGTERM simply terminates --
graceful drain is protocol-level (a ``drain`` frame), not signal-level,
because the *gateway* owns batch lifecycle.
"""

from __future__ import annotations

import asyncio
import json
import logging
import multiprocessing
import re
import time
from dataclasses import dataclass

from repro.framework import wire
from repro.framework.faults import ChaosPolicy, FaultKind, MALICIOUS_KINDS
from repro.framework.placement import (
    DEFAULT_SALT,
    DEFAULT_VNODES,
    orphan_predicate,
)
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine, QueryStream
from repro.framework.verify import Certifier
from repro.graph.labeled_graph import LabeledGraph
from repro.storage import ArtifactStore, RunJournal, journal_key

logger = logging.getLogger(__name__)

ENGINE_CLASSES = {"prilo": Prilo, "prilo-star": PriloStar}

#: How long the parent waits for a forked shard to report its port.
SPAWN_TIMEOUT_SECONDS = 120.0


class ShardError(RuntimeError):
    """A shard failed to start or received an unservable request."""


_PATH_RE = re.compile(r"(?:/|[A-Za-z]:\\)[^\s'\",;)\]]*")
_REDACT_MAX_CHARS = 160


def redact_error(exc: BaseException) -> str:
    """Collapse an exception to a wire-safe ``Type: message`` line.

    Error frames cross the trust boundary to the gateway (and, through
    it, the querying user), so they must leak no SP-host detail: no
    stack frames, no filesystem paths (store roots, journal files,
    Python install layout), and no unbounded message payloads.  The full
    traceback stays in the shard-local log, where the operator -- and
    only the operator -- can read it.
    """
    first_line = str(exc).splitlines()[0] if str(exc) else ""
    first_line = _PATH_RE.sub("<path>", first_line)
    if len(first_line) > _REDACT_MAX_CHARS:
        first_line = first_line[:_REDACT_MAX_CHARS] + "..."
    name = type(exc).__name__
    return f"{name}: {first_line}" if first_line else name


@dataclass
class ShardSpec:
    """Everything one shard process needs to build its engine and serve.

    Passed to the child through :class:`multiprocessing` (free under the
    fork start method; picklable for spawn).  ``vnodes``/``salt`` must
    match the ring the gateway routes with -- and, when ``store_root``
    points at a split pack, the ring ``store shard-split`` cut under,
    else the shard would own balls its pack does not hold (correct but
    slow: every load falls back to extraction).
    """

    shard_id: int
    graph: LabeledGraph
    config: PriloConfig
    engine: str = "prilo"
    store_root: str | None = None
    journal_path: str | None = None
    queue_bound: int | None = None
    vnodes: int = DEFAULT_VNODES
    salt: str = DEFAULT_SALT
    host: str = "127.0.0.1"
    port: int = 0
    #: Malicious-SP injection: a seeded :class:`ChaosPolicy` over the
    #: :data:`~repro.framework.faults.MALICIOUS_KINDS`.  The mutation
    #: layer runs *after* the honest engine (and certifier) produced the
    #: verdict, modeling an adversary who controls the shard's bytes but
    #: holds no owner-derived key -- it can rebuild public Merkle proofs,
    #: never the keyed binding/answer digests.
    rogue: ChaosPolicy | None = None


class ShardServer:
    """The in-process part of a shard (testable without forking)."""

    def __init__(self, spec: ShardSpec) -> None:
        if spec.engine not in ENGINE_CLASSES:
            raise ShardError(f"unknown engine {spec.engine!r} "
                             f"(have {sorted(ENGINE_CLASSES)})")
        self.spec = spec
        self.engine = None
        self.stream: QueryStream | None = None
        self.certifier: Certifier | None = None
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._lock = asyncio.Lock()
        self._drained = False
        #: The last honest OK verdict, kept as replay ammunition for the
        #: rogue layer's ``REPLAY_STALE`` mutation.
        self._last_ok: dict | None = None

    # -- lifecycle ------------------------------------------------------
    def build_engine(self) -> None:
        spec = self.spec
        store = (ArtifactStore.open(spec.store_root)
                 if spec.store_root else None)
        engine_cls = ENGINE_CLASSES[spec.engine]
        self.engine = engine_cls.setup(spec.graph, spec.config, store=store)
        if (store is not None and store.auth is not None
                and spec.config.verify_serving):
            # Certify with the engine's *effective* config: engine
            # classes override pruning flags in setup(), and the
            # fingerprint must match what the gateway verifier derives
            # for the same engine choice.
            self.certifier = Certifier(
                store.auth, seed=spec.config.seed,
                config=self.engine.config,
                graph_digest=store.manifest_graph_digest)
        journal = None
        if spec.journal_path:
            journal = RunJournal(spec.journal_path,
                                 journal_key(spec.config.seed))
        self.stream = QueryStream(QueryBatchEngine(
            self.engine, journal=journal, queue_bound=spec.queue_bound))

    async def start(self) -> None:
        if self.engine is None:
            self.build_engine()
        self._server = await asyncio.start_server(
            self._handle_connection, self.spec.host, self.spec.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.stream is not None:
            self.stream.engine.close()

    # -- protocol -------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await wire.write_frame(writer, {
                "t": "hello", "shard": self.spec.shard_id,
                "balls": len(self.engine.index),
            })
            while True:
                request = await wire.read_frame(reader)
                if request is None:
                    break
                reply = await self._dispatch(request)
                if "rid" in request:
                    reply["rid"] = request["rid"]
                await wire.write_frame(writer, reply)
        except (wire.WireError, ConnectionError) as exc:
            logger.warning("shard %d: connection dropped: %s",
                           self.spec.shard_id, exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: dict) -> dict:
        kind = request.get("t")
        if kind == "ping":
            return {"t": "pong", "shard": self.spec.shard_id,
                    "served": self.stream.admission.completed,
                    "drained": self._drained}
        if kind == "query":
            # One query at a time engine-wide: evaluation consumes the
            # shard-local user's CGBE randomness, so requests arriving on
            # different pooled connections must not interleave.
            async with self._lock:
                return self._answer(request)
        if kind == "drain":
            async with self._lock:
                self._drained = True
                self.stream.request_drain()
                report = self.stream.report()
                return {"t": "drained", "shard": self.spec.shard_id,
                        "summary": report.summary()}
        return {"t": "error",
                "detail": f"unknown frame type {kind!r}"}

    def _answer(self, request: dict) -> dict:
        qid = int(request["qid"])
        try:
            query = wire.query_from_jsonable(request["query"])
            members = request["members"]
            prev = request.get("prev_members")
            keep = orphan_predicate(self.spec.shard_id, members, prev,
                                    vnodes=self.spec.vnodes,
                                    salt=self.spec.salt)
            self.engine.install_ball_filter(keep)
            # Busy is CPU time, not wall: the shard is its own process,
            # so process_time() is exactly its compute.  Wall latency on
            # an oversubscribed host (N shards time-sliced on few cores)
            # counts scheduler wait, which would make per-shard busy grow
            # with fleet size and hide the scaling the gateway buys.
            cpu_started = time.process_time()
            outcome = self.stream.serve_one(
                query, index=int(request.get("jindex", qid)))
            busy = time.process_time() - cpu_started
            cert = None
            if self.certifier is not None and outcome.result is not None:
                cert = self.certifier.certify(
                    qid=qid, shard_id=self.spec.shard_id, members=members,
                    prev_members=prev, result=outcome.result)
            payload = wire.verdict_payload(qid, self.spec.shard_id,
                                           outcome, busy=busy, cert=cert)
            if self.spec.rogue is not None:
                payload = self._rogue_mutate(payload)
            return payload
        except Exception as exc:  # noqa: BLE001 -- report, don't kill the shard
            # Full traceback to the shard-local log only; the frame that
            # leaves the process carries a redacted one-liner.
            logger.exception("shard %d: query %d failed",
                             self.spec.shard_id, qid)
            return {"t": "error", "qid": qid,
                    "shard": self.spec.shard_id, "detail": redact_error(exc)}

    # -- malicious-SP injection -----------------------------------------
    def _rogue_mutate(self, payload: dict) -> dict:
        """Apply the first seeded malicious mutation that fires.

        The honest verdict (certificate included) is already built; the
        rogue layer tampers with it the way a key-less adversary could:
        it may fabricate matches, drop candidates (and rebuild the
        *public* Merkle proof over the survivors), or replay a stale
        verdict verbatim -- but it cannot recompute the keyed binding or
        answer digests, which is exactly what the merge-time verifier
        checks.
        """
        if payload.get("t") != "verdict" or "candidates" not in payload:
            return payload
        stale, self._last_ok = self._last_ok, payload
        rogue = self.spec.rogue
        qid = payload["qid"]
        key = f"shard{self.spec.shard_id}:q{qid}"
        for kind in rogue.kinds:
            if kind not in MALICIOUS_KINDS or not rogue.decides(kind, key):
                continue
            if kind == FaultKind.REPLAY_STALE:
                if stale is None or stale.get("qid") == qid:
                    continue  # nothing stale yet; try the other kinds
                replayed = json.loads(json.dumps(stale))
                replayed["qid"] = qid
                logger.warning("shard %d: ROGUE replaying q%s's verdict "
                               "as q%d", self.spec.shard_id,
                               stale.get("qid"), qid)
                return replayed
            mutated = json.loads(json.dumps(payload))
            if kind == FaultKind.DROP_BALL and mutated["candidates"]:
                dropped = mutated["candidates"].pop()
                mutated["pm_positive"] = [
                    b for b in mutated.get("pm_positive", [])
                    if b != dropped]
                mutated["verified"] = [
                    b for b in mutated.get("verified", []) if b != dropped]
                mutated.get("matches", {}).pop(str(dropped), None)
                cert = mutated.get("cert")
                if cert is not None and self.certifier is not None:
                    # Proofs are public: the lazy shard *can* re-prove
                    # the shrunken set.  Completeness vs. the committed
                    # catalog is what catches it.
                    cert["proof"] = (
                        self.certifier.tree.prove(mutated["candidates"])
                        if mutated["candidates"] else None)
                logger.warning("shard %d: ROGUE dropping ball %d from "
                               "q%d", self.spec.shard_id, dropped, qid)
                return mutated
            # FORGE_RESULT -- also the fallback when there is nothing
            # to drop or replay.
            cands = mutated.get("candidates", [])
            ball = cands[-1] if cands else qid + 1
            if ball not in cands:
                cands.append(ball)
                mutated["candidates"] = cands
            for field_name in ("pm_positive", "verified"):
                ids = mutated.get(field_name, [])
                if ball not in ids:
                    ids.append(ball)
                    mutated[field_name] = ids
            mutated.setdefault("matches", {}).setdefault(
                str(ball), []).append('"forged-by-rogue-shard"')
            logger.warning("shard %d: ROGUE forging a match on ball %d "
                           "of q%d", self.spec.shard_id, ball, qid)
            return mutated
        return payload


# ----------------------------------------------------------------------
# process entry point + local cluster management
# ----------------------------------------------------------------------
def run_shard(spec: ShardSpec, conn) -> None:
    """Child-process entry: build, bind, report the port, serve forever."""

    async def _amain() -> None:
        server = ShardServer(spec)
        await server.start()
        conn.send(server.port)
        conn.close()
        await server.serve_forever()

    try:
        asyncio.run(_amain())
    except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
        pass


@dataclass
class ShardHandle:
    """The parent's view of one spawned shard."""

    spec: ShardSpec
    process: multiprocessing.process.BaseProcess
    port: int

    @property
    def shard_id(self) -> int:
        return self.spec.shard_id

    @property
    def host(self) -> str:
        return self.spec.host

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL -- the crash the gateway's re-placement recovers from."""
        self.process.kill()


class LocalCluster:
    """Spawn/terminate a set of shard processes (context manager).

    Uses the fork start method where available (Linux): the data graph is
    shared copy-on-write, so an 8-shard cluster does not hold 8 pickled
    graph copies in flight during spawn.  Shutdown always runs: SIGTERM,
    join with a timeout, SIGKILL stragglers -- a crashed caller must not
    leak worker processes (asserted by the CI shard-smoke sweep).
    """

    def __init__(self, specs: list[ShardSpec]) -> None:
        ids = [s.shard_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ShardError(f"duplicate shard ids in {ids}")
        self.specs = specs
        self.handles: list[ShardHandle] = []
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def start(self) -> list[ShardHandle]:
        pending = []
        try:
            for spec in self.specs:
                parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                process = self._ctx.Process(
                    target=run_shard, args=(spec, child_conn),
                    name=f"repro-shard-{spec.shard_id}")
                process.start()
                child_conn.close()
                pending.append((spec, process, parent_conn))
            for spec, process, parent_conn in pending:
                if not parent_conn.poll(SPAWN_TIMEOUT_SECONDS):
                    raise ShardError(
                        f"shard {spec.shard_id} did not report a port "
                        f"within {SPAWN_TIMEOUT_SECONDS:.0f}s")
                port = parent_conn.recv()
                parent_conn.close()
                self.handles.append(ShardHandle(spec=spec, process=process,
                                                port=port))
        except BaseException:
            for _, process, _ in pending:
                if process.is_alive():
                    process.kill()
                process.join(timeout=5)
            self.handles = []
            raise
        return self.handles

    def shutdown(self) -> None:
        for handle in self.handles:
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self.handles:
            handle.process.join(timeout=10)
            if handle.process.is_alive():  # pragma: no cover
                handle.process.kill()
                handle.process.join(timeout=5)

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def make_shard_specs(graph: LabeledGraph, config: PriloConfig, shards: int,
                     *, engine: str = "prilo",
                     store_root: str | None = None,
                     journal_dir: str | None = None,
                     queue_bound: int | None = None,
                     vnodes: int = DEFAULT_VNODES,
                     salt: str = DEFAULT_SALT,
                     rogue_shards: tuple[int, ...] = (),
                     rogue_policy: ChaosPolicy | None = None,
                     ) -> list[ShardSpec]:
    """Specs for an N-shard loopback cluster over one graph/config.

    ``store_root`` names a ``store shard-split`` output directory; each
    shard gets its ``shard-<i>`` pack.  ``journal_dir`` gives each shard
    its own write-ahead journal file.  ``rogue_shards`` names the
    members that get the malicious-SP mutation layer (``rogue_policy``),
    everyone else serves honestly.
    """
    from pathlib import Path

    rogue_set = {int(s) for s in rogue_shards}
    unknown = rogue_set - set(range(shards))
    if unknown:
        raise ShardError(f"rogue shard ids {sorted(unknown)} outside "
                         f"0..{shards - 1}")
    if rogue_set and rogue_policy is None:
        raise ShardError("rogue_shards named without a rogue_policy")
    specs = []
    for shard_id in range(shards):
        store = None
        if store_root is not None:
            store = str(Path(store_root) / f"shard-{shard_id}")
        journal = None
        if journal_dir is not None:
            journal = str(Path(journal_dir) / f"shard-{shard_id}.wal")
        specs.append(ShardSpec(
            shard_id=shard_id, graph=graph, config=config, engine=engine,
            store_root=store, journal_path=journal,
            queue_bound=queue_bound, vnodes=vnodes, salt=salt,
            rogue=rogue_policy if shard_id in rogue_set else None))
    return specs


__all__ = [
    "ENGINE_CLASSES",
    "LocalCluster",
    "ShardError",
    "ShardHandle",
    "ShardServer",
    "ShardSpec",
    "make_shard_specs",
    "redact_error",
    "run_shard",
]
