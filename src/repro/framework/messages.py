"""Typed protocol messages for the steps of Fig. 4.

Each dataclass is exactly what crosses one arrow of the system model; the
role classes only ever exchange these objects, which keeps the information
flow auditable: everything SP-visible here is either public metadata
(labels, sizes, ball identifiers) or ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregation import BallCiphertextResult
from repro.core.bf_pruning import BFPruneOutcome, BFQueryMessage
from repro.core.ssim_verification import SsimBallVerdict
from repro.core.table_pruning import PruneTable
from repro.crypto.cgbe import CGBECiphertext, CGBEPublicParams
from repro.graph.labeled_graph import Label
from repro.graph.query import Semantics


@dataclass
class EncryptedQueryMessage:
    """Step 2: the user's encrypted query.

    Public parts: the semantics, diameter, vertex labels (``V_Q``,
    ``Sigma_Q``, ``L_Q`` are not privacy targets -- Sec. 2.3 protects only
    the adjacency structure), CGBE public parameters, and the plaintext
    first columns of the pruning tables.  Secret parts: every CGBE
    ciphertext and the sealed BF encodings.
    """

    semantics: Semantics
    diameter: int
    vertex_labels: tuple[Label, ...]
    params: CGBEPublicParams
    encrypted_matrix: list[list[CGBECiphertext]]
    c_one: CGBECiphertext
    twiglet_tables: list[PruneTable] | None = None
    path_tables: list[PruneTable] | None = None
    neighbor_tables: list[PruneTable] | None = None
    bf_message: BFQueryMessage | None = None

    @property
    def size(self) -> int:
        return len(self.vertex_labels)

    @property
    def alphabet(self) -> frozenset[Label]:
        return frozenset(self.vertex_labels)


@dataclass
class PruningMessages:
    """Step 3: per-ball pruning messages (``PM = (c_sgx, c_phe)``)."""

    bf: dict[int, BFPruneOutcome] = field(default_factory=dict)
    twiglet: dict[int, BallCiphertextResult] = field(default_factory=dict)
    path: dict[int, BallCiphertextResult] = field(default_factory=dict)
    neighbor: dict[int, BallCiphertextResult] = field(default_factory=dict)


@dataclass(frozen=True)
class DecryptedPMs:
    """Step 4: what the user reveals to the Dealer -- ball ids with their
    positive/negative bits (and nothing about *why*)."""

    ball_ids: tuple[int, ...]
    positives: frozenset[int]

    @property
    def theta(self) -> float:
        if not self.ball_ids:
            return 0.0
        return len(self.positives) / len(self.ball_ids)


@dataclass
class EvaluationResult:
    """Step 7: one ball's ciphertext result with its measured cost.

    ``verdict`` is hom/sub-iso's :class:`BallCiphertextResult` or ssim's
    :class:`SsimBallVerdict`.  ``cost_seconds`` feeds the schedule
    simulator; ``player`` records who produced it.
    """

    ball_id: int
    verdict: BallCiphertextResult | SsimBallVerdict
    cost_seconds: float
    player: int
    cmms: int = 0
    bypassed: bool = False


@dataclass(frozen=True)
class EncryptedBallBlob:
    """Steps 1/9: an encrypted serialized ball as stored on the Dealer."""

    ball_id: int
    blob: bytes

    @property
    def size(self) -> int:
        return len(self.blob)
