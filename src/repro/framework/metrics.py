"""Measurement helpers for the experiments.

* :class:`Stopwatch` -- a tiny accumulating timer used around each protocol
  phase.
* :class:`PhaseTimings` -- the per-phase wall-clock record every engine run
  returns (preprocessing, PM computation, decryption, evaluation, matching).
* :class:`ConfusionCounts` -- TP/FP/TN/FN bookkeeping for pruning methods;
  ``ppcr`` is the paper's *predicted positive condition rate*
  ``(TP + FP) / (TP + TN + FP + FN)`` (Sec. 6.3), the x-axis of Figs. 16-18.
* :class:`MessageSizes` -- byte counters for the EXP-1 message-size report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crypto.ops import OpCounter
from repro.framework.faults import FaultReport


class StopwatchError(RuntimeError):
    """A :class:`Stopwatch` exited more times than it was entered."""


class Stopwatch:
    """Accumulating wall-clock timer: ``with watch: ...`` adds to total.

    Re-entrancy-safe: nested/overlapping ``with`` blocks on the same
    watch (streaming verification re-entering a phase timer) count the
    *outermost* interval once instead of silently clobbering the start
    stamp and under-counting.  An ``__exit__`` without a matching
    ``__enter__`` raises :class:`StopwatchError` -- unbalanced use is a
    caller bug, never a measurement to swallow.
    """

    def __init__(self) -> None:
        self.total = 0.0
        self._started: float | None = None
        self._depth = 0

    def __enter__(self) -> "Stopwatch":
        if self._depth == 0:
            self._started = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._depth == 0 or self._started is None:
            raise StopwatchError(
                "Stopwatch.__exit__ without a matching __enter__")
        self._depth -= 1
        if self._depth == 0:
            self.total += time.perf_counter() - self._started
            self._started = None


@dataclass
class PhaseTimings:
    """Wall-clock seconds per protocol phase of one query run."""

    user_preprocessing: float = 0.0
    pm_computation: float = 0.0       # player-side BF + twiglet (sum)
    pm_bf: float = 0.0
    pm_twiglet: float = 0.0
    user_pm_decryption: float = 0.0
    sequence_generation: float = 0.0
    evaluation: float = 0.0           # Alg. 1 + Alg. 2 over all balls (sum)
    user_result_decryption: float = 0.0
    user_matching: float = 0.0

    def total(self) -> float:
        return (self.user_preprocessing + self.pm_computation
                + self.user_pm_decryption + self.sequence_generation
                + self.evaluation + self.user_result_decryption
                + self.user_matching)


@dataclass
class ConfusionCounts:
    """Pruning-quality bookkeeping relative to ground truth.

    *Positive* means "the pruning kept the ball"; *true* means "the ball
    really contains a match".  Sound pruning has fn == 0 by construction
    (asserted throughout the tests).
    """

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def record(self, predicted_positive: bool, actually_positive: bool) -> None:
        if predicted_positive and actually_positive:
            self.tp += 1
        elif predicted_positive:
            self.fp += 1
        elif actually_positive:
            self.fn += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def ppcr(self) -> float:
        """Predicted positive condition rate (== the paper's theta)."""
        if self.total == 0:
            return 0.0
        return (self.tp + self.fp) / self.total

    @property
    def pruned(self) -> int:
        """Balls the method discarded."""
        return self.tn + self.fn

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(tp=self.tp + other.tp, fp=self.fp + other.fp,
                               tn=self.tn + other.tn, fn=self.fn + other.fn)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one bounded cache.

    Shared by every size-bounded cache in the pipeline (the batch server's
    ``CMMCache``, the per-ball ``CiphertextPowerCache`` pads, the CGBE
    decrypt memo) so benchmark JSON can report cache behavior uniformly.
    ``entries``/``weight``/``capacity`` describe the cache's current fill
    at snapshot time; the counters accumulate.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    weight: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another snapshot's counters (fill state: take max)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.entries = max(self.entries, other.entries)
        self.weight = max(self.weight, other.weight)
        self.capacity = max(self.capacity, other.capacity)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated since the ``since`` snapshot (fill state
        reports the current values)."""
        return CacheStats(hits=self.hits - since.hits,
                          misses=self.misses - since.misses,
                          evictions=self.evictions - since.evictions,
                          entries=self.entries, weight=self.weight,
                          capacity=self.capacity)

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions, entries=self.entries,
                          weight=self.weight, capacity=self.capacity)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": self.entries,
                "weight": self.weight, "capacity": self.capacity,
                "hit_rate": round(self.hit_rate, 6)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheStats":
        """Rebuild from :meth:`as_dict` output (``hit_rate`` is derived
        and ignored) -- the gateway reconstitutes per-shard counters from
        wire verdicts through this."""
        return cls(hits=int(payload.get("hits", 0)),
                   misses=int(payload.get("misses", 0)),
                   evictions=int(payload.get("evictions", 0)),
                   entries=int(payload.get("entries", 0)),
                   weight=int(payload.get("weight", 0)),
                   capacity=int(payload.get("capacity", 0)))


@dataclass
class JournalCounters:
    """Write-ahead journal and admission-control counters of one run.

    ``checkpoints_written`` counts durable records this run appended;
    ``records_replayed``/``shares_skipped`` count what a resume reused
    instead of recomputing; ``replayed_fault_events`` counts pre-crash
    fault events merged into this run's report (each journaled event is
    replayed exactly once); ``tampered_records`` counts journal records
    that failed their keyed digest and were re-evaluated instead;
    ``pm_replays`` counts pruning-message records a resume reused (each
    gated on ``reattestations`` fresh enclave attestations -- journaled
    BF verdicts are never trusted by a new process without one).
    """

    checkpoints_written: int = 0
    records_replayed: int = 0
    shares_skipped: int = 0
    shares_evaluated: int = 0
    tampered_records: int = 0
    replayed_fault_events: int = 0
    deadline_hits: int = 0
    pm_replays: int = 0
    reattestations: int = 0

    def merge(self, other: "JournalCounters") -> None:
        self.checkpoints_written += other.checkpoints_written
        self.records_replayed += other.records_replayed
        self.shares_skipped += other.shares_skipped
        self.shares_evaluated += other.shares_evaluated
        self.tampered_records += other.tampered_records
        self.replayed_fault_events += other.replayed_fault_events
        self.deadline_hits += other.deadline_hits
        self.pm_replays += other.pm_replays
        self.reattestations += other.reattestations

    def __bool__(self) -> bool:
        return any((self.checkpoints_written, self.records_replayed,
                    self.shares_skipped, self.shares_evaluated,
                    self.tampered_records, self.replayed_fault_events,
                    self.deadline_hits, self.pm_replays,
                    self.reattestations))

    def as_dict(self) -> dict:
        return {
            "checkpoints_written": self.checkpoints_written,
            "records_replayed": self.records_replayed,
            "shares_skipped": self.shares_skipped,
            "shares_evaluated": self.shares_evaluated,
            "tampered_records": self.tampered_records,
            "replayed_fault_events": self.replayed_fault_events,
            "deadline_hits": self.deadline_hits,
            "pm_replays": self.pm_replays,
            "reattestations": self.reattestations,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalCounters":
        """Rebuild from :meth:`as_dict` output (wire verdicts)."""
        fields = ("checkpoints_written", "records_replayed",
                  "shares_skipped", "shares_evaluated", "tampered_records",
                  "replayed_fault_events", "deadline_hits", "pm_replays",
                  "reattestations")
        return cls(**{name: int(payload.get(name, 0)) for name in fields})

    def summary_line(self) -> str:
        return (f"checkpoints={self.checkpoints_written} "
                f"replayed={self.records_replayed} "
                f"skipped={self.shares_skipped} "
                f"evaluated={self.shares_evaluated} "
                f"tampered={self.tampered_records} "
                f"pm_replays={self.pm_replays} "
                f"deadline_hits={self.deadline_hits}")


@dataclass
class MessageSizes:
    """Byte counters for EXP-1 (Sec. 6.2)."""

    encrypted_matrix: int = 0
    twiglet_tables: int = 0
    bf_encodings: int = 0
    pruning_messages: int = 0
    ciphertext_results: int = 0
    retrieved_balls: int = 0

    def user_to_sp(self) -> int:
        return self.encrypted_matrix + self.twiglet_tables + self.bf_encodings

    def sp_to_user(self) -> int:
        return (self.pruning_messages + self.ciphertext_results
                + self.retrieved_balls)

    def add(self, field_name: str, nbytes: int) -> None:
        setattr(self, field_name, getattr(self, field_name) + nbytes)

    def as_dict(self) -> dict:
        return dict(vars(self))


#: Serving-layer name for the per-run byte counters: trace spans and the
#: metrics exporters speak of "communication volume" (the EXP-1 framing),
#: the engine internals of "message sizes".  Same class.
CommunicationVolume = MessageSizes


#: Separator between a cache's base name and its shard qualifier.  Cache
#: labels never contain ``@`` (they are short fixed identifiers), so the
#: split in :func:`base_cache_name` is unambiguous.
_SHARD_SCOPE_SEP = "@shard"


def scoped_cache_name(name: str, shard: int | str) -> str:
    """``"cmm", 0 -> "cmm@shard0"`` -- the gateway's per-shard cache key."""
    return f"{name}{_SHARD_SCOPE_SEP}{shard}"


def base_cache_name(name: str) -> str:
    """Strip a shard qualifier (identity for unqualified names)."""
    return name.split(_SHARD_SCOPE_SEP, 1)[0]


@dataclass
class RunMetrics:
    """Everything a single engine run measured.

    ``timings.evaluation`` stays the *sum* of per-ball costs (comparable
    across backends); the executor fields record how the work was actually
    scheduled: which backend ran, how many workers it had, and each
    worker's measured wall-clock for the evaluation and PM fan-outs.
    """

    timings: PhaseTimings = field(default_factory=PhaseTimings)
    sizes: MessageSizes = field(default_factory=MessageSizes)
    candidate_balls: int = 0
    positives_after_pruning: int = 0
    bypassed_balls: int = 0
    cmms_enumerated: int = 0
    per_ball_eval_cost: dict[int, float] = field(default_factory=dict)
    per_ball_pm_cost: dict[int, float] = field(default_factory=dict)
    executor_backend: str = "serial"
    workers: int = 1
    per_worker_eval_wall: dict[int, float] = field(default_factory=dict)
    per_worker_pm_wall: dict[int, float] = field(default_factory=dict)
    #: Per-cache statistics recorded during this run, keyed by cache name
    #: (e.g. ``"cmm"`` for the batch server's signature cache, ``"pad"``
    #: for the verification pad-power caches, ``"decrypt"`` for the user's
    #: CGBE unblinding memo).
    caches: dict[str, CacheStats] = field(default_factory=dict)
    #: Every fault injected, detected, retried, recovered or degraded-past
    #: during this run (chaos-injected and genuine alike).  On a resumed
    #: run this *includes* the journaled pre-crash events, replayed
    #: exactly once -- see :class:`JournalCounters`.
    faults: FaultReport = field(default_factory=FaultReport)
    #: Write-ahead journal / crash-resume counters (all zero when the run
    #: is not journal-backed).
    journal: JournalCounters = field(default_factory=JournalCounters)
    #: Crypto op counts (modmul / modexp / window-table builds) bucketed
    #: by ``(phase, role)`` -- the worker-side counters merged with the
    #: user-side phases, so benchmark deltas are attributable op-by-op.
    ops: OpCounter = field(default_factory=OpCounter)

    def record_cache(self, name: str, stats: CacheStats) -> None:
        """Merge one cache's counters into this run's record."""
        existing = self.caches.get(name)
        if existing is None:
            self.caches[name] = stats.snapshot()
        else:
            existing.merge(stats)

    def record_shard_caches(self, shard: int | str,
                            caches: dict[str, CacheStats]) -> None:
        """Record one shard's cache counters under shard-qualified keys.

        Two shards legitimately run caches with the *same* label ("cmm",
        "pad", "decrypt"); merging them under the bare name would sum
        counters but silently ``max`` the fill state (entries/weight/
        capacity) across unrelated caches -- per-shard fill would be
        unrecoverable.  Qualifying the key (``cmm@shard0``) keeps each
        shard's counters intact; :meth:`cache_totals` re-aggregates by
        base name when only fleet-wide sums matter.
        """
        for name, stats in caches.items():
            self.record_cache(scoped_cache_name(name, shard), stats)

    def cache_totals(self) -> dict[str, CacheStats]:
        """Caches aggregated by base name (shard qualifiers stripped) --
        counter fields are exact fleet-wide sums; fill-state fields are
        per-shard maxima, not sums, by :meth:`CacheStats.merge`."""
        totals: dict[str, CacheStats] = {}
        for name, stats in self.caches.items():
            base = base_cache_name(name)
            existing = totals.get(base)
            if existing is None:
                totals[base] = stats.snapshot()
            else:
                existing.merge(stats)
        return totals

    @property
    def eval_wall_seconds(self) -> float:
        """Real elapsed seconds of the evaluation fan-out: the slowest
        worker under a parallel backend, the sum under the serial one."""
        if not self.per_worker_eval_wall:
            return 0.0
        walls = self.per_worker_eval_wall.values()
        return max(walls) if self.workers > 1 else sum(walls)
