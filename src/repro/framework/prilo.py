"""The Prilo engine -- Alg. 3 end to end.

:class:`Prilo` wires the four parties together and runs the three generic
steps (candidate enumeration, query verification, query matching) without
any of the Prilo* optimizations: no pruning messages, and RSG ordering.
:class:`repro.framework.prilo_star.PriloStar` flips the optimization
switches on the same machinery.

``run`` returns a :class:`QueryResult` holding the matches, the simulated
schedule (the paper's time-to-results metrics), and the per-phase
measurements that every benchmark consumes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace

from repro.core.bf_pruning import BFConfig
from repro.core.retrieval import PlayerSequence, rsg_sequences
from repro.crypto.keys import UserKeyring
from repro.framework.faults import (
    ChaosPolicy,
    FaultAction,
    FaultInjector,
    FaultKind,
    FaultReport,
    RecoveryPolicy,
)
from repro.framework.messages import (
    DecryptedPMs,
    EncryptedQueryMessage,
    EvaluationResult,
    PruningMessages,
)
from repro.framework.executor import (
    EXECUTOR_BACKENDS,
    BallExecutor,
    EvaluationShare,
    PreparedShare,
    create_executor,
    partition_shares,
)
from repro.framework.metrics import MessageSizes, RunMetrics, Stopwatch
from repro.framework.roles import DataOwner, Dealer, Player, User, merge_pms
from repro.framework.simulator import ScheduleOutcome, simulate_schedule
from repro.graph.ball import Ball
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.query import Query, QueryLabelView, Semantics

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PriloConfig:
    """Engine configuration (defaults follow Sec. 6.1 where practical).

    The paper's CGBE uses 32-bit q/r over a 4096-bit public value; those are
    available via :meth:`paper_crypto`, while the default 2048-bit modulus
    keeps pure-Python arithmetic snappy with identical semantics.
    """

    k_players: int = 4
    modulus_bits: int = 2048
    q_bits: int = 32
    r_bits: int = 32
    radii: tuple[int, ...] = (1, 2, 3, 4)
    use_bf: bool = False
    use_twiglet: bool = False
    use_path: bool = False
    use_neighbor: bool = False
    use_ssg: bool = False
    twiglet_h: int = 3
    bf: BFConfig = field(default_factory=BFConfig)
    enumeration_limit: int = 2_000
    cmm_bound_bypass: int = 2_000
    label_strategy: str = "max"  # Alg. 3 line 2 ("max") or ablation "min"
    seed: int = 0
    #: SP-side evaluation backend: "serial" (in-process, the default) or
    #: "process" (one OS process per Player sequence).  Results are
    #: identical; only the measured wall-clocks differ.
    executor: str = "serial"
    #: Worker processes for the "process" backend (ignored by "serial").
    parallelism: int = 1
    #: Seeded fault-injection schedule (None: chaos off).  Injection
    #: decisions are pure functions of the policy, so the same policy
    #: replays the same faults on any backend.
    chaos: ChaosPolicy | None = None
    #: Retry/timeout/degradation knobs of the recovery layer (always
    #: active -- genuine faults take the same paths chaos exercises).
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)

    def __post_init__(self) -> None:
        # Eager validation with actionable messages: a bad backend name or
        # worker count must fail here, not deep inside pool setup.
        if (isinstance(self.k_players, bool)
                or not isinstance(self.k_players, int)
                or self.k_players < 1):
            raise ValueError(
                f"k_players must be an int >= 1 (one Player server per "
                f"sequence); got {self.k_players!r}")
        if self.executor not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.executor!r}; choose one "
                f"of {EXECUTOR_BACKENDS}")
        if (isinstance(self.parallelism, bool)
                or not isinstance(self.parallelism, int)
                or self.parallelism < 1):
            raise ValueError(
                f"parallelism must be an int >= 1 (worker processes for "
                f"the 'process' backend); got {self.parallelism!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int; got {self.seed!r}")
        if self.chaos is not None and not isinstance(self.chaos,
                                                     ChaosPolicy):
            raise ValueError(
                f"chaos must be a repro.framework.faults.ChaosPolicy or "
                f"None; got {type(self.chaos).__name__} "
                f"({self.chaos!r}) -- e.g. "
                f"ChaosPolicy(seed=7, fault_rate=0.1)")
        if not isinstance(self.recovery, RecoveryPolicy):
            raise ValueError(
                f"recovery must be a repro.framework.faults.RecoveryPolicy;"
                f" got {type(self.recovery).__name__}")
        if self.use_ssg and self.k_players < 2:
            raise ValueError("SSG requires at least two players (Sec. 2.3)")
        if not 3 <= self.twiglet_h <= 5:
            raise ValueError("twiglet_h must be in 3..5 (Sec. 4.2)")
        if self.enumeration_limit < 1 or self.cmm_bound_bypass < 1:
            raise ValueError("enumeration bounds must be positive")
        if not self.radii:
            raise ValueError("at least one ball radius is required")

    def paper_crypto(self) -> "PriloConfig":
        """The exact Sec. 6.1 CGBE parameters (slower in pure Python)."""
        return replace(self, modulus_bits=4096, q_bits=32, r_bits=32)

    @property
    def any_pruning(self) -> bool:
        return (self.use_bf or self.use_twiglet or self.use_path
                or self.use_neighbor)


@dataclass
class QueryResult:
    """Everything one engine run produced."""

    query: Query
    chosen_label: Label
    candidate_ids: tuple[int, ...]
    pm_positive_ids: frozenset[int]
    pm_per_method: dict[str, dict[int, bool]]
    verified_ids: frozenset[int]
    matches: dict[int, list[LabeledGraph]]
    sequences: list[PlayerSequence]
    sequence_mode: str
    schedule: ScheduleOutcome
    metrics: RunMetrics

    @property
    def num_matches(self) -> int:
        return sum(len(found) for found in self.matches.values())

    @property
    def match_ball_ids(self) -> frozenset[int]:
        return frozenset(self.matches)

    def stream_matches(self):
        """Matches in the order the user could have computed them.

        Prilo*'s selling point is early results: positives' ciphertext
        results reach the Dealer (and hence the user) at their schedule
        completion times, long before the full evaluation ends.  Yields
        ``(completion_seconds, ball_id, matching_subgraphs)`` sorted by
        completion time; the first tuple's time is the paper's
        time-to-first-results metric (Fig. 2(b)).
        """
        ordered = sorted(
            ((self.schedule.completion[ball_id], ball_id)
             for ball_id in self.matches
             if ball_id in self.schedule.completion))
        for when, ball_id in ordered:
            yield when, ball_id, self.matches[ball_id]

    def time_to_first_match(self) -> float | None:
        """When the earliest match-containing ball's result was available
        (None if the query has no matches)."""
        for when, _, _ in self.stream_matches():
            return when
        return None


class Prilo:
    """The baseline framework: Alg. 3 with RSG ordering and no pruning."""

    #: Optimization switches applied by ``setup`` on top of user config.
    _OVERRIDES = dict(use_bf=False, use_twiglet=False, use_ssg=False)

    def __init__(self, graph: LabeledGraph, config: PriloConfig,
                 keyring: UserKeyring | None = None, store=None) -> None:
        self.graph = graph
        self.config = config
        #: Optional :class:`repro.storage.ArtifactStore` -- the persisted
        #: offline outsourcing output.  When set, the ball index and the
        #: Dealer's encrypted blobs load from disk (staleness-checked in
        #: DataOwner) and twiglet pruning reuses the stored per-ball
        #: feature sets.
        self.store = store
        #: Setup-time fault events (e.g. a stale store degraded past);
        #: replayed into every run's ``RunMetrics.faults``.
        self.fault_log = FaultReport()
        if store is not None:
            from repro.storage import StoreError

            try:
                self.owner = DataOwner(graph, config.radii, seed=config.seed,
                                       store=store)
            except StoreError as exc:
                if not config.recovery.recompute_on_stale_store:
                    raise
                # The persisted outsourcing output no longer matches the
                # live graph/radii/key.  Serving it would be wrong; with
                # the opt-in fallback we log the degradation and rebuild
                # the offline artifacts in-process instead.
                self.fault_log.record(FaultKind.STORE_STALE, "store",
                                      FaultAction.DETECTED, detail=str(exc))
                self.fault_log.record(
                    FaultKind.STORE_STALE, "store", FaultAction.DEGRADED,
                    detail="stale artifact store ignored; recomputing "
                           "offline outsourcing in-process")
                logger.warning("stale artifact store (%s); recomputing", exc)
                self.store = None
                self.owner = DataOwner(graph, config.radii, seed=config.seed)
            else:
                store.quarantine_enabled = config.recovery.quarantine_store
        else:
            self.owner = DataOwner(graph, config.radii, seed=config.seed)
        if keyring is None:
            keyring = UserKeyring.generate(modulus_bits=config.modulus_bits,
                                           seed=config.seed)
            # Regenerate with the configured q/r sizes.
            from repro.crypto.cgbe import CGBE

            keyring.cgbe = CGBE.generate(modulus_bits=config.modulus_bits,
                                         q_bits=config.q_bits,
                                         r_bits=config.r_bits,
                                         seed=config.seed)
        self.user = User(keyring)
        self.owner.grant_key(self.user)
        self.index = self.owner.player_store()
        self.players = [Player(i, self.index)
                        for i in range(config.k_players)]
        self.dealer = Dealer(self.owner.dealer_store())
        self.executor: BallExecutor = create_executor(
            config.executor, config.parallelism, recovery=config.recovery)

    def close(self) -> None:
        """Shut down the evaluation backend (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "Prilo":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @classmethod
    def setup(cls, graph: LabeledGraph, config: PriloConfig | None = None,
              store=None, **overrides: object) -> "Prilo":
        """Build an engine; keyword overrides patch the default config."""
        if config is None:
            config = PriloConfig()
        merged = {**cls._OVERRIDES, **overrides}
        config = replace(config, **merged)  # type: ignore[arg-type]
        return cls(graph, config, store=store)

    # ------------------------------------------------------------------
    def candidate_balls(self, query: Query) -> tuple[Label, list[Ball]]:
        """Alg. 3 lines 2-4: pick the label and collect candidate balls."""
        if self.config.label_strategy == "max":
            label = query.most_frequent_label(self.graph)
        elif self.config.label_strategy == "min":
            label = query.least_frequent_label(self.graph)
        else:
            raise ValueError(
                f"unknown label strategy {self.config.label_strategy!r}")
        if query.diameter not in self.config.radii:
            raise ValueError(
                f"query diameter {query.diameter} is not covered by the "
                f"precomputed ball radii {self.config.radii}")
        return label, list(self.index.candidate_balls(label, query.diameter))

    # ------------------------------------------------------------------
    def run(self, query: Query, *, cmm_cache=None) -> QueryResult:
        """Answer one query end to end.

        ``cmm_cache`` (a :class:`repro.framework.server.CMMCache`) routes
        evaluation through the prepared (pattern-grouped) verification
        path; results are value-identical to the streaming path.  The
        batch server passes its shared cache here; ``None`` keeps the
        faithful single-pass pipeline.
        """
        config = self.config
        metrics = RunMetrics()
        metrics.executor_backend = self.executor.backend
        metrics.workers = self.executor.workers
        timings = metrics.timings
        sizes = metrics.sizes

        # One injector per run, recording straight into this run's
        # metrics; threaded through the executor, the store, the user's
        # channel establishment and the final retrieval.
        injector = FaultInjector(config.chaos, report=metrics.faults)
        metrics.faults.extend(self.fault_log.events)
        self.executor.install_faults(injector)
        if self.store is not None:
            self.store.install_faults(injector)

        label, candidates = self.candidate_balls(query)
        metrics.candidate_balls = len(candidates)
        candidate_ids = tuple(ball.ball_id for ball in candidates)
        by_id = {ball.ball_id: ball for ball in candidates}
        logger.info("run %s: label=%r, %d candidate balls",
                    query, label, len(candidates))

        # Step 2: the user encrypts the query.
        message, state = self.user.prepare_query(
            query,
            use_bf=config.use_bf,
            use_twiglet=config.use_twiglet,
            use_path=config.use_path,
            use_neighbor=config.use_neighbor,
            twiglet_h=config.twiglet_h,
            bf_config=config.bf,
            enclaves=[p.enclave for p in self.players],
            sizes=sizes,
            timings=timings,
            faults=injector,
            degrade_bf=config.recovery.degrade_bf,
        )

        # Steps 2-4: pruning messages (Prilo* only).
        pms = PruningMessages()
        pm_per_method: dict[str, dict[int, bool]] = {}
        if config.any_pruning:
            self._compute_pms(message, candidates, pms, metrics)
            decrypted, pm_per_method = self.user.decrypt_pms(
                pms, candidate_ids, state, timings)
            self._account_pm_sizes(message, pms, sizes)
        else:
            decrypted = DecryptedPMs(ball_ids=tuple(sorted(candidate_ids)),
                                     positives=frozenset(candidate_ids))
        metrics.positives_after_pruning = len(decrypted.positives)
        if config.any_pruning:
            logger.info("pruning kept %d/%d balls (theta=%.3f)",
                        len(decrypted.positives), len(candidate_ids),
                        decrypted.theta)

        # Steps 5-6: the Dealer orders the balls.
        with Stopwatch() as watch:
            sequences, mode = self.dealer.generate_sequences(
                decrypted, config.k_players, use_ssg=config.use_ssg,
                seed=config.seed)
            sequences = self._replan_dropouts(sequences, injector)
        timings.sequence_generation += watch.total

        # Step 7: Players evaluate (each unique ball once; dummies reuse
        # the measured cost in the schedule replay).
        results = self._evaluate(message, sequences, by_id, metrics,
                                 cmm_cache=cmm_cache)
        sizes.add("ciphertext_results",
                  sum(self._verdict_bytes(r) for r in results.values()))

        # Schedule replay: the paper's time-to-results metrics.
        schedule = simulate_schedule(sequences, metrics.per_ball_eval_cost,
                                     decrypted.positives)

        # Steps 8-9: decrypt, retrieve, match.
        verified = self.user.decrypt_results(results.values(), timings)
        verified &= set(decrypted.positives)
        matches = self.user.retrieve_and_match(
            verified, self.dealer, query, sizes, timings, faults=injector)
        if metrics.faults:
            logger.info("faults: %s", metrics.faults.summary_line())
        logger.info("verified %d balls, %d contain matches "
                    "(%s mode, all positives by t=%.4fs of %.4fs)",
                    len(verified), len(matches), mode,
                    schedule.all_positives, schedule.makespan)

        return QueryResult(
            query=query,
            chosen_label=label,
            candidate_ids=candidate_ids,
            pm_positive_ids=frozenset(decrypted.positives),
            pm_per_method=pm_per_method,
            verified_ids=frozenset(verified),
            matches=matches,
            sequences=sequences,
            sequence_mode=mode,
            schedule=schedule,
            metrics=metrics,
        )

    #: Serving-layer name for the end-to-end call (``QueryBatchEngine``
    #: and the docs speak of "answering" queries).
    answer = run

    # ------------------------------------------------------------------
    def _replan_dropouts(self, sequences: list[PlayerSequence],
                         injector: FaultInjector) -> list[PlayerSequence]:
        """Dealer-side dropout recovery (step 5.5, chaos-driven).

        Players the schedule declares unreachable are removed and any ball
        that only *they* would have evaluated is re-planned across the
        survivors (a fresh RSG partition appended to their sequences; SSG's
        dummy duplication already covers most orphans).  At least one
        Player always survives.  Per-ball evaluation is a pure function of
        ``(message, ball)``, so re-planning changes scheduling only --
        never answers.  ``scp`` is dropped on extended sequences: the
        cutoff bookkeeping no longer describes them.
        """
        policy = injector.policy
        if (not injector.active
                or FaultKind.PLAYER_DROPOUT not in policy.kinds
                or not self.config.recovery.replan_dropouts):
            return sequences
        players = sorted({seq.player for seq in sequences})
        dropped = [p for p in players
                   if policy.decides(FaultKind.PLAYER_DROPOUT,
                                     f"player:{p}")]
        if not dropped:
            return sequences
        survivors = [p for p in players if p not in dropped]
        if not survivors:
            # Losing every Player is not recoverable by re-planning; keep
            # the lowest id alive (the deterministic choice).
            survivors = [dropped.pop(0)]
        for p in dropped:
            injector.record(FaultKind.PLAYER_DROPOUT, f"player:{p}",
                            FaultAction.INJECTED,
                            detail="player unreachable at evaluation start")
            injector.record(FaultKind.PLAYER_DROPOUT, f"player:{p}",
                            FaultAction.DETECTED,
                            detail="sequence delivery failed")
        surviving = [seq for seq in sequences if seq.player in survivors]
        covered: set[int] = set()
        for seq in surviving:
            covered.update(seq.sequence)
        orphans: set[int] = set()
        for seq in sequences:
            if seq.player in dropped:
                orphans.update(seq.sequence)
        orphans -= covered
        if orphans:
            extra = rsg_sequences(sorted(orphans), len(survivors),
                                  seed=self.config.seed)
            merged: list[PlayerSequence] = []
            for index, seq in enumerate(surviving):
                addition = extra[index % len(extra)].sequence
                if addition:
                    seq = PlayerSequence(
                        player=seq.player,
                        sequence=seq.sequence + addition,
                        scp=None)
                merged.append(seq)
            surviving = merged
        injector.record(
            FaultKind.PLAYER_DROPOUT,
            "players:" + ",".join(str(p) for p in dropped),
            FaultAction.DEGRADED,
            detail=f"re-planned {len(orphans)} orphaned balls across "
                   f"{len(survivors)} surviving players")
        return surviving

    # ------------------------------------------------------------------
    def _compute_pms(self, message: EncryptedQueryMessage,
                     candidates: list[Ball], pms: PruningMessages,
                     metrics: RunMetrics) -> None:
        """Partition the candidates round-robin over the players and fan
        the shares out over the configured executor."""
        partition: list[list[Ball]] = [[] for _ in self.players]
        for index, ball in enumerate(candidates):
            partition[index % len(self.players)].append(ball)
        shares = [
            (player.player_id, player.enclave, tuple(share))
            for player, share in zip(self.players, partition)
            if share
        ]
        twiglet_features = None
        if (self.store is not None and self.config.use_twiglet
                and self.store.twiglet_h == self.config.twiglet_h):
            twiglet_features = self.store.twiglet_features()
        outcomes = self.executor.compute_pm_shares(
            message, shares,
            bf_config=self.config.bf,
            twiglet_h=self.config.twiglet_h,
            twiglet_features=twiglet_features)
        timings = metrics.timings
        for outcome in outcomes:
            merge_pms(pms, outcome.pms)
            metrics.per_ball_pm_cost.update(outcome.pm_costs)
            timings.pm_bf += outcome.timings.pm_bf
            timings.pm_twiglet += outcome.timings.pm_twiglet
            timings.pm_computation += outcome.timings.pm_computation
            metrics.per_worker_pm_wall[outcome.player] = outcome.wall_seconds

    def _evaluate(self, message: EncryptedQueryMessage,
                  sequences: list[PlayerSequence],
                  by_id: dict[int, Ball],
                  metrics: RunMetrics,
                  cmm_cache=None) -> dict[int, EvaluationResult]:
        """Step 7 over the configured executor.

        The Dealer's sequences are deduplicated into disjoint shares
        (first sequence to mention a ball owns it -- exactly the order the
        old serial loop evaluated in) and merged back first-evaluation-wins
        by ball id, so the result dict is identical for every backend.

        With ``cmm_cache`` set (and non-SSIM semantics), each share is
        prepared through the cache and verified pattern-grouped; the
        enumeration time paid on cache misses is folded into the per-ball
        evaluation cost so the schedule replay stays honest.
        """
        shares = partition_shares(sequences, by_id, len(self.players))
        build_costs: dict[int, float] = {}
        if cmm_cache is not None and message.semantics is not Semantics.SSIM:
            outcomes = self._verify_prepared(message, shares, cmm_cache,
                                             metrics, build_costs)
        else:
            outcomes = self.executor.evaluate_shares(
                message, shares,
                enumeration_limit=self.config.enumeration_limit,
                cmm_bound_bypass=self.config.cmm_bound_bypass)
        results: dict[int, EvaluationResult] = {}
        for outcome in outcomes:
            metrics.per_worker_eval_wall[outcome.player] = max(
                metrics.per_worker_eval_wall.get(outcome.player, 0.0),
                outcome.wall_seconds)
            for name, stats in outcome.caches.items():
                metrics.record_cache(name, stats)
            for result in outcome.results:
                if result.ball_id in results:
                    continue
                results[result.ball_id] = result
                cost = (result.cost_seconds
                        + build_costs.get(result.ball_id, 0.0))
                metrics.per_ball_eval_cost[result.ball_id] = cost
                metrics.timings.evaluation += cost
                metrics.cmms_enumerated += result.cmms
                if result.bypassed:
                    metrics.bypassed_balls += 1
        return results

    def _verify_prepared(self, message: EncryptedQueryMessage,
                         shares: list[EvaluationShare], cmm_cache,
                         metrics: RunMetrics,
                         build_costs: dict[int, float]) -> list:
        """Prepared-path fan-out: distill each share's balls through the
        CMM cache, then verify the pattern groups on the executor."""
        config = self.config
        view = QueryLabelView(labels=message.vertex_labels,
                              diameter=message.diameter,
                              semantics=message.semantics)
        before = cmm_cache.stats.snapshot()
        prepared_shares: list[PreparedShare] = []
        for share in shares:
            prepared = []
            for ball in share.balls:
                prepared.append(cmm_cache.prepare(
                    view, ball,
                    enumeration_limit=config.enumeration_limit,
                    cmm_bound_bypass=config.cmm_bound_bypass))
                build_costs[ball.ball_id] = cmm_cache.last_build_seconds
            prepared_shares.append(
                PreparedShare(player=share.player, balls=tuple(prepared)))
        outcomes = self.executor.verify_shares(message, prepared_shares)
        metrics.record_cache("cmm", cmm_cache.stats.delta(before))
        return outcomes

    # ------------------------------------------------------------------
    def _account_pm_sizes(self, message: EncryptedQueryMessage,
                          pms: PruningMessages, sizes: MessageSizes) -> None:
        ct_bytes = self.user.keyring.cgbe.ciphertext_bytes()
        total = 0
        for outcome in pms.bf.values():
            total += len(outcome.c_sgx) if outcome.c_sgx else 1
        for batch in (pms.twiglet, pms.path, pms.neighbor):
            for result in batch.values():
                total += result.ciphertext_count() * ct_bytes
        sizes.add("pruning_messages", total)

    def _verdict_bytes(self, result: EvaluationResult) -> int:
        ct_bytes = self.user.keyring.cgbe.ciphertext_bytes()
        verdict = result.verdict
        if hasattr(verdict, "per_vertex"):
            count = sum(r.ciphertext_count() for r in verdict.per_vertex)
            count += verdict.center.ciphertext_count()
        else:
            count = verdict.ciphertext_count()
        return max(count, 1) * ct_bytes
