"""The Prilo engine -- Alg. 3 end to end.

:class:`Prilo` wires the four parties together and runs the three generic
steps (candidate enumeration, query verification, query matching) without
any of the Prilo* optimizations: no pruning messages, and RSG ordering.
:class:`repro.framework.prilo_star.PriloStar` flips the optimization
switches on the same machinery.

``run`` returns a :class:`QueryResult` holding the matches, the simulated
schedule (the paper's time-to-results metrics), and the per-phase
measurements that every benchmark consumes.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from dataclasses import dataclass, field, replace

from repro.core.bf_pruning import BFConfig
from repro.core.retrieval import PlayerSequence, rsg_sequences
from repro.crypto.kernels import KernelConfig
from repro.crypto.keys import UserKeyring
from repro.crypto.ops import counting
from repro.framework.faults import (
    ChaosPolicy,
    FaultAction,
    FaultInjector,
    FaultKind,
    FaultReport,
    RecoveryPolicy,
)
from repro.framework.messages import (
    DecryptedPMs,
    EncryptedQueryMessage,
    EvaluationResult,
    PruningMessages,
)
from repro.framework.executor import (
    EXECUTOR_BACKENDS,
    BallExecutor,
    EvaluationShare,
    PreparedShare,
    ShareOutcome,
    create_executor,
    eval_share_key,
    partition_shares,
    verify_share_key,
)
from repro.framework.metrics import MessageSizes, RunMetrics, Stopwatch
from repro.framework.roles import DataOwner, Dealer, Player, User, merge_pms
from repro.observability.spans import (
    NULL_TRACER,
    ROLE_DEALER,
    ROLE_ENCLAVE,
    ROLE_SP,
    ROLE_USER,
)
from repro.framework.simulator import ScheduleOutcome, simulate_schedule
from repro.graph.ball import Ball
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.query import Query, QueryLabelView, Semantics
from repro.tee.enclave import Enclave

logger = logging.getLogger(__name__)


class AdmissionError(RuntimeError):
    """A query was refused before evaluation (admission control)."""


class BallBudgetExceeded(AdmissionError):
    """The query's candidate set exceeds the configured ball budget --
    admitting it would monopolize the serving engine."""

    def __init__(self, candidates: int, budget: int) -> None:
        super().__init__(
            f"query admits {candidates} candidate balls, over the "
            f"configured ball budget of {budget}")
        self.candidates = candidates
        self.budget = budget


class DeadlineExceeded(RuntimeError):
    """A query ran past its per-query deadline.

    Carries the partial :class:`RunMetrics` (everything measured up to
    the abort point) so overload reports stay observable -- and, under a
    journal, every share completed before the deadline is already a
    durable checkpoint a later resume can reuse.
    """

    def __init__(self, where: str, elapsed_ms: float,
                 budget_ms: float) -> None:
        super().__init__(
            f"deadline of {budget_ms:.0f}ms exceeded {where} "
            f"(elapsed {elapsed_ms:.0f}ms)")
        self.where = where
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms
        self.metrics: RunMetrics | None = None


class Deadline:
    """A per-query wall-clock budget, checked at protocol boundaries
    (phase transitions and executor-share completions)."""

    def __init__(self, budget_ms: float) -> None:
        if budget_ms < 0:
            raise ValueError("deadline budget must be >= 0 milliseconds")
        self.budget_ms = budget_ms
        self._started = time.perf_counter()

    @property
    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self._started) * 1000.0

    @property
    def expired(self) -> bool:
        return self.elapsed_ms > self.budget_ms

    def check(self, where: str) -> None:
        elapsed = self.elapsed_ms
        if elapsed > self.budget_ms:
            raise DeadlineExceeded(where, elapsed, self.budget_ms)


@dataclass(frozen=True)
class PriloConfig:
    """Engine configuration (defaults follow Sec. 6.1 where practical).

    The paper's CGBE uses 32-bit q/r over a 4096-bit public value; those are
    available via :meth:`paper_crypto`, while the default 2048-bit modulus
    keeps pure-Python arithmetic snappy with identical semantics.
    """

    k_players: int = 4
    modulus_bits: int = 2048
    q_bits: int = 32
    r_bits: int = 32
    radii: tuple[int, ...] = (1, 2, 3, 4)
    use_bf: bool = False
    use_twiglet: bool = False
    use_path: bool = False
    use_neighbor: bool = False
    use_ssg: bool = False
    twiglet_h: int = 3
    bf: BFConfig = field(default_factory=BFConfig)
    enumeration_limit: int = 2_000
    cmm_bound_bypass: int = 2_000
    label_strategy: str = "max"  # Alg. 3 line 2 ("max") or ablation "min"
    seed: int = 0
    #: SP-side evaluation backend: "serial" (in-process, the default) or
    #: "process" (one OS process per Player sequence).  Results are
    #: identical; only the measured wall-clocks differ.
    executor: str = "serial"
    #: Worker processes for the "process" backend (ignored by "serial").
    parallelism: int = 1
    #: Seeded fault-injection schedule (None: chaos off).  Injection
    #: decisions are pure functions of the policy, so the same policy
    #: replays the same faults on any backend.
    chaos: ChaosPolicy | None = None
    #: Retry/timeout/degradation knobs of the recovery layer (always
    #: active -- genuine faults take the same paths chaos exercises).
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: Per-query wall-clock deadline in milliseconds (None: unbounded).
    #: Checked at phase boundaries and after every executor share; an
    #: expired query raises :class:`DeadlineExceeded` with its partial
    #: metrics attached.
    deadline_ms: float | None = None
    #: Admission bound on candidate balls per query (None: unbounded).
    #: A query whose candidate set exceeds the budget is refused with
    #: :class:`BallBudgetExceeded` before any evaluation starts.
    ball_budget: int | None = None
    #: Crypto kernel selection (:class:`repro.crypto.kernels.KernelConfig`).
    #: Kernels are value-identical to the naive fold -- this knob exists
    #: for A/B benchmarking (``KernelConfig.naive()``) and window tuning,
    #: and never changes answers.
    kernels: KernelConfig = field(default_factory=KernelConfig)
    #: Untrusted-shard serving: shards attach per-query result
    #: certificates (Merkle completeness proof + keyed soundness
    #: digests, :mod:`repro.framework.verify`) to every verdict, and the
    #: gateway verifies them before merging.  A scheduling/trust knob
    #: like ``executor`` -- answers are identical either way -- so it is
    #: deliberately *not* part of the journal config fingerprint.
    verify_serving: bool = True

    def __post_init__(self) -> None:
        # Eager validation with actionable messages: a bad backend name or
        # worker count must fail here, not deep inside pool setup.
        if (isinstance(self.k_players, bool)
                or not isinstance(self.k_players, int)
                or self.k_players < 1):
            raise ValueError(
                f"k_players must be an int >= 1 (one Player server per "
                f"sequence); got {self.k_players!r}")
        if self.executor not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.executor!r}; choose one "
                f"of {EXECUTOR_BACKENDS}")
        if (isinstance(self.parallelism, bool)
                or not isinstance(self.parallelism, int)
                or self.parallelism < 1):
            raise ValueError(
                f"parallelism must be an int >= 1 (worker processes for "
                f"the 'process' backend); got {self.parallelism!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int; got {self.seed!r}")
        if self.chaos is not None and not isinstance(self.chaos,
                                                     ChaosPolicy):
            raise ValueError(
                f"chaos must be a repro.framework.faults.ChaosPolicy or "
                f"None; got {type(self.chaos).__name__} "
                f"({self.chaos!r}) -- e.g. "
                f"ChaosPolicy(seed=7, fault_rate=0.1)")
        if not isinstance(self.recovery, RecoveryPolicy):
            raise ValueError(
                f"recovery must be a repro.framework.faults.RecoveryPolicy;"
                f" got {type(self.recovery).__name__}")
        if not isinstance(self.kernels, KernelConfig):
            raise ValueError(
                f"kernels must be a repro.crypto.kernels.KernelConfig; "
                f"got {type(self.kernels).__name__} -- e.g. "
                f"KernelConfig() or KernelConfig.naive()")
        if self.use_ssg and self.k_players < 2:
            raise ValueError("SSG requires at least two players (Sec. 2.3)")
        if not 3 <= self.twiglet_h <= 5:
            raise ValueError("twiglet_h must be in 3..5 (Sec. 4.2)")
        if self.enumeration_limit < 1 or self.cmm_bound_bypass < 1:
            raise ValueError("enumeration bounds must be positive")
        if not self.radii:
            raise ValueError("at least one ball radius is required")
        if self.deadline_ms is not None and (
                not isinstance(self.deadline_ms, (int, float))
                or isinstance(self.deadline_ms, bool)
                or self.deadline_ms <= 0):
            raise ValueError(
                f"deadline_ms must be positive milliseconds or None "
                f"(no deadline); got {self.deadline_ms!r}")
        if self.ball_budget is not None and (
                isinstance(self.ball_budget, bool)
                or not isinstance(self.ball_budget, int)
                or self.ball_budget < 1):
            raise ValueError(
                f"ball_budget must be an int >= 1 or None (unbounded); "
                f"got {self.ball_budget!r}")
        if not isinstance(self.verify_serving, bool):
            raise ValueError(
                f"verify_serving must be a bool (attach result "
                f"certificates to shard verdicts); "
                f"got {self.verify_serving!r}")

    def paper_crypto(self) -> "PriloConfig":
        """The exact Sec. 6.1 CGBE parameters (slower in pure Python)."""
        return replace(self, modulus_bits=4096, q_bits=32, r_bits=32)

    @property
    def any_pruning(self) -> bool:
        return (self.use_bf or self.use_twiglet or self.use_path
                or self.use_neighbor)


@dataclass
class QueryResult:
    """Everything one engine run produced."""

    query: Query
    chosen_label: Label
    candidate_ids: tuple[int, ...]
    pm_positive_ids: frozenset[int]
    pm_per_method: dict[str, dict[int, bool]]
    verified_ids: frozenset[int]
    matches: dict[int, list[LabeledGraph]]
    sequences: list[PlayerSequence]
    sequence_mode: str
    schedule: ScheduleOutcome
    metrics: RunMetrics

    @property
    def num_matches(self) -> int:
        return sum(len(found) for found in self.matches.values())

    @property
    def match_ball_ids(self) -> frozenset[int]:
        return frozenset(self.matches)

    def stream_matches(self):
        """Matches in the order the user could have computed them.

        Prilo*'s selling point is early results: positives' ciphertext
        results reach the Dealer (and hence the user) at their schedule
        completion times, long before the full evaluation ends.  Yields
        ``(completion_seconds, ball_id, matching_subgraphs)`` sorted by
        completion time; the first tuple's time is the paper's
        time-to-first-results metric (Fig. 2(b)).
        """
        ordered = sorted(
            ((self.schedule.completion[ball_id], ball_id)
             for ball_id in self.matches
             if ball_id in self.schedule.completion))
        for when, ball_id in ordered:
            yield when, ball_id, self.matches[ball_id]

    def time_to_first_match(self) -> float | None:
        """When the earliest match-containing ball's result was available
        (None if the query has no matches)."""
        for when, _, _ in self.stream_matches():
            return when
        return None


class Prilo:
    """The baseline framework: Alg. 3 with RSG ordering and no pruning."""

    #: Optimization switches applied by ``setup`` on top of user config.
    _OVERRIDES = dict(use_bf=False, use_twiglet=False, use_ssg=False)

    def __init__(self, graph: LabeledGraph, config: PriloConfig,
                 keyring: UserKeyring | None = None, store=None,
                 tracer=None) -> None:
        self.graph = graph
        self.config = config
        #: Role-scoped span tracer (:mod:`repro.observability`).  Kept
        #: out of the frozen config on purpose: tracing must not change
        #: the journal's config fingerprint or any answer-shaping state.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional :class:`repro.storage.ArtifactStore` -- the persisted
        #: offline outsourcing output.  When set, the ball index and the
        #: Dealer's encrypted blobs load from disk (staleness-checked in
        #: DataOwner) and twiglet pruning reuses the stored per-ball
        #: feature sets.
        self.store = store
        #: Setup-time fault events (e.g. a stale store degraded past);
        #: replayed into every run's ``RunMetrics.faults``.
        self.fault_log = FaultReport()
        if store is not None:
            from repro.storage import StoreError

            try:
                self.owner = DataOwner(graph, config.radii, seed=config.seed,
                                       store=store)
            except StoreError as exc:
                if not config.recovery.recompute_on_stale_store:
                    raise
                # The persisted outsourcing output no longer matches the
                # live graph/radii/key.  Serving it would be wrong; with
                # the opt-in fallback we log the degradation and rebuild
                # the offline artifacts in-process instead.
                self.fault_log.record(FaultKind.STORE_STALE, "store",
                                      FaultAction.DETECTED, detail=str(exc))
                self.fault_log.record(
                    FaultKind.STORE_STALE, "store", FaultAction.DEGRADED,
                    detail="stale artifact store ignored; recomputing "
                           "offline outsourcing in-process")
                logger.warning("stale artifact store (%s); recomputing", exc)
                self.store = None
                self.owner = DataOwner(graph, config.radii, seed=config.seed)
            else:
                store.quarantine_enabled = config.recovery.quarantine_store
        else:
            self.owner = DataOwner(graph, config.radii, seed=config.seed)
        if keyring is None:
            keyring = UserKeyring.generate(modulus_bits=config.modulus_bits,
                                           seed=config.seed)
            # Regenerate with the configured q/r sizes.
            from repro.crypto.cgbe import CGBE

            keyring.cgbe = CGBE.generate(modulus_bits=config.modulus_bits,
                                         q_bits=config.q_bits,
                                         r_bits=config.r_bits,
                                         seed=config.seed)
        self.user = User(keyring)
        self.owner.grant_key(self.user)
        self.index = self.owner.player_store()
        self.players = [Player(i, self.index)
                        for i in range(config.k_players)]
        self.dealer = Dealer(self.owner.dealer_store())
        self.executor: BallExecutor = create_executor(
            config.executor, config.parallelism, recovery=config.recovery)
        #: Optional ball-id predicate restricting candidate enumeration --
        #: the sharded gateway's placement hook (see ``install_ball_filter``).
        self.ball_filter = None

    def install_ball_filter(self, predicate) -> None:
        """Restrict this engine to candidate balls whose id satisfies
        ``predicate`` (``None`` removes the restriction).

        The filter is applied *before* a ball is materialized, so a shard
        engine backed by a sliced pack never loads balls outside its
        placement.  Filtering is sound because per-ball evaluation is
        independent across balls: the union of results over a partition
        of the ball space equals the unpartitioned run (the sharded
        gateway's merge relies on exactly this; see
        ``tests/test_gateway.py``).  Note the filter changes the
        *answer-visible* candidate set, so it is serving-topology state,
        never something to install on a standalone engine mid-batch.
        """
        self.ball_filter = predicate

    def install_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a span tracer post-construction.

        The serving layer builds engines first and decides on tracing
        later; ``_run`` re-installs ``self.tracer`` into the executor,
        the store and every enclave on each query, so swapping here is
        enough."""
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def refresh(self, index=None) -> None:
        """Rebind every role to the (mutated) live graph after a delta.

        ``ArtifactStore.apply_delta`` updates the store and mutates
        ``self.graph`` in place, which moves the graph's mutation epoch
        and correctly strands the old ball index
        (:class:`repro.graph.ball.StaleIndexError`).  This rebuilds the
        owner/index/players/dealer stack against the new graph state --
        a store-backed owner re-checks the (now updated) manifest, a
        no-store caller passes ``index`` carrying the delta-stable id
        assignment.  The user keyring, executor, tracer and ball filter
        survive: none of them depend on ball contents.
        """
        self.owner = DataOwner(self.graph, self.config.radii,
                               seed=self.config.seed, store=self.store,
                               index=index)
        if self.store is not None:
            self.store.quarantine_enabled = (
                self.config.recovery.quarantine_store)
        self.owner.grant_key(self.user)
        self.index = self.owner.player_store()
        self.players = [Player(i, self.index)
                        for i in range(self.config.k_players)]
        self.dealer = Dealer(self.owner.dealer_store())

    def close(self) -> None:
        """Shut down the evaluation backend (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "Prilo":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @classmethod
    def setup(cls, graph: LabeledGraph, config: PriloConfig | None = None,
              store=None, tracer=None, **overrides: object) -> "Prilo":
        """Build an engine; keyword overrides patch the default config."""
        if config is None:
            config = PriloConfig()
        merged = {**cls._OVERRIDES, **overrides}
        config = replace(config, **merged)  # type: ignore[arg-type]
        return cls(graph, config, store=store, tracer=tracer)

    # ------------------------------------------------------------------
    def candidate_balls(self, query: Query) -> tuple[Label, list[Ball]]:
        """Alg. 3 lines 2-4: pick the label and collect candidate balls."""
        if self.config.label_strategy == "max":
            label = query.most_frequent_label(self.graph)
        elif self.config.label_strategy == "min":
            label = query.least_frequent_label(self.graph)
        else:
            raise ValueError(
                f"unknown label strategy {self.config.label_strategy!r}")
        if query.diameter not in self.config.radii:
            raise ValueError(
                f"query diameter {query.diameter} is not covered by the "
                f"precomputed ball radii {self.config.radii}")
        if self.ball_filter is None:
            return label, list(self.index.candidate_balls(label,
                                                          query.diameter))
        # Filter on ids before materializing: same center order as
        # BallIndex.candidate_balls, but non-owned balls are never loaded
        # (a shard pack does not even hold them).
        keep = self.ball_filter
        balls = [
            self.index.ball(v, query.diameter)
            for v in sorted(self.graph.vertices_with_label(label), key=repr)
            if keep(self.index.ball_id(v, query.diameter))
        ]
        return label, balls

    # ------------------------------------------------------------------
    def run(self, query: Query, *, cmm_cache=None, journal=None,
            query_key: str = "", resume=None,
            deadline: Deadline | None = None) -> QueryResult:
        """Answer one query end to end.

        ``cmm_cache`` (a :class:`repro.framework.server.CMMCache`) routes
        evaluation through the prepared (pattern-grouped) verification
        path; results are value-identical to the streaming path.  The
        batch server passes its shared cache here; ``None`` keeps the
        faithful single-pass pipeline.

        ``journal`` (a :class:`repro.storage.journal.RunJournal`) turns
        every executor-share completion into a durable checkpoint keyed
        by ``query_key``; ``resume`` (the query's replayed
        :class:`~repro.storage.journal.QueryJournalState`) feeds those
        checkpoints back so only unjournaled shares are re-evaluated.
        ``deadline`` aborts the query with :class:`DeadlineExceeded` when
        its wall-clock budget runs out (defaults to a fresh deadline when
        ``config.deadline_ms`` is set).
        """
        config = self.config
        if deadline is None and config.deadline_ms is not None:
            deadline = Deadline(config.deadline_ms)
        metrics = RunMetrics()
        metrics.executor_backend = self.executor.backend
        metrics.workers = self.executor.workers
        try:
            return self._run(query, metrics, cmm_cache=cmm_cache,
                             journal=journal, query_key=query_key,
                             resume=resume, deadline=deadline)
        except DeadlineExceeded as exc:
            metrics.journal.deadline_hits += 1
            exc.metrics = metrics
            raise

    def _run(self, query: Query, metrics: RunMetrics, *, cmm_cache,
             journal, query_key: str, resume,
             deadline: Deadline | None) -> QueryResult:
        config = self.config
        timings = metrics.timings
        sizes = metrics.sizes

        # One injector per run, recording straight into this run's
        # metrics; threaded through the executor, the store, the user's
        # channel establishment and the final retrieval.
        injector = FaultInjector(config.chaos, report=metrics.faults)
        metrics.faults.extend(self.fault_log.events)
        self.executor.install_faults(injector)
        if self.store is not None:
            self.store.install_faults(injector)

        # Tracing rides the same installation points as fault injection:
        # the tracer travels engine -> executor/store/enclaves per run, so
        # a serving layer that swaps tracers between queries stays coherent.
        tracer = self.tracer
        self.executor.install_tracer(tracer)
        if self.store is not None:
            self.store.install_tracer(tracer)
        for player in self.players:
            player.enclave.tracer = tracer

        label, candidates = self.candidate_balls(query)
        metrics.candidate_balls = len(candidates)
        tracer.event("candidate_enumeration", ROLE_SP,
                     candidates=len(candidates), diameter=query.diameter)
        if (config.ball_budget is not None
                and len(candidates) > config.ball_budget):
            raise BallBudgetExceeded(len(candidates), config.ball_budget)
        candidate_ids = tuple(ball.ball_id for ball in candidates)
        by_id = {ball.ball_id: ball for ball in candidates}
        logger.info("run %s: label=%r, %d candidate balls",
                    query, label, len(candidates))

        # Step 2: the user encrypts the query.
        with tracer.span("query_preprocessing", ROLE_USER) as prep_span, \
                counting(metrics.ops, "user_preprocessing", "user"):
            message, state = self.user.prepare_query(
                query,
                use_bf=config.use_bf,
                use_twiglet=config.use_twiglet,
                use_path=config.use_path,
                use_neighbor=config.use_neighbor,
                twiglet_h=config.twiglet_h,
                bf_config=config.bf,
                enclaves=[p.enclave for p in self.players],
                sizes=sizes,
                timings=timings,
                faults=injector,
                degrade_bf=config.recovery.degrade_bf,
            )
            prep_span.set("bytes", sizes.encrypted_matrix
                          + sizes.twiglet_tables + sizes.bf_encodings)

        if deadline is not None:
            deadline.check("after query preprocessing")

        # Steps 2-4: pruning messages (Prilo* only).  A resume replays
        # the journaled (already Dealer-visible) PM verdicts instead of
        # recomputing them -- but only after every player's enclave
        # re-attests; a failed attestation falls back to recomputation.
        pms = PruningMessages()
        pm_per_method: dict[str, dict[int, bool]] = {}
        if config.any_pruning:
            replayed = self._replayed_pms(metrics, resume, injector,
                                          query_key)
            if replayed is not None:
                decrypted, pm_per_method = replayed
                tracer.event("pm_replay", ROLE_SP, replayed=True,
                             balls=len(candidate_ids))
            else:
                self._compute_pms(message, candidates, pms, metrics)
                if config.use_bf:
                    tracer.event("bf_pruning", ROLE_ENCLAVE,
                                 duration_s=timings.pm_bf,
                                 balls=len(candidates))
                if config.use_twiglet:
                    tracer.event("twiglet_aggregation", ROLE_SP,
                                 duration_s=timings.pm_twiglet,
                                 balls=len(candidates))
                with counting(metrics.ops, "user_pm_decryption", "user"):
                    decrypted, pm_per_method = self.user.decrypt_pms(
                        pms, candidate_ids, state, timings)
                tracer.event("pm_decryption", ROLE_USER,
                             duration_s=timings.user_pm_decryption,
                             positives=len(decrypted.positives))
                self._account_pm_sizes(message, pms, sizes)
                self._journal_pms(journal, query_key, decrypted,
                                  pm_per_method, metrics, injector)
            if deadline is not None:
                deadline.check("after pruning messages")
        else:
            decrypted = DecryptedPMs(ball_ids=tuple(sorted(candidate_ids)),
                                     positives=frozenset(candidate_ids))
        metrics.positives_after_pruning = len(decrypted.positives)
        if config.any_pruning:
            logger.info("pruning kept %d/%d balls (theta=%.3f)",
                        len(decrypted.positives), len(candidate_ids),
                        decrypted.theta)

        # Steps 5-6: the Dealer orders the balls.
        with Stopwatch() as watch:
            sequences, mode = self.dealer.generate_sequences(
                decrypted, config.k_players, use_ssg=config.use_ssg,
                seed=config.seed)
            sequences = self._replan_dropouts(sequences, injector)
        timings.sequence_generation += watch.total
        # The Dealer legitimately sees the decrypted positives (step 4 of
        # the protocol); counts and mode are exactly its honest view.
        tracer.event("sequence_generation", ROLE_DEALER,
                     duration_s=watch.total, mode=mode,
                     sequences=len(sequences),
                     positives=len(decrypted.positives))

        if deadline is not None:
            deadline.check("after sequence generation")

        # Step 7: Players evaluate (each unique ball once; dummies reuse
        # the measured cost in the schedule replay).
        results = self._evaluate(message, sequences, by_id, metrics,
                                 cmm_cache=cmm_cache, journal=journal,
                                 query_key=query_key, resume=resume,
                                 deadline=deadline, injector=injector)
        sizes.add("ciphertext_results",
                  sum(self._verdict_bytes(r) for r in results.values()))
        tracer.event("evaluation", ROLE_SP,
                     duration_s=timings.evaluation,
                     balls=len(results), cmms=metrics.cmms_enumerated,
                     bypassed=metrics.bypassed_balls,
                     bytes=sizes.ciphertext_results)

        if deadline is not None:
            deadline.check("after evaluation")

        # Schedule replay: the paper's time-to-results metrics.
        schedule = simulate_schedule(sequences, metrics.per_ball_eval_cost,
                                     decrypted.positives)

        # Steps 8-9: decrypt, retrieve, match.
        with counting(metrics.ops, "user_result_decryption", "user"):
            verified = self.user.decrypt_results(results.values(), timings)
        verified &= set(decrypted.positives)
        tracer.event("result_decryption", ROLE_USER,
                     duration_s=timings.user_result_decryption,
                     balls=len(verified))
        matches = self.user.retrieve_and_match(
            verified, self.dealer, query, sizes, timings, faults=injector)
        # Localized retrieval: the Dealer observes which verified balls
        # the user pulls (the paper's accepted disclosure) -- the trace
        # records only their count and byte volume.
        tracer.event("ball_retrieval", ROLE_DEALER,
                     balls=len(verified), bytes=sizes.retrieved_balls)
        tracer.event("query_matching", ROLE_USER,
                     duration_s=timings.user_matching,
                     balls=len(matches))
        if metrics.faults:
            logger.info("faults: %s", metrics.faults.summary_line())
        logger.info("verified %d balls, %d contain matches "
                    "(%s mode, all positives by t=%.4fs of %.4fs)",
                    len(verified), len(matches), mode,
                    schedule.all_positives, schedule.makespan)

        return QueryResult(
            query=query,
            chosen_label=label,
            candidate_ids=candidate_ids,
            pm_positive_ids=frozenset(decrypted.positives),
            pm_per_method=pm_per_method,
            verified_ids=frozenset(verified),
            matches=matches,
            sequences=sequences,
            sequence_mode=mode,
            schedule=schedule,
            metrics=metrics,
        )

    #: Serving-layer name for the end-to-end call (``QueryBatchEngine``
    #: and the docs speak of "answering" queries).
    answer = run

    # ------------------------------------------------------------------
    def _replan_dropouts(self, sequences: list[PlayerSequence],
                         injector: FaultInjector) -> list[PlayerSequence]:
        """Dealer-side dropout recovery (step 5.5, chaos-driven).

        Players the schedule declares unreachable are removed and any ball
        that only *they* would have evaluated is re-planned across the
        survivors (a fresh RSG partition appended to their sequences; SSG's
        dummy duplication already covers most orphans).  At least one
        Player always survives.  Per-ball evaluation is a pure function of
        ``(message, ball)``, so re-planning changes scheduling only --
        never answers.  ``scp`` is dropped on extended sequences: the
        cutoff bookkeeping no longer describes them.
        """
        policy = injector.policy
        if (not injector.active
                or FaultKind.PLAYER_DROPOUT not in policy.kinds
                or not self.config.recovery.replan_dropouts):
            return sequences
        players = sorted({seq.player for seq in sequences})
        dropped = [p for p in players
                   if policy.decides(FaultKind.PLAYER_DROPOUT,
                                     f"player:{p}")]
        if not dropped:
            return sequences
        survivors = [p for p in players if p not in dropped]
        if not survivors:
            # Losing every Player is not recoverable by re-planning; keep
            # the lowest id alive (the deterministic choice).
            survivors = [dropped.pop(0)]
        for p in dropped:
            injector.record(FaultKind.PLAYER_DROPOUT, f"player:{p}",
                            FaultAction.INJECTED,
                            detail="player unreachable at evaluation start")
            injector.record(FaultKind.PLAYER_DROPOUT, f"player:{p}",
                            FaultAction.DETECTED,
                            detail="sequence delivery failed")
        surviving = [seq for seq in sequences if seq.player in survivors]
        covered: set[int] = set()
        for seq in surviving:
            covered.update(seq.sequence)
        orphans: set[int] = set()
        for seq in sequences:
            if seq.player in dropped:
                orphans.update(seq.sequence)
        orphans -= covered
        if orphans:
            extra = rsg_sequences(sorted(orphans), len(survivors),
                                  seed=self.config.seed)
            merged: list[PlayerSequence] = []
            for index, seq in enumerate(surviving):
                addition = extra[index % len(extra)].sequence
                if addition:
                    seq = PlayerSequence(
                        player=seq.player,
                        sequence=seq.sequence + addition,
                        scp=None)
                merged.append(seq)
            surviving = merged
        injector.record(
            FaultKind.PLAYER_DROPOUT,
            "players:" + ",".join(str(p) for p in dropped),
            FaultAction.DEGRADED,
            detail=f"re-planned {len(orphans)} orphaned balls across "
                   f"{len(survivors)} surviving players")
        return surviving

    # ------------------------------------------------------------------
    def _compute_pms(self, message: EncryptedQueryMessage,
                     candidates: list[Ball], pms: PruningMessages,
                     metrics: RunMetrics) -> None:
        """Partition the candidates round-robin over the players and fan
        the shares out over the configured executor."""
        partition: list[list[Ball]] = [[] for _ in self.players]
        for index, ball in enumerate(candidates):
            partition[index % len(self.players)].append(ball)
        shares = [
            (player.player_id, player.enclave, tuple(share))
            for player, share in zip(self.players, partition)
            if share
        ]
        twiglet_features = None
        if (self.store is not None and self.config.use_twiglet
                and self.store.twiglet_h == self.config.twiglet_h):
            twiglet_features = self.store.twiglet_features()
        outcomes = self.executor.compute_pm_shares(
            message, shares,
            bf_config=self.config.bf,
            twiglet_h=self.config.twiglet_h,
            twiglet_features=twiglet_features,
            kernels=self.config.kernels)
        timings = metrics.timings
        for outcome in outcomes:
            merge_pms(pms, outcome.pms)
            metrics.per_ball_pm_cost.update(outcome.pm_costs)
            timings.pm_bf += outcome.timings.pm_bf
            timings.pm_twiglet += outcome.timings.pm_twiglet
            timings.pm_computation += outcome.timings.pm_computation
            metrics.per_worker_pm_wall[outcome.player] = outcome.wall_seconds
            metrics.ops.merge(getattr(outcome, "ops", None))

    def _replayed_shares(self, keys: list[str], metrics: RunMetrics,
                         resume) -> dict[str, ShareOutcome]:
        """Journaled outcomes for this fan-out, keyed by share key.

        Each replayed record's fault events are merged into this run's
        report *here* -- once per share, exactly once per resumed run --
        which is what keeps post-resume fault totals equal to an
        uninterrupted run's (pre-crash injections are not recounted, not
        dropped).  A journaled payload of the wrong shape counts as
        tampered and the share is re-evaluated from the live pipeline.
        """
        completed: dict[str, ShareOutcome] = {}
        if resume is None or not resume.shares:
            return completed
        counters = metrics.journal
        for key in keys:
            entry = resume.shares.get(key)
            if entry is None:
                continue
            if not isinstance(entry.outcome, ShareOutcome):
                counters.tampered_records += 1
                metrics.faults.record(
                    FaultKind.JOURNAL_TAMPER, f"journal:{key}",
                    FaultAction.DETECTED,
                    detail="journaled share payload has the wrong shape; "
                           "re-evaluating")
                continue
            completed[key] = entry.outcome
            counters.records_replayed += 1
            counters.shares_skipped += 1
            for event in entry.events:
                metrics.faults.record(
                    event.get("kind", "unknown"), event.get("key", ""),
                    event.get("action", ""), detail=event.get("detail", ""),
                    attempt=event.get("attempt", 0))
                counters.replayed_fault_events += 1
        return completed

    #: Journal share key of a query's pruning-message record.  PM-phase
    #: fault events fire on these coordinate prefixes (sealed-channel
    #: re-requests, enclave ECALL retries, and the executor's ``pm:p<k>``
    #: share-level retry/timeout loop), so the record carries them for
    #: the exactly-once replay guarantee.  ``pm:`` was missing at first:
    #: a resumed run that replayed the PM record silently *dropped* the
    #: executor-level PM fault events, so post-resume fault totals
    #: under-counted the uninterrupted run's (regression:
    #: ``TestResumeTwiceCounters``).
    PM_SHARE_KEY = "pm"
    _PM_EVENT_PREFIXES = ("bf-blob:", "enclave-mem:", "pm:")

    def _journal_pms(self, journal, query_key: str, decrypted: DecryptedPMs,
                     pm_per_method: dict, metrics: RunMetrics,
                     injector: FaultInjector) -> None:
        """Checkpoint the decrypted PM verdicts.

        What is persisted -- ball ids with their positive bits and the
        per-method breakdown -- is exactly the :class:`DecryptedPMs` the
        user already reveals to the Dealer in step 4, so the journal
        widens the leakage surface by nothing.  The sealed ``c_sgx``
        blobs are deliberately *not* persisted: they only authenticate
        under the dead process's session key.
        """
        if journal is None:
            return
        events = [e.as_dict() for e in metrics.faults.events
                  if e.key.startswith(self._PM_EVENT_PREFIXES)]
        journal.append_share(query_key, self.PM_SHARE_KEY, {
            "ball_ids": tuple(decrypted.ball_ids),
            "positives": tuple(sorted(decrypted.positives)),
            "pm_per_method": {method: dict(verdicts)
                              for method, verdicts in pm_per_method.items()},
        }, events)
        metrics.journal.checkpoints_written += 1
        self._maybe_kill(injector, f"kill:{query_key}:{self.PM_SHARE_KEY}")

    def _replayed_pms(self, metrics: RunMetrics, resume,
                      injector: FaultInjector, query_key: str):
        """The journaled ``(DecryptedPMs, pm_per_method)`` of a resumed
        query, or ``None`` to recompute.

        Reuse is gated on re-attestation: the journaled BF verdicts were
        produced inside the previous process's enclaves, so each player's
        enclave must present a fresh attestation report with the expected
        measurement before a new process trusts them.  Any failed
        attestation (or a chaos-injected rejection) degrades to full PM
        recomputation -- sound, merely slower."""
        if resume is None:
            return None
        entry = resume.shares.get(self.PM_SHARE_KEY)
        if entry is None:
            return None
        counters = metrics.journal
        outcome = entry.outcome
        if (not isinstance(outcome, dict)
                or not isinstance(outcome.get("ball_ids"), tuple)
                or not isinstance(outcome.get("positives"), tuple)
                or not isinstance(outcome.get("pm_per_method"), dict)):
            counters.tampered_records += 1
            metrics.faults.record(
                FaultKind.JOURNAL_TAMPER, "journal:pm",
                FaultAction.DETECTED,
                detail="journaled PM payload has the wrong shape; "
                       "recomputing pruning messages")
            return None
        for player in self.players:
            key = f"reattest:{query_key}:p{player.player_id}"
            counters.reattestations += 1
            report = player.enclave.attest()
            if not report.verify(Enclave.APP_IDENTITY) or injector.should(
                    FaultKind.ENCLAVE_ATTESTATION, key,
                    detail="re-attestation rejected on resume"):
                injector.record(
                    FaultKind.ENCLAVE_ATTESTATION, key,
                    FaultAction.DEGRADED,
                    detail="resume re-attestation failed; journaled BF "
                           "verdicts discarded, recomputing pruning "
                           "messages")
                return None
        for event in entry.events:
            metrics.faults.record(
                event.get("kind", "unknown"), event.get("key", ""),
                event.get("action", ""), detail=event.get("detail", ""),
                attempt=event.get("attempt", 0))
            counters.replayed_fault_events += 1
        counters.records_replayed += 1
        counters.shares_skipped += 1
        counters.pm_replays += 1
        decrypted = DecryptedPMs(
            ball_ids=tuple(outcome["ball_ids"]),
            positives=frozenset(outcome["positives"]))
        pm_per_method = {method: dict(verdicts)
                         for method, verdicts
                         in outcome["pm_per_method"].items()}
        return decrypted, pm_per_method

    def _checkpoint_hook(self, metrics: RunMetrics, journal, query_key: str,
                         injector: FaultInjector,
                         deadline: Deadline | None):
        """The executor's ``on_result`` callback: journal each completed
        share durably (with the fault events observed since the previous
        checkpoint), fire the chaos kill if scheduled, then enforce the
        deadline.  ``None`` when neither a journal nor a deadline is
        active, so the hot path stays callback-free."""
        if journal is None and deadline is None:
            return None

        def hook(key: str, outcome: ShareOutcome) -> None:
            metrics.journal.shares_evaluated += 1
            if journal is not None:
                # Exact attribution: executor fault events carry the share
                # key they fired on, so each share's record journals its
                # own injections/retries and nothing else.  A journaled
                # share is never re-dispatched, so its events replay
                # exactly once across any number of crashes.
                events = [e.as_dict() for e in metrics.faults.events
                          if e.key == key]
                journal.append_share(query_key, key, outcome, events)
                metrics.journal.checkpoints_written += 1
                self._maybe_kill(injector, f"kill:{query_key}:{key}")
            if deadline is not None:
                deadline.check(f"after share {key}")

        return hook

    @staticmethod
    def _maybe_kill(injector: FaultInjector, coordinate: str) -> None:
        """The ``KILL_PROCESS`` chaos hook: die as ``kill -9`` would,
        immediately after a durable checkpoint.  The journal record for
        this coordinate is already fsync'd, so the kill point is exactly
        the crash-consistency boundary a resume must survive."""
        if not injector.active:
            return
        if injector.policy.decides(FaultKind.KILL_PROCESS, coordinate):
            logger.warning("chaos: SIGKILL at %s", coordinate)
            os.kill(os.getpid(), signal.SIGKILL)

    def _evaluate(self, message: EncryptedQueryMessage,
                  sequences: list[PlayerSequence],
                  by_id: dict[int, Ball],
                  metrics: RunMetrics,
                  cmm_cache=None, journal=None, query_key: str = "",
                  resume=None, deadline: Deadline | None = None,
                  injector: FaultInjector | None = None,
                  ) -> dict[int, EvaluationResult]:
        """Step 7 over the configured executor.

        The Dealer's sequences are deduplicated into disjoint shares
        (first sequence to mention a ball owns it -- exactly the order the
        old serial loop evaluated in) and merged back first-evaluation-wins
        by ball id, so the result dict is identical for every backend.

        With ``cmm_cache`` set (and non-SSIM semantics), each share is
        prepared through the cache and verified pattern-grouped; the
        enumeration time paid on cache misses is folded into the per-ball
        evaluation cost so the schedule replay stays honest.

        With a journal, every share completion is checkpointed durably;
        with ``resume``, journaled shares are spliced in without being
        dispatched (their enumeration is skipped too -- the prepared form
        is only built for shares that will actually verify).
        """
        if injector is None:
            injector = FaultInjector(report=metrics.faults)
        shares = partition_shares(sequences, by_id, len(self.players))
        prepared_path = (cmm_cache is not None
                         and message.semantics is not Semantics.SSIM)
        key_of = verify_share_key if prepared_path else eval_share_key
        keys = [key_of(i, share.player) for i, share in enumerate(shares)]
        completed = self._replayed_shares(keys, metrics, resume)
        on_result = self._checkpoint_hook(metrics, journal, query_key,
                                          injector, deadline)
        build_costs: dict[int, float] = {}
        if prepared_path:
            outcomes = self._verify_prepared(message, shares, cmm_cache,
                                             metrics, build_costs,
                                             completed=completed,
                                             on_result=on_result)
        else:
            outcomes = self.executor.evaluate_shares(
                message, shares,
                enumeration_limit=self.config.enumeration_limit,
                cmm_bound_bypass=self.config.cmm_bound_bypass,
                kernels=self.config.kernels,
                completed=completed, on_result=on_result)
        results: dict[int, EvaluationResult] = {}
        for outcome in outcomes:
            metrics.per_worker_eval_wall[outcome.player] = max(
                metrics.per_worker_eval_wall.get(outcome.player, 0.0),
                outcome.wall_seconds)
            for name, stats in outcome.caches.items():
                metrics.record_cache(name, stats)
            # getattr: journal-replayed outcomes from pre-accounting runs
            # carry no op counters; merge(None) is a no-op.
            metrics.ops.merge(getattr(outcome, "ops", None))
            for result in outcome.results:
                if result.ball_id in results:
                    continue
                results[result.ball_id] = result
                cost = (result.cost_seconds
                        + build_costs.get(result.ball_id, 0.0))
                metrics.per_ball_eval_cost[result.ball_id] = cost
                metrics.timings.evaluation += cost
                metrics.cmms_enumerated += result.cmms
                if result.bypassed:
                    metrics.bypassed_balls += 1
        return results

    def _verify_prepared(self, message: EncryptedQueryMessage,
                         shares: list[EvaluationShare], cmm_cache,
                         metrics: RunMetrics,
                         build_costs: dict[int, float],
                         completed: dict[str, ShareOutcome] | None = None,
                         on_result=None) -> list:
        """Prepared-path fan-out: distill each share's balls through the
        CMM cache, then verify the pattern groups on the executor.

        Shares whose outcome is already journaled (``completed``) keep
        their slot as an empty placeholder: the executor splices the
        journaled outcome back in without dispatching, and -- just as
        important for resume speed -- their balls never go through
        ``cmm_cache.prepare`` at all, so no enumeration is repaid.
        """
        config = self.config
        view = QueryLabelView(labels=message.vertex_labels,
                              diameter=message.diameter,
                              semantics=message.semantics)
        before = cmm_cache.stats.snapshot()
        prepared_shares: list[PreparedShare] = []
        for i, share in enumerate(shares):
            if completed and verify_share_key(i, share.player) in completed:
                prepared_shares.append(
                    PreparedShare(player=share.player, balls=()))
                continue
            prepared = []
            for ball in share.balls:
                prepared.append(cmm_cache.prepare(
                    view, ball,
                    enumeration_limit=config.enumeration_limit,
                    cmm_bound_bypass=config.cmm_bound_bypass))
                build_costs[ball.ball_id] = cmm_cache.last_build_seconds
            prepared_shares.append(
                PreparedShare(player=share.player, balls=tuple(prepared)))
        outcomes = self.executor.verify_shares(message, prepared_shares,
                                               kernels=config.kernels,
                                               completed=completed,
                                               on_result=on_result)
        metrics.record_cache("cmm", cmm_cache.stats.delta(before))
        return outcomes

    # ------------------------------------------------------------------
    def _account_pm_sizes(self, message: EncryptedQueryMessage,
                          pms: PruningMessages, sizes: MessageSizes) -> None:
        ct_bytes = self.user.keyring.cgbe.ciphertext_bytes()
        total = 0
        for outcome in pms.bf.values():
            total += len(outcome.c_sgx) if outcome.c_sgx else 1
        for batch in (pms.twiglet, pms.path, pms.neighbor):
            for result in batch.values():
                total += result.ciphertext_count() * ct_bytes
        sizes.add("pruning_messages", total)

    def _verdict_bytes(self, result: EvaluationResult) -> int:
        ct_bytes = self.user.keyring.cgbe.ciphertext_bytes()
        verdict = result.verdict
        if hasattr(verdict, "per_vertex"):
            count = sum(r.ciphertext_count() for r in verdict.per_vertex)
            count += verdict.center.ciphertext_count()
        else:
            count = verdict.ciphertext_count()
        return max(count, 1) * ct_bytes
