"""Consistent-hash ball placement for the sharded serving gateway.

The gateway partitions the *ball space* -- not the graph -- across N
serving shards: every shard holds the full (public, SP-owned) data graph
but evaluates only the candidate balls it owns, so the union of per-shard
verdicts over any member set is exactly the single-engine answer
(per-ball evaluation is a pure function of the query message and the
ball; see ``tests/test_gateway.py``).

Placement is a classic consistent-hash ring (sha256 points, virtual
nodes): every member contributes ``vnodes`` ring points, and a ball
belongs to the member owning the first ring point clockwise from the
ball's own hash point.  The property the gateway's recovery path relies
on is *minimal movement*: removing a member relocates exactly that
member's balls onto the survivors and moves nothing else -- so after a
shard death the orphaned slice is precisely ``owned(now) - owned(before)``
per survivor, and re-issuing a query with ``(members, prev_members)``
re-covers the dead shard's balls without recomputing anything a live
shard already answered.

Everything here is deterministic: the ring is a pure function of
``(salt, vnodes, member ids)`` and a ball's owner a pure function of the
ring and the ball id, so shards, the ``store shard-split`` cutter and the
gateway agree on placement without ever exchanging it.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path

#: Ring points contributed per member.  64 keeps the worst-case member
#: imbalance under ~20% on the paper's ball counts while the ring stays
#: tiny (N*64 points).
DEFAULT_VNODES = 64
#: Namespaces the ring's hash points; split packs record it so a serving
#: cluster cannot accidentally mix rings built under different salts.
DEFAULT_SALT = "prilo-ring"

#: File name of the placement manifest a ``store shard-split`` writes
#: next to the shard pack directories.
PLACEMENT_FILE = "placement.json"
_PLACEMENT_KIND = "prilo-placement/1"


class PlacementError(RuntimeError):
    """Invalid ring parameters or a malformed placement manifest."""


def _hash64(payload: str) -> int:
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer shard ids.

    ``owner_of`` is O(log(members * vnodes)); construction is cached by
    callers that see many member tuples (see :func:`ring_for`).
    """

    def __init__(self, members, *, vnodes: int = DEFAULT_VNODES,
                 salt: str = DEFAULT_SALT) -> None:
        members = tuple(sorted(set(int(m) for m in members)))
        if not members:
            raise PlacementError("a hash ring needs at least one member")
        if vnodes < 1:
            raise PlacementError("vnodes must be positive")
        self.members = members
        self.vnodes = vnodes
        self.salt = salt
        points: list[tuple[int, int]] = []
        for member in members:
            for replica in range(vnodes):
                points.append(
                    (_hash64(f"{salt}:member:{member}:{replica}"), member))
        # Sort by (point, member): the member tiebreak makes a (vanishingly
        # unlikely) point collision deterministic rather than input-ordered.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [m for _, m in points]

    def owner_of(self, ball_id: int) -> int:
        """The member owning ``ball_id`` (first ring point clockwise)."""
        point = _hash64(f"{self.salt}:ball:{ball_id}")
        i = bisect_left(self._points, point)
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def assign(self, ball_ids) -> dict[int, list[int]]:
        """Partition ``ball_ids`` by owner; every member gets an entry
        (possibly empty), ids stay in input order."""
        out: dict[int, list[int]] = {m: [] for m in self.members}
        for ball_id in ball_ids:
            out[self.owner_of(ball_id)].append(ball_id)
        return out


_RING_CACHE: dict[tuple, HashRing] = {}


def ring_for(members, *, vnodes: int = DEFAULT_VNODES,
             salt: str = DEFAULT_SALT) -> HashRing:
    """Memoized :class:`HashRing` -- shards re-derive rings per request
    (the member set travels with every query), so repeated construction
    for the same membership must be free."""
    key = (tuple(sorted(set(int(m) for m in members))), vnodes, salt)
    ring = _RING_CACHE.get(key)
    if ring is None:
        ring = HashRing(key[0], vnodes=vnodes, salt=salt)
        _RING_CACHE[key] = ring
    return ring


@dataclass(frozen=True)
class PlacementManifest:
    """What ``store shard-split`` records about a cut: the ring parameters
    (sufficient to re-derive every assignment) plus per-shard directory
    names and ball counts for operator inspection.

    ``graph_digest``/``radii`` pin the placement to the store it was cut
    from, so a gateway can refuse to serve shard packs against the wrong
    graph the same way :meth:`ArtifactStore.check` does.
    """

    members: tuple[int, ...]
    vnodes: int = DEFAULT_VNODES
    salt: str = DEFAULT_SALT
    graph_digest: str = ""
    radii: tuple[int, ...] = ()
    balls: int = 0
    shard_dirs: dict[int, str] = field(default_factory=dict)
    shard_balls: dict[int, int] = field(default_factory=dict)
    #: Merkle root of the source pack's auth block ("" for pre-PR8 cuts):
    #: what the gateway's merge-time verifier checks certificates against.
    auth_root: str = ""
    #: The committed candidate catalog ({radius: {label: [ball ids]}})
    #: and its owner-keyed digest; the verifier refuses the catalog when
    #: the digest does not check out under the user's derived key.
    catalog: dict = field(default_factory=dict)
    catalog_digest: str = ""

    def ring(self) -> HashRing:
        return ring_for(self.members, vnodes=self.vnodes, salt=self.salt)

    def shard_of(self, ball_id: int) -> int:
        return self.ring().owner_of(ball_id)

    def to_jsonable(self) -> dict:
        return {
            "kind": _PLACEMENT_KIND,
            "members": list(self.members),
            "vnodes": self.vnodes,
            "salt": self.salt,
            "graph_digest": self.graph_digest,
            "radii": list(self.radii),
            "balls": self.balls,
            "shards": {
                str(m): {"dir": self.shard_dirs.get(m, f"shard-{m}"),
                         "balls": self.shard_balls.get(m, 0)}
                for m in self.members
            },
            "auth": {
                "root": self.auth_root,
                "catalog": self.catalog,
                "catalog_digest": self.catalog_digest,
            } if self.auth_root else None,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "PlacementManifest":
        if payload.get("kind") != _PLACEMENT_KIND:
            raise PlacementError(
                f"not a placement manifest (kind={payload.get('kind')!r})")
        shards = payload.get("shards", {})
        members = tuple(int(m) for m in payload["members"])
        auth = payload.get("auth") or {}
        return cls(
            members=members,
            vnodes=int(payload["vnodes"]),
            salt=payload["salt"],
            graph_digest=payload.get("graph_digest", ""),
            radii=tuple(payload.get("radii", ())),
            balls=int(payload.get("balls", 0)),
            shard_dirs={int(m): info["dir"] for m, info in shards.items()},
            shard_balls={int(m): int(info["balls"])
                         for m, info in shards.items()},
            auth_root=auth.get("root", ""),
            catalog=auth.get("catalog", {}),
            catalog_digest=auth.get("catalog_digest", ""),
        )

    def write(self, root: str | Path) -> Path:
        path = Path(root) / PLACEMENT_FILE
        path.write_text(json.dumps(self.to_jsonable(), indent=1,
                                   sort_keys=True) + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, root: str | Path) -> "PlacementManifest":
        path = Path(root) / PLACEMENT_FILE
        if not path.is_file():
            raise PlacementError(f"no placement manifest at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise PlacementError(f"malformed placement manifest: {exc}") \
                from exc
        return cls.from_jsonable(payload)


def orphan_predicate(shard_id: int, members, prev_members=None, *,
                     vnodes: int = DEFAULT_VNODES,
                     salt: str = DEFAULT_SALT):
    """The ball filter a shard installs for one request.

    Without ``prev_members``: own the balls the current ring places here.
    With it (a re-placement pass after a shard death): own only the balls
    that *moved* here -- the dead member's orphans -- so survivors never
    re-evaluate the slice they already answered.
    """
    ring = ring_for(members, vnodes=vnodes, salt=salt)
    if prev_members is None:
        return lambda ball_id: ring.owner_of(ball_id) == shard_id
    prev = ring_for(prev_members, vnodes=vnodes, salt=salt)
    return lambda ball_id: (ring.owner_of(ball_id) == shard_id
                            and prev.owner_of(ball_id) != shard_id)


__all__ = [
    "DEFAULT_SALT",
    "DEFAULT_VNODES",
    "HashRing",
    "PLACEMENT_FILE",
    "PlacementError",
    "PlacementManifest",
    "orphan_predicate",
    "ring_for",
]
