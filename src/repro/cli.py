"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats <dataset>``             -- Table 3-style statistics.
* ``run <dataset>``               -- run one random query end to end and
                                     report matches, pruning, and timings.
* ``serve-batch <dataset>``       -- serve a query batch through the
                                     CMM-reuse batch engine.
* ``store build|inspect|verify``  -- the persistent offline artifact store.
* ``store shard-split``           -- cut a store into consistent-hash shard
                                     packs plus a placement manifest.
* ``store make-delta``            -- synthesize a seeded update stream into
                                     an authenticated delta log.
* ``store apply-delta``           -- replay a delta log into a store with
                                     incremental dirty-ball maintenance
                                     (exit 2 stale, 3 tampered).
* ``gateway <dataset>``           -- serve zipf many-tenant traffic through
                                     a local N-shard scatter-gather cluster
                                     (``--kill-shard``/``--kill-seed`` for
                                     chaos recovery runs, ``--rogue-shard``
                                     for the malicious-SP tier caught by
                                     the merge-time answer verifier).
* ``journal inspect <path>``      -- summarize a write-ahead run journal.
* ``trace summarize <path>``      -- per-role/per-phase latency histograms
                                     of a ``--trace`` JSONL file.
* ``trace audit <path>``          -- re-run the leakage audit offline.
* ``workloads``                   -- the ten LDBC BI workloads (Fig. 18).
* ``prune <dataset>``             -- pruning-technique ablation (Fig. 2a).

All commands accept ``--scale`` (dataset size multiplier) and ``--seed``.
A store is tied to (dataset, scale, semantics, radii, seed): build and
consume it with the same global flags.  ``run`` and ``serve-batch``
accept ``--trace [FILE]`` (role-scoped span trace as JSON lines) and
``--leakage-audit`` (diff the trace against the allowed-observation
model); ``serve-batch`` additionally takes ``--metrics-out FILE`` for a
Prometheus text snapshot, ``--standing N`` (register the first N
distinct queries as standing queries) and ``--apply-delta LOG`` (replay
an update log through the live engine after the batch, re-notifying
standing queries).

Exit codes are scriptable triage (documented in ``docs/operations.md``):
0 success, 1 usage/unexpected error, 2 stale artifacts (``store
verify``), 3 integrity failure (tampered/missing artifacts, journal
mismatch), 4 deadline-exceeded queries (``run``/``serve-batch`` with
``--deadline-ms``), 5 leakage-audit failure, 6 forged result (the
``gateway`` answer verifier caught a shard lying and could not re-cover
the slice from honest members).  When one invocation hits several
conditions, :func:`combine_exit` picks the most severe under the
lattice ``0 < 2 < 4 < 5 < 6 < 3`` (integrity trumps everything).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.bf_pruning import BFConfig
from repro.crypto.keys import DataOwnerKey
from repro.crypto.kernels import DEFAULT_KERNELS, NAIVE_KERNELS, KernelConfig
from repro.framework.faults import VALID_KINDS, ChaosPolicy
from repro.framework.prilo import DeadlineExceeded, Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine, QueryStatus
from repro.graph.query import Semantics
from repro.storage import (
    ArtifactStore,
    DeltaLog,
    JournalError,
    RunJournal,
    StaleDeltaError,
    StoreError,
    TamperedDeltaError,
    apply_delta_log,
    delta_key,
    graph_digest,
    journal_key,
)
from repro.workloads.datasets import DATASET_SPECS, load_dataset
from repro.workloads.experiments import (
    dataset_statistics,
    ldbc_study,
    pruning_study,
)

#: Stale (rebuildable) artifacts detected by ``store verify``.
EXIT_STALE = 2
#: Integrity failure: tampered/missing artifacts or a journal mismatch.
EXIT_INTEGRITY = 3
#: Distinct exit code for deadline-exceeded queries (see module docstring).
EXIT_DEADLINE = 4
#: The leakage audit found a restricted-scope span carrying
#: query-dependent data.
EXIT_LEAKAGE = 5
#: A shard returned a forged/incomplete/replayed verdict and no honest
#: member was left to re-cover the slice: the affected answers were
#: withheld, not surfaced.
EXIT_FORGED = 6

#: The one exit-code precedence lattice every command composes through:
#: success < stale < deadline < leakage < forged < integrity < usage.
#: Rationale (docs/operations.md): staleness is rebuildable, a deadline
#: is a per-query overload symptom, leakage is a policy violation that
#: still produced correct answers, a forged result was *caught and
#: withheld* (every answer actually surfaced is still certified), and an
#: integrity failure means nothing the command printed can be trusted --
#: so tampered wins over stale, and integrity wins over everything.
_EXIT_SEVERITY = {0: 0, EXIT_STALE: 1, EXIT_DEADLINE: 2,
                  EXIT_LEAKAGE: 3, EXIT_FORGED: 4, EXIT_INTEGRITY: 5,
                  1: 6}


def combine_exit(*codes: int) -> int:
    """The most severe of ``codes`` under the documented lattice.

    Unknown codes rank above everything known: a new failure mode must
    never be masked by an old, milder one."""
    return max(codes, default=0,
               key=lambda code: _EXIT_SEVERITY.get(code, len(_EXIT_SEVERITY)))


def _chaos(args: argparse.Namespace) -> ChaosPolicy | None:
    """Build a :class:`ChaosPolicy` from ``--chaos-seed``/``--fault-rate``.

    Chaos mode is opt-in: with neither flag (and no ``REPRO_CHAOS_SEED``
    in the environment) the config carries no policy and the engine takes
    the zero-overhead fast paths.  ``--chaos-kinds`` selects the fault
    vocabulary -- this is how the opt-in ``kill_process`` kind (a real
    SIGKILL at a durable checkpoint) is enabled from the command line.
    """
    seed = getattr(args, "chaos_seed", None)
    if seed is None and os.environ.get("REPRO_CHAOS_SEED"):
        seed = int(os.environ["REPRO_CHAOS_SEED"])
    rate = getattr(args, "fault_rate", None)
    kinds = getattr(args, "chaos_kinds", None)
    if seed is None and not rate:
        return None
    policy = ChaosPolicy(seed=seed if seed is not None else 0,
                         fault_rate=rate if rate is not None else 0.1)
    if kinds:
        chosen = tuple(k.strip() for k in kinds.split(",") if k.strip())
        bad = [k for k in chosen if k not in VALID_KINDS]
        if bad:
            raise SystemExit(f"unknown chaos kind(s) {bad}; "
                             f"valid: {', '.join(VALID_KINDS)}")
        from dataclasses import replace

        policy = replace(policy, kinds=chosen)
    return policy


def _rogue(args: argparse.Namespace):
    """Build the malicious-shard tier from ``--rogue-shard`` flags.

    Returns ``(rogue_shards, rogue_policy)`` for
    :func:`repro.framework.shard.make_shard_specs`.  The policy's kinds
    default to every malicious kind (forge_result, drop_ball,
    replay_stale); ``--rogue-kinds`` narrows them.  Rate 1.0 by default:
    a rogue shard lies on *every* verdict, the worst case for the
    verifier.
    """
    shards = tuple(getattr(args, "rogue_shard", None) or ())
    if not shards:
        return (), None
    from repro.framework.faults import MALICIOUS_KINDS

    kinds = MALICIOUS_KINDS
    chosen = getattr(args, "rogue_kinds", None)
    if chosen:
        kinds = tuple(k.strip() for k in chosen.split(",") if k.strip())
        bad = [k for k in kinds if k not in MALICIOUS_KINDS]
        if bad:
            raise SystemExit(f"unknown rogue kind(s) {bad}; "
                             f"valid: {', '.join(MALICIOUS_KINDS)}")
    policy = ChaosPolicy(seed=getattr(args, "rogue_seed", 0) or 0,
                         fault_rate=getattr(args, "rogue_rate", 1.0),
                         kinds=kinds)
    return shards, policy


def _kernels(args: argparse.Namespace) -> KernelConfig:
    name = getattr(args, "kernels", "batched")
    return NAIVE_KERNELS if name == "naive" else DEFAULT_KERNELS


def _config(args: argparse.Namespace, store=None) -> PriloConfig:
    config = PriloConfig(k_players=args.players, modulus_bits=args.modulus,
                         q_bits=16 if args.modulus <= 1024 else 32,
                         r_bits=16 if args.modulus <= 1024 else 32,
                         seed=args.seed,
                         executor=getattr(args, "executor", "serial"),
                         parallelism=getattr(args, "parallelism", 1),
                         chaos=_chaos(args),
                         deadline_ms=getattr(args, "deadline_ms", None),
                         ball_budget=getattr(args, "ball_budget", None),
                         kernels=_kernels(args))
    if store is not None:
        # Ball ids are a function of (vertex order, radii): an engine
        # served from a store must address exactly the stored radii.
        from dataclasses import replace

        config = replace(config, radii=store.radii)
    return config


def cmd_stats(args: argparse.Namespace) -> int:
    row = dataset_statistics(load_dataset(args.dataset, scale=args.scale))
    for key, value in row.items():
        print(f"{key:>20}: {value}")
    return 0


def _engine_class(name: str):
    return Prilo if name == "prilo" else PriloStar


def _open_store(args: argparse.Namespace):
    if not getattr(args, "store", None):
        return None
    return ArtifactStore.open(args.store)


def _open_journal(args: argparse.Namespace) -> RunJournal | None:
    """Build the write-ahead journal from ``--journal``/``--resume``.

    An existing journal file is only reused under an explicit
    ``--resume`` -- silently appending to a leftover journal would splice
    a previous invocation's checkpoints into this one."""
    path = getattr(args, "journal", None)
    if not path:
        return None
    if os.path.exists(path) and not getattr(args, "resume", False):
        raise SystemExit(f"journal {path} already exists; pass --resume to "
                         f"continue it or choose a fresh path")
    return RunJournal(path, journal_key(args.seed))


def _tracer_for(args: argparse.Namespace):
    """A live :class:`~repro.observability.Tracer` when any tracing
    surface (``--trace``, ``--leakage-audit``, ``--metrics-out``, the
    hidden taint hook) is requested; ``None`` keeps the engines on the
    zero-overhead ``NULL_TRACER`` path."""
    wanted = (getattr(args, "trace", None) is not None
              or getattr(args, "leakage_audit", False)
              or getattr(args, "metrics_out", None)
              or getattr(args, "trace_taint", False))
    if not wanted:
        return None
    from repro.observability import Tracer

    return Tracer()


def _finish_trace(args: argparse.Namespace, tracer) -> int:
    """Post-run trace plumbing: taint injection (test hook), trace-file
    export, leakage audit.  Returns the audit's exit-code contribution."""
    if tracer is None:
        return 0
    if getattr(args, "trace_taint", False):
        # Negative control for the leakage audit: smuggle a
        # query-dependent attribute into a dealer-scope span, bypassing
        # construction-time redaction the way a buggy/hostile span
        # emitter would.  The audit MUST flag this.
        tracer.inject_unchecked("taint_probe", "dealer",
                                ball_answer="match@ball:17")
    path = getattr(args, "trace", None)
    if path:
        from repro.observability import write_trace

        write_trace(path, tracer.spans)
        print(f"trace: {len(tracer.spans)} spans -> {path}")
    if not getattr(args, "leakage_audit", False):
        return 0
    from repro.observability import audit_spans

    report = audit_spans(tracer.spans)
    print(report.summary_line())
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.ok else EXIT_LEAKAGE


def _print_outcomes(report) -> None:
    for outcome in report.outcomes:
        if outcome.ok:
            result = outcome.result
            print(f"  q{outcome.index}: candidates="
                  f"{len(result.candidate_ids)} "
                  f"verified={len(result.verified_ids)} "
                  f"matches={result.num_matches} "
                  f"latency={outcome.latency_seconds:.3f}s")
        else:
            print(f"  q{outcome.index}: {outcome.status.upper()} "
                  f"({outcome.detail})")


def _print_batch_counters(report) -> None:
    summary = report.summary()
    if "admission" in summary:
        print(f"admission: {report.admission.summary_line()}")
    if report.journal:
        print(f"journal: {report.journal.summary_line()}")
    injected = sum(r.metrics.faults.injected for r in report.results)
    if injected:
        recovered = sum(r.metrics.faults.recovered for r in report.results)
        degraded = sum(r.metrics.faults.degraded for r in report.results)
        print(f"faults: injected={injected} recovered={recovered} "
              f"degraded={degraded}")


def _batch_exit_code(report) -> int:
    if any(o.status == QueryStatus.DEADLINE_EXCEEDED
           for o in report.outcomes):
        return EXIT_DEADLINE
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    semantics = Semantics(args.semantics)
    query = dataset.random_query(size=args.size, diameter=args.diameter,
                                 semantics=semantics, seed=args.seed)
    print(f"dataset: {dataset.graph}")
    print(f"query:   {query}")
    store = _open_store(args)
    journal = _open_journal(args)
    tracer = _tracer_for(args)
    engine = PriloStar.setup(dataset.graph_for(semantics),
                             _config(args, store), store=store,
                             tracer=tracer)
    result = None
    code = 0
    try:
        if journal is not None:
            # The batch engine (batch of one) owns admission, journal
            # checkpointing and resume -- `run --journal` gets the exact
            # crash-resume semantics of serve-batch.
            with journal, QueryBatchEngine(engine, journal=journal) as server:
                report = server.serve([query])
            _print_outcomes(report)
            _print_batch_counters(report)
            if report.results:
                result = report.results[0]
            else:
                code = _batch_exit_code(report) or 1
        else:
            try:
                result = engine.run(query)
            except DeadlineExceeded as exc:
                print(f"DEADLINE EXCEEDED: {exc}")
                if exc.metrics is not None:
                    print(f"partial state: "
                          f"{exc.metrics.candidate_balls} candidates, "
                          f"{exc.metrics.journal.shares_evaluated} shares "
                          f"evaluated before the abort")
                code = EXIT_DEADLINE
    except JournalError as exc:
        print(f"JOURNAL ERROR: {exc}")
        code = EXIT_INTEGRITY
    finally:
        engine.close()
    if result is not None:
        timings = result.metrics.timings
        print(f"candidates: {len(result.candidate_ids)}  "
              f"PM-positives: {len(result.pm_positive_ids)}  "
              f"verified: {len(result.verified_ids)}  "
              f"matches: {result.num_matches}")
        print(f"sequence mode: {result.sequence_mode}; all positives at "
              f"t={result.schedule.all_positives:.4f}s of "
              f"{result.schedule.makespan:.4f}s total evaluation")
        print(f"timings: preprocess={timings.user_preprocessing:.3f}s "
              f"pm={timings.pm_computation:.3f}s "
              f"eval={timings.evaluation:.3f}s "
              f"match={timings.user_matching:.3f}s")
        if result.metrics.ops:
            totals = result.metrics.ops.totals()
            print(f"crypto ops [{_kernels(args).label}]: "
                  f"modmul={totals.modmul} modexp={totals.modexp} "
                  f"table_build={totals.table_build}")
        if result.metrics.faults:
            print(f"faults:  {result.metrics.faults.summary_line()}")
        if result.metrics.journal:
            print(f"journal: {result.metrics.journal.summary_line()}")
    return combine_exit(code, _finish_trace(args, tracer))


def cmd_serve_batch(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    semantics = Semantics(args.semantics)
    distinct = dataset.random_queries(args.distinct, size=args.size,
                                      diameter=args.diameter,
                                      semantics=semantics, seed=args.seed)
    queries = [distinct[i % len(distinct)] for i in range(args.batch)]
    engine_cls = _engine_class(args.engine)
    store = _open_store(args)
    journal = _open_journal(args)
    tracer = _tracer_for(args)
    engine = engine_cls.setup(dataset.graph_for(semantics),
                              _config(args, store), store=store,
                              tracer=tracer)
    delta_code = 0
    try:
        with QueryBatchEngine(engine, journal=journal,
                              queue_bound=args.queue_bound) as server:
            for position, query in enumerate(distinct[:args.standing]):
                standing = server.register_standing(
                    query, name=f"standing-{position}")
                print(f"standing {standing.name}: "
                      f"{standing.num_matches} baseline matches")
            report = server.serve(queries)
            if args.apply_delta:
                delta_code = _serve_batch_deltas(args, server)
    except JournalError as exc:
        print(f"JOURNAL ERROR: {exc}")
        return combine_exit(EXIT_INTEGRITY, _finish_trace(args, tracer))
    finally:
        if journal is not None:
            journal.close()
    summary = report.summary()
    print(f"dataset: {dataset.graph}")
    print(f"served {summary['queries']} queries "
          f"({summary['distinct_signatures']} distinct signatures) "
          f"in {summary['makespan_seconds']:.3f}s "
          f"(mean latency {summary['mean_latency_seconds']:.3f}s)")
    cache = summary["cmm_cache"]
    print(f"CMM cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.2f}), "
          f"{cache['evictions']} evictions, weight {cache['weight']}")
    _print_outcomes(report)
    _print_batch_counters(report)
    if args.json_summary:
        with open(args.json_summary, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, default=str)
    if args.metrics_out:
        from repro.observability import write_metrics

        spans = tracer.spans if tracer is not None else None
        write_metrics(args.metrics_out, report, spans)
        print(f"metrics: Prometheus snapshot -> {args.metrics_out}")
    return combine_exit(_batch_exit_code(report), delta_code,
                        _finish_trace(args, tracer))


def _serve_batch_deltas(args: argparse.Namespace, server) -> int:
    """Replay a delta log through the live batch engine (standing queries
    re-notify per delta).  Same exit split as ``store apply-delta``."""
    log = DeltaLog(args.apply_delta, delta_key(args.seed))
    state = log.replay(truncate=False)
    if state.tampered_records:
        print(f"FAILED: {state.tampered_records} tampered delta record(s)")
        return EXIT_INTEGRITY
    engine = server.engine
    current = graph_digest(engine.graph)
    for record in state.records:
        if record.result == current:
            continue
        if record.parent != current:
            print(f"STALE: delta seq={record.seq} chains from "
                  f"{record.parent[:12]} but the engine is at "
                  f"{current[:12]}")
            return EXIT_STALE
        try:
            application = server.apply_delta(record.delta)
        except (StoreError, TamperedDeltaError) as exc:
            print(f"FAILED: {exc}")
            return EXIT_INTEGRITY
        current = graph_digest(engine.graph)
        if current != record.result:
            print(f"FAILED: delta seq={record.seq} promised "
                  f"{record.result[:12]} but produced {current[:12]}")
            return EXIT_INTEGRITY
        summary = application.as_dict()
        print(f"delta seq={record.seq}: dirty={summary['dirty']} "
              f"added={summary['added']} removed={summary['removed']} "
              f"cache_invalidated={summary['cache_invalidated']} "
              f"notified={summary['notified']}/{summary['standing']}")
        for notice in application.notices:
            flag = "CHANGED" if notice.changed else "unchanged"
            print(f"  {notice.name}: {flag}, "
                  f"{notice.num_matches} matches")
    return 0


def cmd_journal_inspect(args: argparse.Namespace) -> int:
    """Summarize a run journal: record counts, last checkpoint, torn-tail
    and tamper reports.  Inspection is non-destructive (a torn tail is
    reported, not truncated)."""
    if not os.path.exists(args.path):
        print(f"FAILED: no journal at {args.path}")
        return EXIT_INTEGRITY
    journal = RunJournal(args.path, journal_key(args.seed))
    try:
        summary = journal.inspect()
    except JournalError as exc:
        print(f"JOURNAL ERROR: {exc}")
        return EXIT_INTEGRITY
    print(json.dumps(summary, indent=2))
    # Tampered wins over stale/torn-tail symptoms: a torn tail is a
    # normal crash artifact (reported, exit 0); tampering is not.
    return EXIT_INTEGRITY if summary["tampered_records"] else 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Per-role / per-phase latency histograms of a ``--trace`` file."""
    from repro.observability import read_trace, render_summary, \
        summarize_spans

    if not os.path.exists(args.path):
        print(f"FAILED: no trace at {args.path}")
        return 1
    meta, spans = read_trace(args.path)
    if meta:
        print(f"trace: {args.path} (format {meta.get('format', '?')}, "
              f"{len(spans)} spans)")
    print(render_summary(summarize_spans(spans)))
    return 0


def cmd_trace_audit(args: argparse.Namespace) -> int:
    """Offline leakage audit of a recorded trace file (exit 5 on leak).

    Same checker the in-process ``--leakage-audit`` runs, but over the
    deserialized span dicts -- so it also catches a trace file that was
    edited after the fact to include restricted data."""
    from repro.observability import audit_spans, read_trace

    if not os.path.exists(args.path):
        print(f"FAILED: no trace at {args.path}")
        return 1
    _, spans = read_trace(args.path)
    report = audit_spans(spans)
    print(report.summary_line())
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.ok else EXIT_LEAKAGE


def _parse_radii(text: str) -> tuple[int, ...]:
    try:
        radii = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad radii list {text!r}")
    if not radii:
        raise argparse.ArgumentTypeError("radii list is empty")
    return radii


def cmd_store_build(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    graph = dataset.graph_for(Semantics(args.semantics))
    key = DataOwnerKey.generate(args.seed)
    store = ArtifactStore.create(
        args.root, graph, args.radii, key,
        twiglet_h=None if args.no_twiglets else args.twiglet_h,
        bf_config=None if args.no_bf else BFConfig())
    print(json.dumps(store.describe(), indent=2))
    return 0


def cmd_store_inspect(args: argparse.Namespace) -> int:
    print(json.dumps(ArtifactStore.open(args.root).describe(), indent=2))
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    """Exit 0 when every artifact is ok, 2 on staleness only, 3 on any
    integrity failure (tampered or missing) -- scriptable triage."""
    try:
        store = ArtifactStore.open(args.root)
    except StoreError as exc:
        print(f"FAILED: {exc}")
        return EXIT_INTEGRITY
    key = DataOwnerKey.generate(args.seed) if args.with_key else None
    report = store.verify(key)
    for pack in report.packs:
        line = f"{pack.name}: {pack.status}"
        if pack.reason:
            line += f" ({pack.reason})"
        print(line)
    print(f"{report.balls} balls indexed, "
          f"{report.decrypted} blobs decrypt-authenticated")
    if report.tampered:
        print(f"FAILED: {len(report.tampered)} artifact(s) tampered "
              f"or missing")
        return EXIT_INTEGRITY
    if report.stale:
        print(f"STALE: {len(report.stale)} artifact(s) stale")
        return EXIT_STALE
    print("ok: store verified")
    return 0


def cmd_store_shard_split(args: argparse.Namespace) -> int:
    """Cut a store into N consistent-hash shard packs + placement manifest."""
    from repro.storage import shard_split

    try:
        placement = shard_split(args.root, args.out, args.shards,
                                vnodes=args.vnodes, salt=args.salt)
    except StoreError as exc:
        print(f"FAILED: {exc}")
        return EXIT_INTEGRITY
    counts = {member: info["balls"]
              for member, info in placement["shards"].items()}
    print(json.dumps({"out": str(args.out),
                      "members": placement["members"],
                      "vnodes": placement["vnodes"],
                      "salt": placement["salt"],
                      "balls": placement["balls"],
                      "balls_per_shard": counts}, indent=2))
    return 0


def cmd_store_make_delta(args: argparse.Namespace) -> int:
    """Synthesize a seeded update stream and append it to a delta log.

    Each delta chains on its predecessor's result digest, so the log is
    a hash chain from the dataset's build-time graph state; ``store
    apply-delta`` replays it against a store built with the same global
    flags."""
    from repro.graph.delta import random_delta

    dataset = load_dataset(args.dataset, scale=args.scale)
    graph = dataset.graph_for(Semantics(args.semantics)).copy()
    records = []
    with DeltaLog(args.log, delta_key(args.seed)) as log:
        for step in range(args.count):
            parent = graph_digest(graph)
            delta = random_delta(graph,
                                 edge_fraction=args.edge_fraction,
                                 remove_vertices=args.remove_vertices,
                                 seed=args.delta_seed + step)
            delta.apply(graph)
            record = log.append(delta, parent=parent,
                                result=graph_digest(graph))
            records.append({"seq": record.seq, "delta": repr(delta),
                            "parent": record.parent[:12],
                            "result": record.result[:12]})
        summary = log.inspect()
    summary["appended"] = records
    print(json.dumps(summary, indent=2))
    return 0


def cmd_store_apply_delta(args: argparse.Namespace) -> int:
    """Replay an authenticated delta log into a store.

    Exit 0 when every record applied (or was already applied), 2 when the
    log and the store/graph diverged (stale -- re-sync or rebuild), 3 on
    any tampered record or a result-digest mismatch; tampered wins over
    stale."""
    log = DeltaLog(args.log, delta_key(args.seed))
    if args.inspect:
        print(json.dumps(log.inspect(), indent=2))
        return EXIT_INTEGRITY if log.replay(
            truncate=False).tampered_records else 0
    try:
        store = ArtifactStore.open(args.root)
    except StoreError as exc:
        print(f"FAILED: {exc}")
        return EXIT_INTEGRITY
    dataset = load_dataset(args.dataset, scale=args.scale)
    graph = dataset.graph_for(Semantics(args.semantics))
    state = log.replay(truncate=False)
    if state.tampered_records:
        print(f"FAILED: {state.tampered_records} tampered delta record(s)")
        return EXIT_INTEGRITY
    # Fast-forward: a re-run loads the dataset at its build-time state
    # while the store is already at the log's tip (or midway).  Walk the
    # chain applying records to the *graph only* until it catches up with
    # the store's pinned digest, then hand the remainder to the store.
    current = graph_digest(graph)
    position = 0
    while (current != store.manifest_graph_digest
           and position < len(state.records)):
        record = state.records[position]
        if record.parent != current:
            break
        record.delta.apply(graph)
        current = graph_digest(graph)
        position += 1
    if current != store.manifest_graph_digest:
        print(f"STALE: the delta log never reaches the store's graph "
              f"state {store.manifest_graph_digest[:12]}")
        return EXIT_STALE
    remaining = type(state)(records=state.records[position:])
    try:
        reports = apply_delta_log(store, remaining, graph,
                                  DataOwnerKey.generate(args.seed))
    except TamperedDeltaError as exc:
        print(f"FAILED: {exc}")
        return EXIT_INTEGRITY
    except StaleDeltaError as exc:
        print(f"STALE: {exc}")
        return EXIT_STALE
    except StoreError as exc:
        print(f"{'STALE' if 'stale' in str(exc).lower() else 'FAILED'}: "
              f"{exc}")
        return (EXIT_STALE if "stale" in str(exc).lower()
                else EXIT_INTEGRITY)
    for report in reports:
        print(json.dumps(report.as_dict(), indent=2))
    print(f"ok: {len(reports)} delta(s) applied, "
          f"{position + len(remaining.records) - len(reports)} already "
          f"applied; store at {store.manifest_graph_digest[:12]}")
    return 0


def _gateway_exit_code(report) -> int:
    # Same fold as the single-engine batch: a deadline-exceeded slice
    # exits 4.  Shed/drained under explicit admission flags is operator
    # policy, not failure, and stays 0 (documented in operations.md).
    # A FORGED outcome means the verifier caught a lying shard and no
    # honest member was left to re-cover the slice -- the answer was
    # withheld, and the run must say so with exit 6.  Forgery that WAS
    # re-covered stays 0: every surfaced answer verified.
    codes = [0]
    if any(o.status == QueryStatus.FORGED for o in report.outcomes):
        codes.append(EXIT_FORGED)
    if any(o.status == QueryStatus.DEADLINE_EXCEEDED
           for o in report.outcomes):
        codes.append(EXIT_DEADLINE)
    return combine_exit(*codes)


def cmd_gateway(args: argparse.Namespace) -> int:
    """Serve zipf many-tenant traffic through a local N-shard cluster."""
    from dataclasses import replace

    from repro.framework.gateway import Gateway, GatewayChaos, GatewayError
    from repro.framework.placement import (
        DEFAULT_SALT,
        DEFAULT_VNODES,
        PlacementError,
        PlacementManifest,
    )
    from repro.framework.shard import LocalCluster, make_shard_specs
    from repro.workloads.traffic import TrafficSpec, generate_traffic

    dataset = load_dataset(args.dataset, scale=args.scale)
    semantics = Semantics(args.semantics)
    spec = TrafficSpec(count=args.count, tenants=args.tenants,
                       skew=args.skew, size=args.size,
                       diameter=args.diameter, semantics=semantics,
                       seed=args.seed)
    queries, ranks = generate_traffic(dataset, spec)
    graph = dataset.graph_for(semantics)
    config = _config(args)
    if args.no_verify:
        config = replace(config, verify_serving=False)
    vnodes, salt = DEFAULT_VNODES, DEFAULT_SALT
    placement = None
    if args.store:
        try:
            placement = PlacementManifest.read(args.store)
        except PlacementError as exc:
            print(f"FAILED: {exc}")
            return EXIT_INTEGRITY
        # Shard packs fix both the ball address space (radii) and the
        # ring geometry; the serving cluster must match them exactly.
        config = replace(config, radii=placement.radii)
        vnodes, salt = placement.vnodes, placement.salt
    verifier = None
    if (placement is not None and placement.auth_root
            and config.verify_serving):
        from repro.framework.verify import AnswerVerifier, VerificationError

        engine_cls = {"prilo": Prilo, "prilo-star": PriloStar}[args.engine]
        # Certificates bind the *effective* engine config -- the engine
        # classes force their pruning toggles in setup(), so the
        # verifier must fingerprint the same overridden view.
        effective = replace(config, **engine_cls._OVERRIDES)
        try:
            verifier = AnswerVerifier.from_placement(placement,
                                                     seed=args.seed,
                                                     config=effective)
        except VerificationError as exc:
            # A bad catalog commitment is at-rest tampering, not a
            # serving-time forgery: nothing can be verified against it.
            print(f"FAILED: {exc}")
            return EXIT_INTEGRITY
    chaos = None
    if args.kill_shard is not None or args.kill_seed is not None:
        chaos = GatewayChaos(kill_shard=args.kill_shard,
                             kill_after_verdicts=args.kill_after,
                             seed=args.kill_seed)
    rogue_shards, rogue_policy = _rogue(args)
    tracer = _tracer_for(args)
    specs = make_shard_specs(graph, config, args.shards,
                             engine=args.engine, store_root=args.store,
                             journal_dir=args.journal_dir,
                             queue_bound=args.queue_bound,
                             vnodes=vnodes, salt=salt,
                             rogue_shards=rogue_shards,
                             rogue_policy=rogue_policy)
    print(f"dataset: {dataset.graph}")
    print(f"traffic: {spec.count} queries over {spec.tenants} tenants "
          f"(zipf s={spec.skew}, seed {spec.seed}); "
          f"rank-1 share {ranks.count(0)}/{len(ranks)}")
    try:
        with LocalCluster(specs) as cluster:
            gateway = Gateway(cluster.handles, vnodes=vnodes, salt=salt,
                              pool=args.pool, window=args.window,
                              chaos=chaos, tracer=tracer,
                              verifier=verifier)
            report = gateway.run(queries)
    except GatewayError as exc:
        # Divergent slice answers or an unservable fleet: nothing the
        # merge produced can be trusted -> integrity exit.
        print(f"GATEWAY ERROR: {exc}")
        return combine_exit(EXIT_INTEGRITY, _finish_trace(args, tracer))
    summary = report.summary()
    print(f"served {summary['queries']} queries on {summary['shards']} "
          f"shard(s) in {summary['makespan_seconds']:.3f}s wall "
          f"({summary['critical_path_seconds']:.3f}s critical path, "
          f"{summary['busy_seconds']:.3f}s total engine-busy)")
    for sid, busy in summary["per_shard_busy_seconds"].items():
        print(f"  shard {sid}: {busy:.3f}s engine-busy")
    if report.deaths:
        print(f"deaths: shard(s) {report.deaths} died; "
              f"{report.re_dispatches} re-placement task(s); "
              f"survivors {list(report.final_members)}")
    if report.verify_enabled:
        print(f"verify: {report.proofs_checked} certificate(s) checked "
              f"({report.proof_bytes} proof bytes, "
              f"{report.verify_seconds:.3f}s); "
              f"{report.forgeries_detected} forgery(ies) detected"
              + (f"; evicted shard(s) {report.evictions}"
                 if report.evictions else ""))
        if report.forged:
            print(f"FORGED: {report.forged} answer(s) withheld -- no "
                  f"honest member left to re-cover the slice")
    statuses = summary["statuses"]
    not_ok = [(i, s) for i, s in enumerate(statuses) if s != QueryStatus.OK]
    print(f"statuses: {statuses.count(QueryStatus.OK)}/{len(statuses)} ok"
          + (f"; {not_ok}" if not_ok else ""))
    caches = summary["caches"].get("cmm")
    if caches:
        print(f"CMM cache (fleet): {caches['hits']} hits / "
              f"{caches['misses']} misses (hit rate "
              f"{caches['hit_rate']:.2f})")
    if report.metrics.journal:
        print(f"journal: {report.metrics.journal.summary_line()}")
    if args.json_summary:
        with open(args.json_summary, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, default=str)
    if args.metrics_out:
        from repro.observability import write_gateway_metrics

        spans = tracer.spans if tracer is not None else None
        write_gateway_metrics(args.metrics_out, report, spans)
        print(f"metrics: Prometheus snapshot -> {args.metrics_out}")
    return combine_exit(_gateway_exit_code(report),
                        _finish_trace(args, tracer))


def cmd_workloads(args: argparse.Namespace) -> int:
    dataset = load_dataset("ldbc", scale=args.scale)
    records = ldbc_study(dataset, Semantics(args.semantics),
                         config=_config(args), seed=args.seed)
    print(f"{'query':<6} {'cands':>6} {'PPCR':>6} {'mode':>7} "
          f"{'SSG(s)':>9} {'RSG(s)':>9} {'speedup':>8}")
    for r in records:
        print(f"{r.workload:<6} {r.candidates:>6} {r.ppcr:>6.2f} "
              f"{r.mode:>7} {r.ssg_seconds:>9.4f} {r.rsg_seconds:>9.4f} "
              f"{min(r.scheduling_speedup, 100):>7.1f}x")
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    semantics = Semantics(args.semantics)
    queries = dataset.random_queries(args.queries, size=args.size,
                                     diameter=args.diameter,
                                     semantics=semantics, seed=args.seed)
    study = pruning_study(dataset, queries,
                          methods=("neighbor", "path", "twiglet", "bf"),
                          config=_config(args))
    print(f"candidates: {study.candidates}")
    print(f"{'method':<14} {'kept':>6} {'PPCR':>6} {'cost(s)':>9}")
    for method in study.confusion:
        counts = study.confusion[method]
        print(f"{method:<14} {counts.tp + counts.fp:>6} "
              f"{counts.ppcr:>6.2f} "
              f"{study.total_cost.get(method, 0.0):>9.3f}")
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", default="serial",
                        choices=["serial", "process"],
                        help="ball-evaluation backend")
    parser.add_argument("--parallelism", type=int, default=1,
                        help="worker processes for --executor process")
    parser.add_argument("--kernels", default="batched",
                        choices=["batched", "naive"],
                        help="crypto hot-path kernels: 'batched' uses the "
                             "Straus window tables and packed CMM masks, "
                             "'naive' the per-ciphertext reference fold "
                             "(value-identical; for A/B benchmarking)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        metavar="N",
                        help="enable seeded fault injection (chaos mode); "
                             "the same seed replays the same fault schedule")
    parser.add_argument("--fault-rate", type=float, default=None,
                        metavar="P",
                        help="per-decision fault probability in [0,1] "
                             "(default 0.1 when --chaos-seed is given)")
    parser.add_argument("--chaos-kinds", default=None, metavar="K1,K2",
                        help="comma-separated fault kinds to inject "
                             "(default: every injectable kind; add "
                             "kill_process to SIGKILL the process at a "
                             "durable checkpoint)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="write-ahead run journal: checkpoint every "
                             "executor share durably so a killed process "
                             "can resume")
    parser.add_argument("--resume", action="store_true",
                        help="continue an existing --journal file, "
                             "replaying its checkpoints instead of "
                             "recomputing them")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS",
                        help="per-query wall-clock budget; an exceeded "
                             "query aborts with partial state and the "
                             "command exits 4")
    parser.add_argument("--ball-budget", type=int, default=None,
                        metavar="N",
                        help="reject queries whose candidate ball count "
                             "exceeds N (admission control)")
    parser.add_argument("--trace", nargs="?", const="trace.jsonl",
                        default=None, metavar="FILE",
                        help="write a role-scoped span trace as JSON "
                             "lines (default file: trace.jsonl)")
    parser.add_argument("--leakage-audit", action="store_true",
                        help="diff the trace against the allowed-"
                             "observation model; a query-dependent "
                             "attribute in a dealer/player/sp span "
                             "exits 5")
    # Test hook: injects a deliberately leaking dealer-scope span so CI
    # can prove the audit fails loudly.  Not for operators.
    parser.add_argument("--trace-taint", action="store_true",
                        help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prilo/Prilo*: privacy preserving LGPQ processing")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--players", type=int, default=4,
                        help="number of Player servers (k)")
    parser.add_argument("--modulus", type=int, default=1024,
                        help="CGBE modulus bits (paper: 4096)")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sorted(DATASET_SPECS)
    p_stats = sub.add_parser("stats", help="dataset statistics (Table 3)")
    p_stats.add_argument("dataset", choices=datasets)
    p_stats.set_defaults(func=cmd_stats)

    p_run = sub.add_parser("run", help="run one random query end to end")
    p_run.add_argument("dataset", choices=datasets)
    p_run.add_argument("--size", type=int, default=8)
    p_run.add_argument("--diameter", type=int, default=3)
    p_run.add_argument("--semantics", default="hom",
                       choices=[s.value for s in Semantics])
    p_run.add_argument("--store", default=None, metavar="DIR",
                       help="cold-start from an artifact store built with "
                            "the same dataset/scale/semantics/seed")
    _add_execution_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_batch = sub.add_parser(
        "serve-batch",
        help="serve a query batch with cross-query CMM reuse")
    p_batch.add_argument("dataset", choices=datasets)
    p_batch.add_argument("--batch", type=int, default=8,
                         help="total queries to serve")
    p_batch.add_argument("--distinct", type=int, default=2,
                         help="distinct queries cycled through the batch")
    p_batch.add_argument("--size", type=int, default=8)
    p_batch.add_argument("--diameter", type=int, default=3)
    p_batch.add_argument("--semantics", default="hom",
                         choices=[s.value for s in Semantics])
    p_batch.add_argument("--engine", default="prilo",
                         choices=["prilo", "prilo-star"])
    p_batch.add_argument("--store", default=None, metavar="DIR")
    p_batch.add_argument("--queue-bound", type=int, default=None,
                         metavar="N",
                         help="admission bound: queries past the first N "
                              "are shed with REJECTED(overload)")
    p_batch.add_argument("--json-summary", default=None, metavar="FILE",
                         help="also write the batch summary as JSON")
    p_batch.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write a Prometheus text-exposition "
                              "snapshot of the batch (for a textfile "
                              "collector)")
    p_batch.add_argument("--standing", type=int, default=0, metavar="N",
                         help="register the first N distinct queries as "
                              "standing queries (re-notified per applied "
                              "delta)")
    p_batch.add_argument("--apply-delta", default=None, metavar="LOG",
                         help="after the batch, replay this delta log "
                              "through the live engine (exit 2 stale, "
                              "3 tampered)")
    _add_execution_flags(p_batch)
    p_batch.set_defaults(func=cmd_serve_batch)

    p_store = sub.add_parser("store",
                             help="persistent offline artifact store")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_build = store_sub.add_parser(
        "build", help="run the offline outsourcing step into a directory")
    p_build.add_argument("dataset", choices=datasets)
    p_build.add_argument("root", help="target directory (must be empty)")
    p_build.add_argument("--radii", type=_parse_radii, default=(1, 2, 3, 4),
                         help="comma-separated ball radii (default 1,2,3,4)")
    p_build.add_argument("--semantics", default="hom",
                         choices=[s.value for s in Semantics],
                         help="which graph variant to outsource "
                              "(ssim uses the 64-label graph)")
    p_build.add_argument("--twiglet-h", type=int, default=3)
    p_build.add_argument("--no-twiglets", action="store_true",
                         help="skip the twiglet feature artifact")
    p_build.add_argument("--no-bf", action="store_true",
                         help="skip the tree/BF artifact")
    p_build.set_defaults(func=cmd_store_build)

    p_inspect = store_sub.add_parser("inspect",
                                     help="print a store's manifest summary")
    p_inspect.add_argument("root")
    p_inspect.set_defaults(func=cmd_store_inspect)

    p_verify = store_sub.add_parser(
        "verify", help="checksum (and optionally decrypt) every artifact")
    p_verify.add_argument("root")
    p_verify.add_argument("--with-key", action="store_true",
                          help="also decrypt-authenticate every ball blob "
                               "with the seed-derived owner key")
    p_verify.set_defaults(func=cmd_store_verify)

    p_split = store_sub.add_parser(
        "shard-split",
        help="cut a store into N consistent-hash shard packs plus a "
             "placement manifest (input to the gateway)")
    p_split.add_argument("root", help="source store directory")
    p_split.add_argument("out", help="target directory (must be empty)")
    p_split.add_argument("--shards", type=int, default=4)
    p_split.add_argument("--vnodes", type=int, default=None,
                         help="virtual nodes per shard on the hash ring "
                              "(default 64)")
    p_split.add_argument("--salt", default=None,
                         help="ring namespace salt (default prilo-ring)")
    p_split.set_defaults(func=cmd_store_shard_split)

    p_mkdelta = store_sub.add_parser(
        "make-delta",
        help="synthesize a seeded update stream into an authenticated "
             "delta log (input to apply-delta)")
    p_mkdelta.add_argument("dataset", choices=datasets)
    p_mkdelta.add_argument("log", help="delta log file (appended)")
    p_mkdelta.add_argument("--semantics", default="hom",
                           choices=[s.value for s in Semantics])
    p_mkdelta.add_argument("--count", type=int, default=1,
                           help="deltas to chain onto the log")
    p_mkdelta.add_argument("--edge-fraction", type=float, default=0.01,
                           help="fraction of edges each delta rewires")
    p_mkdelta.add_argument("--remove-vertices", type=int, default=0,
                           help="vertices each delta removes")
    p_mkdelta.add_argument("--delta-seed", type=int, default=7,
                           help="seed of the synthetic update stream "
                                "(distinct from --seed, which keys the "
                                "log)")
    p_mkdelta.set_defaults(func=cmd_store_make_delta)

    p_apply = store_sub.add_parser(
        "apply-delta",
        help="replay a delta log into a store: incremental dirty-ball "
             "maintenance (exit 2 stale, 3 tampered)")
    p_apply.add_argument("root", help="store directory to update")
    p_apply.add_argument("dataset", choices=datasets)
    p_apply.add_argument("log", help="delta log file to replay")
    p_apply.add_argument("--semantics", default="hom",
                         choices=[s.value for s in Semantics])
    p_apply.add_argument("--inspect", action="store_true",
                         help="only summarize the log (non-destructive; "
                              "exits 3 if any record is tampered)")
    p_apply.set_defaults(func=cmd_store_apply_delta)

    p_journal = sub.add_parser("journal",
                               help="write-ahead run journal tools")
    journal_sub = p_journal.add_subparsers(dest="journal_command",
                                           required=True)
    p_jinspect = journal_sub.add_parser(
        "inspect", help="record counts, last checkpoint, torn-tail and "
                        "tamper report (non-destructive)")
    p_jinspect.add_argument("path")
    p_jinspect.set_defaults(func=cmd_journal_inspect)

    p_trace = sub.add_parser("trace", help="span-trace tools")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize", help="per-role/per-phase latency histograms of a "
                          "--trace JSONL file")
    p_tsum.add_argument("path")
    p_tsum.set_defaults(func=cmd_trace_summarize)
    p_taudit = trace_sub.add_parser(
        "audit", help="offline leakage audit of a trace file "
                      "(exit 5 on a restricted-scope leak)")
    p_taudit.add_argument("path")
    p_taudit.set_defaults(func=cmd_trace_audit)

    p_gw = sub.add_parser(
        "gateway",
        help="serve zipf many-tenant traffic through a local N-shard "
             "cluster behind the scatter-gather gateway")
    p_gw.add_argument("dataset", choices=datasets)
    p_gw.add_argument("--shards", type=int, default=4)
    p_gw.add_argument("--count", type=int, default=32,
                      help="total queries in the traffic trace")
    p_gw.add_argument("--tenants", type=int, default=8,
                      help="distinct tenant queries the trace draws from")
    p_gw.add_argument("--skew", type=float, default=1.1,
                      help="zipf skew s (0 = uniform)")
    p_gw.add_argument("--size", type=int, default=8)
    p_gw.add_argument("--diameter", type=int, default=3)
    p_gw.add_argument("--semantics", default="hom",
                      choices=[s.value for s in Semantics])
    p_gw.add_argument("--engine", default="prilo",
                      choices=["prilo", "prilo-star"])
    p_gw.add_argument("--store", default=None, metavar="DIR",
                      help="a `store shard-split` output directory: each "
                           "shard cold-starts from its own pack, and the "
                           "ring geometry is read from placement.json")
    p_gw.add_argument("--journal-dir", default=None, metavar="DIR",
                      help="give each shard its own write-ahead journal "
                           "(shard-<i>.wal) under this directory")
    p_gw.add_argument("--queue-bound", type=int, default=None, metavar="N",
                      help="per-shard admission bound (see serve-batch)")
    p_gw.add_argument("--window", type=int, default=4,
                      help="in-flight frames per shard before dispatch "
                           "blocks (backpressure)")
    p_gw.add_argument("--pool", type=int, default=2,
                      help="pooled connections per shard")
    p_gw.add_argument("--rogue-shard", type=int, action="append",
                      default=None, metavar="K",
                      help="malicious-SP chaos: shard K mutates its "
                           "verdicts after the honest engine ran "
                           "(repeatable; caught by the answer verifier, "
                           "evicted, and its slice re-scattered)")
    p_gw.add_argument("--rogue-kinds", default=None, metavar="K1,K2",
                      help="comma-separated malicious kinds for "
                           "--rogue-shard (default: forge_result,"
                           "drop_ball,replay_stale)")
    p_gw.add_argument("--rogue-seed", type=int, default=0, metavar="S",
                      help="seed for the rogue shards' mutation schedule")
    p_gw.add_argument("--rogue-rate", type=float, default=1.0,
                      metavar="P",
                      help="per-verdict mutation probability for rogue "
                           "shards (default 1.0: lie on every verdict)")
    p_gw.add_argument("--no-verify", action="store_true",
                      help="trust the shards: skip certificates and "
                           "merge-time verification (PR 7 behavior; for "
                           "overhead A/B only)")
    p_gw.add_argument("--kill-shard", type=int, default=None, metavar="K",
                      help="chaos: SIGKILL shard K mid-batch and recover "
                           "by re-placing its slice onto survivors")
    p_gw.add_argument("--kill-seed", type=int, default=None, metavar="S",
                      help="chaos: derive the victim from seed S instead "
                           "of naming it")
    p_gw.add_argument("--kill-after", type=int, default=1, metavar="V",
                      help="fire the kill after the victim's V-th verdict")
    p_gw.add_argument("--deadline-ms", type=float, default=None,
                      metavar="MS",
                      help="per-query wall-clock budget on every shard; "
                           "an exceeded slice exits 4")
    p_gw.add_argument("--ball-budget", type=int, default=None, metavar="N",
                      help="per-shard candidate-ball admission bound")
    p_gw.add_argument("--json-summary", default=None, metavar="FILE",
                      help="also write the gateway summary as JSON")
    p_gw.add_argument("--metrics-out", default=None, metavar="FILE",
                      help="write a Prometheus text-exposition snapshot "
                           "of the gateway run (repro_verify_total "
                           "counters et al.)")
    p_gw.add_argument("--trace", nargs="?", const="trace.jsonl",
                      default=None, metavar="FILE",
                      help="write the gateway's role-scoped span trace")
    p_gw.add_argument("--leakage-audit", action="store_true",
                      help="audit the gateway trace against the allowed-"
                           "observation model (exit 5 on a leak)")
    p_gw.set_defaults(func=cmd_gateway)

    p_work = sub.add_parser("workloads",
                            help="LDBC BI workloads (Fig. 18)")
    p_work.add_argument("--semantics", default="hom",
                        choices=[s.value for s in Semantics])
    p_work.set_defaults(func=cmd_workloads)

    p_prune = sub.add_parser("prune", help="pruning ablation (Fig. 2a)")
    p_prune.add_argument("dataset", choices=datasets)
    p_prune.add_argument("--queries", type=int, default=3)
    p_prune.add_argument("--size", type=int, default=8)
    p_prune.add_argument("--diameter", type=int, default=3)
    p_prune.add_argument("--semantics", default="hom",
                         choices=[s.value for s in Semantics])
    p_prune.set_defaults(func=cmd_prune)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
