"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats <dataset>``             -- Table 3-style statistics.
* ``run <dataset>``               -- run one random query end to end and
                                     report matches, pruning, and timings.
* ``workloads``                   -- the ten LDBC BI workloads (Fig. 18).
* ``prune <dataset>``             -- pruning-technique ablation (Fig. 2a).

All commands accept ``--scale`` (dataset size multiplier) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro.framework.prilo import PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.graph.query import Semantics
from repro.workloads.datasets import DATASET_SPECS, load_dataset
from repro.workloads.experiments import (
    dataset_statistics,
    ldbc_study,
    pruning_study,
)


def _config(args: argparse.Namespace) -> PriloConfig:
    return PriloConfig(k_players=args.players, modulus_bits=args.modulus,
                       q_bits=16 if args.modulus <= 1024 else 32,
                       r_bits=16 if args.modulus <= 1024 else 32,
                       seed=args.seed)


def cmd_stats(args: argparse.Namespace) -> int:
    row = dataset_statistics(load_dataset(args.dataset, scale=args.scale))
    for key, value in row.items():
        print(f"{key:>20}: {value}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    semantics = Semantics(args.semantics)
    query = dataset.random_query(size=args.size, diameter=args.diameter,
                                 semantics=semantics, seed=args.seed)
    print(f"dataset: {dataset.graph}")
    print(f"query:   {query}")
    engine = PriloStar.setup(dataset.graph_for(semantics), _config(args))
    result = engine.run(query)
    timings = result.metrics.timings
    print(f"candidates: {len(result.candidate_ids)}  "
          f"PM-positives: {len(result.pm_positive_ids)}  "
          f"verified: {len(result.verified_ids)}  "
          f"matches: {result.num_matches}")
    print(f"sequence mode: {result.sequence_mode}; all positives at "
          f"t={result.schedule.all_positives:.4f}s of "
          f"{result.schedule.makespan:.4f}s total evaluation")
    print(f"timings: preprocess={timings.user_preprocessing:.3f}s "
          f"pm={timings.pm_computation:.3f}s "
          f"eval={timings.evaluation:.3f}s "
          f"match={timings.user_matching:.3f}s")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    dataset = load_dataset("ldbc", scale=args.scale)
    records = ldbc_study(dataset, Semantics(args.semantics),
                         config=_config(args), seed=args.seed)
    print(f"{'query':<6} {'cands':>6} {'PPCR':>6} {'mode':>7} "
          f"{'SSG(s)':>9} {'RSG(s)':>9} {'speedup':>8}")
    for r in records:
        print(f"{r.workload:<6} {r.candidates:>6} {r.ppcr:>6.2f} "
              f"{r.mode:>7} {r.ssg_seconds:>9.4f} {r.rsg_seconds:>9.4f} "
              f"{min(r.scheduling_speedup, 100):>7.1f}x")
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    semantics = Semantics(args.semantics)
    queries = dataset.random_queries(args.queries, size=args.size,
                                     diameter=args.diameter,
                                     semantics=semantics, seed=args.seed)
    study = pruning_study(dataset, queries,
                          methods=("neighbor", "path", "twiglet", "bf"),
                          config=_config(args))
    print(f"candidates: {study.candidates}")
    print(f"{'method':<14} {'kept':>6} {'PPCR':>6} {'cost(s)':>9}")
    for method in study.confusion:
        counts = study.confusion[method]
        print(f"{method:<14} {counts.tp + counts.fp:>6} "
              f"{counts.ppcr:>6.2f} "
              f"{study.total_cost.get(method, 0.0):>9.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prilo/Prilo*: privacy preserving LGPQ processing")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--players", type=int, default=4,
                        help="number of Player servers (k)")
    parser.add_argument("--modulus", type=int, default=1024,
                        help="CGBE modulus bits (paper: 4096)")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sorted(DATASET_SPECS)
    p_stats = sub.add_parser("stats", help="dataset statistics (Table 3)")
    p_stats.add_argument("dataset", choices=datasets)
    p_stats.set_defaults(func=cmd_stats)

    p_run = sub.add_parser("run", help="run one random query end to end")
    p_run.add_argument("dataset", choices=datasets)
    p_run.add_argument("--size", type=int, default=8)
    p_run.add_argument("--diameter", type=int, default=3)
    p_run.add_argument("--semantics", default="hom",
                       choices=[s.value for s in Semantics])
    p_run.set_defaults(func=cmd_run)

    p_work = sub.add_parser("workloads",
                            help="LDBC BI workloads (Fig. 18)")
    p_work.add_argument("--semantics", default="hom",
                        choices=[s.value for s in Semantics])
    p_work.set_defaults(func=cmd_workloads)

    p_prune = sub.add_parser("prune", help="pruning ablation (Fig. 2a)")
    p_prune.add_argument("dataset", choices=datasets)
    p_prune.add_argument("--queries", type=int, default=3)
    p_prune.add_argument("--size", type=int, default=8)
    p_prune.add_argument("--diameter", type=int, default=3)
    p_prune.add_argument("--semantics", default="hom",
                         choices=[s.value for s in Semantics])
    p_prune.set_defaults(func=cmd_prune)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
