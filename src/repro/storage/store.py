"""The persistent offline artifact store -- the paper's step-1 outsourcing.

Sec. 2.3 treats ball generation as a one-time offline step ("the data
owner generates all balls of graph G with various diameters offline"),
yet the in-process engines rebuild every store on construction: the ball
index re-extracts subgraphs, the Dealer re-encrypts blobs, and the
Players re-enumerate per-ball pruning features on every query.
:class:`ArtifactStore` persists that whole offline output once:

* **balls.pack** -- every ball's canonical JSON payload, concatenated;
  loaded through ``mmap`` so a cold engine start touches only the balls
  a query actually visits;
* **encrypted.pack** -- the Dealer's authenticated ciphertext blobs
  (StreamCipher under the owner's ``sk``), same offset table;
* **twiglets.json** -- per-ball *full-alphabet* twiglet feature sets
  (Alg. 5 line 3's ``R``).  Online, a query restricts them to
  ``Sigma_Q`` via :func:`repro.core.twiglets.filter_twiglets` -- provably
  the same set the per-query DFS enumerates, for *any* future query
  alphabet.  (The paper's CGBE-encrypted twiglet *tables* are per-query
  user artifacts -- they consume the user's randomness -- so the
  reusable offline piece is the Player-side feature extraction.)
* **trees.json** -- per-ball canonical 2-label tree encodings and BF
  bitsets under the *graph-wide* codec (Sec. 4.1's offline view).
  Online BF pruning encodes against the query's codec, so these serve
  ``store inspect`` / integrity sweeps rather than the hot path.

The ``manifest.json`` keys everything by (graph digest, radii,
``twiglet_h``, BF parameters, owner-key fingerprint) and carries a
sha256 per artifact file: :meth:`ArtifactStore.check` detects staleness
(the graph or config changed under the store), :meth:`verify` detects
tampering.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.bf_pruning import BFConfig, PAD_ENCODING
from repro.core.encoding import LabelCodec
from repro.core.trees import (
    BF_TOPOLOGIES,
    bf_threshold_exceeded,
    enumerate_center_tree_encodings,
)
from repro.core.twiglets import (
    twiglet_from_jsonable,
    twiglet_to_jsonable,
    twiglets_from,
)
from repro.crypto.keys import DataOwnerKey
from repro.crypto.stream_cipher import AuthenticationError
from repro.storage.authenticate import (
    auth_key,
    build_auth_block,
    build_catalog,
    leaf_digest,
    updated_auth_block,
)
from repro.filters.bloom import BloomFilter
from repro.framework.faults import FaultAction, FaultInjector, FaultKind
from repro.framework.messages import EncryptedBallBlob
from repro.graph.ball import Ball, BallIndex, extract_ball
from repro.graph.delta import GraphDelta, dirty_ball_keys, touched_min_distances
from repro.graph.io import ball_from_bytes, ball_to_bytes, graph_to_json
from repro.graph.labeled_graph import LabeledGraph
from repro.observability.spans import NULL_TRACER

_MANIFEST = "manifest.json"
_BALLS_PACK = "balls.pack"
_ENCRYPTED_PACK = "encrypted.pack"
_TWIGLETS = "twiglets.json"
_TREES = "trees.json"
_VERSION = 1


class StoreError(RuntimeError):
    """Store is missing, stale, malformed, or failed verification."""


class StoreMiss(StoreError):
    """A requested ball id is simply not in this store.

    Distinct from corruption on purpose: a *shard* pack (see
    :func:`shard_split`) legitimately holds only its placement slice, so
    a miss on a re-placed orphan ball must fall back to the live graph
    without quarantining the pack -- quarantine is for artifacts that
    served *wrong* bytes, not for artifacts that never held the ball.
    """


@dataclass(frozen=True)
class PackReport:
    """Verification outcome for one artifact file."""

    name: str
    #: ``ok`` | ``stale`` | ``tampered`` | ``missing``
    status: str
    reason: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "status": self.status,
                "reason": self.reason}


@dataclass
class VerifyReport:
    """The full integrity/staleness picture of one store.

    Unlike the old first-failure raise, every artifact is checked and
    reported, so an operator sees the complete damage in one sweep --
    and ``repro store verify`` can map stale vs tampered to distinct
    exit codes.
    """

    packs: list[PackReport] = field(default_factory=list)
    balls: int = 0
    #: Blobs that decrypt-authenticated AND matched the plaintext pack
    #: during the keyed sweep (0 when no key was supplied).
    decrypted: int = 0

    @property
    def ok(self) -> bool:
        return all(p.status == "ok" for p in self.packs)

    @property
    def stale(self) -> list[PackReport]:
        return [p for p in self.packs if p.status == "stale"]

    @property
    def tampered(self) -> list[PackReport]:
        """Integrity failures: tampered or missing artifacts."""
        return [p for p in self.packs if p.status in ("tampered", "missing")]

    def as_dict(self) -> dict:
        return {"ok": self.ok,
                "balls": self.balls,
                "decrypted": self.decrypted,
                "packs": [p.as_dict() for p in self.packs]}


@dataclass(frozen=True)
class DeltaApplyReport:
    """What one :meth:`ArtifactStore.apply_delta` actually touched.

    The incremental-maintenance contract in one record: ``reused`` balls
    had their pack bytes (and Merkle leaves) copied verbatim, only
    ``reencrypted`` (= dirty + added) balls paid extraction + encryption
    -- the cost the dynamic-update benchmark gates against full rebuild.
    """

    balls_before: int
    balls_after: int
    reused: int
    reencrypted: int
    dirty_ball_ids: tuple[int, ...]
    added_ball_ids: tuple[int, ...]
    removed_ball_ids: tuple[int, ...]
    auth_root: str
    graph_digest: str

    @property
    def dirty(self) -> int:
        return len(self.dirty_ball_ids)

    @property
    def added(self) -> int:
        return len(self.added_ball_ids)

    @property
    def removed(self) -> int:
        return len(self.removed_ball_ids)

    def as_dict(self) -> dict:
        return {
            "balls_before": self.balls_before,
            "balls_after": self.balls_after,
            "reused": self.reused,
            "reencrypted": self.reencrypted,
            "dirty": self.dirty,
            "added": self.added,
            "removed": self.removed,
            "auth_root": self.auth_root,
            "graph_digest": self.graph_digest,
        }


def graph_digest(graph: LabeledGraph) -> str:
    """sha256 over the canonical JSON form -- the store's identity key."""
    return hashlib.sha256(
        graph_to_json(graph).encode("utf-8")).hexdigest()


def key_digest(key: DataOwnerKey) -> str:
    """A fingerprint of ``sk`` (never the key itself) for staleness
    detection: a store built under a different owner key must not be
    silently served to a Dealer expecting this one."""
    return hashlib.sha256(b"prilo-store-key:" + key.ball_key).hexdigest()


def _file_digest(path: Path) -> str:
    h = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class PackSlice:
    """Offsets of one ball in the plaintext and encrypted packs."""

    ball_id: int
    center: str
    radius: int
    vertices: int
    offset: int
    length: int
    enc_offset: int
    enc_length: int


class _Pack:
    """A read-only mmap view over one pack file (plain bytes fallback
    for empty packs, which ``mmap`` refuses)."""

    def __init__(self, path: Path) -> None:
        self._path = path
        self._file = None
        self._view: "mmap.mmap | bytes | None" = None

    def slice(self, offset: int, length: int) -> bytes:
        if self._view is None:
            if self._path.stat().st_size == 0:
                self._view = b""
            else:
                self._file = self._path.open("rb")
                self._view = mmap.mmap(self._file.fileno(), 0,
                                       access=mmap.ACCESS_READ)
        return bytes(self._view[offset:offset + length])

    def close(self) -> None:
        if isinstance(self._view, mmap.mmap):
            self._view.close()
        if self._file is not None:
            self._file.close()
        self._view = None
        self._file = None


class StoreBallIndex(BallIndex):
    """A :class:`BallIndex` whose balls load from the store's pack
    instead of re-running the extraction BFS.

    Ball ids, candidate filtering and memoization are inherited -- the
    id assignment is a pure function of ``(graph.vertices(), radii)``,
    so loaded balls land on exactly the ids the in-process index would
    assign (checked at load: the pack payload carries its id).

    A ball that fails to load (corrupt payload, id mismatch) quarantines
    ``balls.pack`` and falls back to re-extracting from the live graph --
    extraction is the function that *built* the pack, so the recomputed
    ball is exactly what an untampered pack would have served.
    """

    def __init__(self, graph: LabeledGraph, radii: tuple[int, ...],
                 store: "ArtifactStore") -> None:
        # Stores that survived deltas pin their surviving balls to the
        # originally assigned ids via the manifest's ball-id table; a
        # freshly built (or pre-table) store falls back to the positional
        # assignment, which the table reproduces exactly at create time.
        super().__init__(graph, radii, ids=store.ball_id_map(graph))
        self._store = store

    def ball(self, center, radius) -> Ball:
        self._check_epoch()
        key = (center, radius)
        if key not in self._ids:
            raise KeyError(f"no ball for center={center!r} radius={radius}")
        cached = self._cache.get(key)
        if cached is None:
            cached = self._load_or_recompute(center, radius, self._ids[key])
            self._cache[key] = cached
        return cached

    def _load_or_recompute(self, center, radius, ball_id: int) -> Ball:
        store = self._store
        if not store.is_quarantined(_BALLS_PACK):
            try:
                loaded = store.load_ball(ball_id)
                if loaded.ball_id != ball_id:
                    raise StoreError(
                        f"stored ball id {loaded.ball_id} does not match "
                        f"index id {ball_id} -- stale store?")
            except StoreMiss:
                # Not in this (shard) pack: an expected miss, not damage.
                # Extract from the live graph without quarantining --
                # extraction is the function that built every pack, so
                # the result is exactly what a pack holding the ball
                # would have served.
                return extract_ball(self._graph, center, radius,
                                    ball_id=ball_id)
            except (StoreError, ValueError, KeyError, TypeError,
                    UnicodeDecodeError) as exc:
                if not store.quarantine_enabled:
                    raise
                store.quarantine(
                    _BALLS_PACK,
                    f"ball {ball_id} failed to load: {exc}")
            else:
                return loaded
        return extract_ball(self._graph, center, radius, ball_id=ball_id)


class StoreEncryptedBalls:
    """The Dealer's blob source backed by ``encrypted.pack`` (duck-types
    :class:`repro.framework.roles.EncryptedBallStore`).

    ``key`` (supplied by the DataOwner, who holds ``sk``) enables the
    tamper fallback: a blob the user reports as failing authentication
    quarantines ``encrypted.pack`` and is re-encrypted from the plaintext
    pack -- the same bytes-in, so the re-served blob decrypts to the
    identical ball.

    ``fallback_index`` (a :class:`repro.graph.ball.BallIndex`) enables
    serving balls the pack never held: a shard store only carries its
    placement slice, so after a shard death the Dealer here may be asked
    for a re-placed orphan -- the blob is then encrypted on the fly from
    the live-graph extraction (requires ``key``).
    """

    def __init__(self, store: "ArtifactStore",
                 key: DataOwnerKey | None = None,
                 fallback_index=None) -> None:
        self._store = store
        self._cipher = key.cipher() if key is not None else None
        self._fallback_index = fallback_index
        self._cache: dict[int, EncryptedBallBlob] = {}

    def _encrypt_missing(self, ball_id: int) -> EncryptedBallBlob:
        if self._cipher is None or self._fallback_index is None:
            raise StoreMiss(
                f"ball {ball_id} not in this shard's pack and no "
                f"owner key/fallback index to synthesize it")
        ball = self._fallback_index.ball_by_id(ball_id)
        return EncryptedBallBlob(
            ball_id=ball_id,
            blob=self._cipher.encrypt(ball_to_bytes(ball)))

    def _reencrypt(self, ball_id: int) -> EncryptedBallBlob:
        key = f"reencrypt:b{ball_id}"
        for attempt in range(2):
            try:
                payload = ball_to_bytes(self._store.load_ball(ball_id))
            except StoreMiss:
                return self._encrypt_missing(ball_id)
            except (StoreError, ValueError, KeyError, TypeError,
                    UnicodeDecodeError) as exc:
                self._store.faults.record(
                    FaultKind.STORE_TAMPER, key, FaultAction.DETECTED,
                    detail=f"plaintext payload rejected: {exc}",
                    attempt=attempt)
                if attempt == 0:
                    # Transient rot (or a chaos flip) on the first serve:
                    # re-read the authoritative pack once.  Persistent
                    # corruption still fails loudly below.
                    self._store.faults.record(
                        FaultKind.STORE_TAMPER, key, FaultAction.RETRIED,
                        detail="re-reading plaintext pack", attempt=attempt)
                    continue
                raise StoreError(
                    f"cannot re-encrypt ball {ball_id}: plaintext pack "
                    f"unrecoverable ({exc})") from exc
            return EncryptedBallBlob(ball_id=ball_id,
                                     blob=self._cipher.encrypt(payload))
        raise AssertionError("unreachable")  # pragma: no cover

    def get(self, ball_id: int) -> EncryptedBallBlob:
        blob = self._cache.get(ball_id)
        if blob is None:
            if (self._cipher is not None
                    and self._store.is_quarantined(_ENCRYPTED_PACK)):
                blob = self._reencrypt(ball_id)
            else:
                try:
                    blob = EncryptedBallBlob(
                        ball_id=ball_id,
                        blob=self._store.load_encrypted(ball_id))
                except StoreMiss:
                    blob = self._encrypt_missing(ball_id)
            self._cache[ball_id] = blob
        return blob

    def refetch(self, ball_id: int) -> EncryptedBallBlob:
        """Re-serve a ball whose blob failed authentication downstream:
        drop the bad copy, quarantine the pack, re-encrypt from the
        authoritative plaintext (when the owner key is available)."""
        self._cache.pop(ball_id, None)
        if self._cipher is not None:
            if self._store.quarantine_enabled:
                self._store.quarantine(
                    _ENCRYPTED_PACK,
                    f"blob for ball {ball_id} failed authentication")
            blob = self._reencrypt(ball_id)
            self._cache[ball_id] = blob
            return blob
        return self.get(ball_id)


class ArtifactStore:
    """The on-disk offline outsourcing output (see module docstring)."""

    def __init__(self, root: Path, manifest: dict) -> None:
        self._root = root
        self._manifest = manifest
        self._slices: dict[int, PackSlice] = {
            entry["ball_id"]: PackSlice(**entry)
            for entry in manifest["balls"]
        }
        self._balls_pack = _Pack(root / _BALLS_PACK)
        self._encrypted_pack = _Pack(root / _ENCRYPTED_PACK)
        self._twiglets: dict[int, frozenset] | None = None
        self._trees: dict | None = None
        #: The engine's per-run injector (inert by default).  Chaos may
        #: flip bytes in served payloads; detection happens downstream
        #: (parse failure, MAC failure) exactly like genuine rot.
        self._faults = FaultInjector()
        #: The engine's per-run span tracer (inert by default).
        self._tracer = NULL_TRACER
        #: Whether a pack that serves corrupt data may be quarantined and
        #: recomputed around (``RecoveryPolicy.quarantine_store``).
        self.quarantine_enabled = True
        self._quarantined: dict[str, str] = {}
        self._load_attempts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # fault injection / quarantine
    # ------------------------------------------------------------------
    def install_faults(self, injector: FaultInjector) -> None:
        """Bind the run's fault injector (chaos + event log)."""
        self._faults = injector

    def install_tracer(self, tracer) -> None:
        """Bind the run's span tracer: every served payload emits an
        ``sp``-scope I/O event (artifact kind + byte count -- the store
        serves SP-owned data, so sizes are the whole story)."""
        self._tracer = tracer

    @property
    def faults(self) -> FaultInjector:
        return self._faults

    @property
    def auth(self) -> dict | None:
        """The manifest's Merkle auth block (root, committed leaf table,
        candidate catalog), or ``None`` for packs built before PR 8."""
        return self._manifest.get("auth")

    @property
    def manifest_graph_digest(self) -> str:
        return self._manifest["graph_digest"]

    def is_quarantined(self, name: str) -> bool:
        return name in self._quarantined

    @property
    def quarantined(self) -> dict[str, str]:
        """Quarantined pack name -> reason."""
        return dict(self._quarantined)

    def quarantine(self, name: str, reason: str) -> None:
        """Mark one artifact file as untrusted for the rest of this
        store's lifetime; callers fall back to recomputing from the live
        graph (balls) or re-encrypting from the plaintext pack (blobs)."""
        if name in self._quarantined:
            return
        self._quarantined[name] = reason
        self._faults.record(FaultKind.STORE_TAMPER, f"store:{name}",
                            FaultAction.DETECTED, detail=reason)
        self._faults.record(
            FaultKind.STORE_TAMPER, f"store:{name}", FaultAction.DEGRADED,
            detail=f"{name} quarantined; serving from fallback source")

    def _served_bytes(self, kind_key: str, blob: bytes) -> bytes:
        """Route one served payload through the chaos injector.  Only the
        first serve of a key can be corrupted (the attempt counter
        increments per call), so recovery paths that re-read converge."""
        attempt = self._load_attempts.get(kind_key, 0)
        self._load_attempts[kind_key] = attempt + 1
        if self._tracer.enabled:
            # kind_key is "store:<kind>:<ball_id>"; the span carries the
            # kind and size only (ball ids already ride in share keys).
            self._tracer.event("store_io", "sp",
                               kind=kind_key.split(":")[1],
                               bytes=len(blob), attempt=attempt)
        return self._faults.corrupt(FaultKind.STORE_TAMPER, kind_key, blob,
                                    attempt=attempt)

    # ------------------------------------------------------------------
    # creation (data owner side)
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str | Path, graph: LabeledGraph,
               radii: tuple[int, ...], key: DataOwnerKey, *,
               twiglet_h: int | None = 3,
               bf_config: BFConfig | None = None,
               ) -> "ArtifactStore":
        """Run the full offline outsourcing step into ``root``.

        ``twiglet_h=None`` skips the twiglet feature artifact;
        ``bf_config=None`` skips the tree/BF artifact.  Both packs are
        always written -- they are what cold starts need.
        """
        root = Path(root)
        if root.exists() and any(root.iterdir()):
            raise StoreError(f"refusing to overwrite non-empty {root}")
        root.mkdir(parents=True, exist_ok=True)
        index = BallIndex(graph, radii)
        cipher = key.cipher()
        vkey = auth_key(key)
        entries: list[dict] = []
        leaves: dict[int, str] = {}
        catalog_rows: list[tuple[int, int, object]] = []
        twiglets: dict[str, list] = {}
        trees: dict[str, dict] = {}
        codec = LabelCodec.from_alphabet(graph.alphabet)
        with (root / _BALLS_PACK).open("wb") as plain, \
                (root / _ENCRYPTED_PACK).open("wb") as enc:
            offset = enc_offset = 0
            for center in graph.vertices():
                for radius in index.radii:
                    ball = index.ball(center, radius)
                    payload = ball_to_bytes(ball)
                    blob = cipher.encrypt(payload)
                    plain.write(payload)
                    enc.write(blob)
                    entries.append({
                        "ball_id": ball.ball_id,
                        "center": repr(center),
                        "radius": radius,
                        "vertices": ball.size,
                        "offset": offset,
                        "length": len(payload),
                        "enc_offset": enc_offset,
                        "enc_length": len(blob),
                    })
                    leaves[ball.ball_id] = leaf_digest(vkey, ball.ball_id,
                                                       blob)
                    catalog_rows.append((ball.ball_id, radius,
                                         graph.label(center)))
                    offset += len(payload)
                    enc_offset += len(blob)
                    if twiglet_h is not None:
                        features = twiglets_from(ball.graph, ball.center,
                                                 twiglet_h)
                        twiglets[str(ball.ball_id)] = sorted(
                            (twiglet_to_jsonable(t) for t in features))
                    if bf_config is not None:
                        trees[str(ball.ball_id)] = cls._tree_artifact(
                            ball, codec, bf_config)
        (root / _TWIGLETS).write_text(
            json.dumps({"h": twiglet_h, "balls": twiglets},
                       separators=(",", ":"), sort_keys=True),
            encoding="utf-8")
        (root / _TREES).write_text(
            json.dumps({"bf": cls._bf_params(bf_config), "balls": trees},
                       separators=(",", ":"), sort_keys=True),
            encoding="utf-8")
        ball_ids: dict[str, dict[str, int]] = {}
        for (center, radius), ball_id in index.id_map().items():
            ball_ids.setdefault(repr(center), {})[str(radius)] = ball_id
        manifest = {
            "version": _VERSION,
            "graph_digest": graph_digest(graph),
            "key_digest": key_digest(key),
            "radii": list(index.radii),
            "twiglet_h": twiglet_h,
            "bf": cls._bf_params(bf_config),
            "balls": entries,
            # (center, radius) -> ball id, durable across deltas: an
            # incrementally maintained store keeps surviving balls' ids
            # stable instead of the positional renumbering of a rebuild.
            "ball_ids": ball_ids,
            "auth": build_auth_block(key, leaves,
                                     build_catalog(catalog_rows)),
            "checksums": {
                name: _file_digest(root / name)
                for name in (_BALLS_PACK, _ENCRYPTED_PACK, _TWIGLETS, _TREES)
            },
        }
        (root / _MANIFEST).write_text(
            json.dumps(manifest, indent=1, sort_keys=True), encoding="utf-8")
        return cls(root, manifest)

    @staticmethod
    def _bf_params(bf_config: BFConfig | None) -> dict | None:
        if bf_config is None:
            return None
        return {"eta": bf_config.eta,
                "expected_trees": bf_config.expected_trees,
                "false_positive_rate": bf_config.false_positive_rate,
                "threshold_t": bf_config.threshold_t,
                "max_ball_trees": bf_config.max_ball_trees}

    @staticmethod
    def _tree_artifact(ball: Ball, codec: LabelCodec,
                       config: BFConfig) -> dict:
        """One ball's Sec. 4.1 offline view: canonical tree encodings and
        the bloom bitset, under the graph-wide codec.  Mirrors the bypass
        decisions of :func:`repro.core.bf_pruning.player_bf_prune`."""
        if bf_threshold_exceeded(ball.graph, ball.center,
                                 config.threshold_t):
            return {"bypassed": True}
        encodings, truncated = enumerate_center_tree_encodings(
            ball.graph, ball.center, codec, BF_TOPOLOGIES,
            max_trees=config.max_ball_trees)
        if truncated:
            return {"bypassed": True, "trees": len(encodings)}
        ball_filter = BloomFilter(config.filter_bits(),
                                  config.filter_hashes())
        ball_filter.add(PAD_ENCODING)
        ball_filter.update(sorted(encodings))
        return {"bypassed": False,
                "trees": len(encodings),
                "filter_hex": ball_filter.to_bytes().hex()}

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str | Path) -> "ArtifactStore":
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.is_file():
            raise StoreError(f"no manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreError(f"malformed manifest: {exc}") from exc
        if manifest.get("version") != _VERSION:
            raise StoreError(
                f"unsupported store version {manifest.get('version')!r}")
        return cls(root, manifest)

    def close(self) -> None:
        self._balls_pack.close()
        self._encrypted_pack.close()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # staleness / integrity
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def radii(self) -> tuple[int, ...]:
        return tuple(self._manifest["radii"])

    @property
    def twiglet_h(self) -> int | None:
        return self._manifest.get("twiglet_h")

    def __len__(self) -> int:
        return len(self._slices)

    def check(self, *, graph: LabeledGraph | None = None,
              radii: tuple[int, ...] | None = None,
              key: DataOwnerKey | None = None) -> None:
        """Staleness detection: raise :class:`StoreError` when the live
        configuration no longer matches what the store was built from.

        Radii must match *exactly* (not merely be a subset): ball ids are
        assigned by ``(vertex order) x (sorted radii)``, so an engine
        configured with different radii would address different balls
        under the same ids.
        """
        if graph is not None:
            live = graph_digest(graph)
            if live != self._manifest["graph_digest"]:
                raise StoreError(
                    f"store is stale: graph digest {live[:12]} != stored "
                    f"{self._manifest['graph_digest'][:12]} (the data graph "
                    f"changed since the store was built)")
        if radii is not None:
            wanted = tuple(sorted(set(radii)))
            if wanted != self.radii:
                raise StoreError(
                    f"store is stale: radii {wanted} != stored {self.radii} "
                    f"(ball ids would not line up)")
        if key is not None and key_digest(key) != self._manifest["key_digest"]:
            raise StoreError(
                "store is stale: built under a different owner key")

    def verify(self, key: DataOwnerKey | None = None, *,
               graph: LabeledGraph | None = None,
               radii: tuple[int, ...] | None = None) -> VerifyReport:
        """Full integrity/staleness sweep, reported per artifact.

        Every artifact file is re-hashed against the manifest; with
        ``key``, every encrypted blob is additionally
        decrypt-authenticated and compared to the plaintext pack (which
        catches same-length blob swaps that survive a recomputed file
        checksum).  ``graph``/``radii``/``key`` also drive staleness
        checks, reported against ``manifest.json``.

        Unlike :meth:`check`, nothing raises: all failures are collected
        into the returned :class:`VerifyReport` so operators (and the
        ``repro store verify`` exit codes) see the whole picture.
        """
        report = VerifyReport(balls=len(self._slices))
        for name, expected in self._manifest["checksums"].items():
            path = self._root / name
            if not path.is_file():
                report.packs.append(PackReport(
                    name, "missing", f"artifact file missing at {path}"))
                continue
            actual = _file_digest(path)
            if actual != expected:
                report.packs.append(PackReport(
                    name, "tampered",
                    f"checksum {actual[:12]} != manifest {expected[:12]}"))
            else:
                report.packs.append(PackReport(name, "ok"))
        by_name = {p.name: p for p in report.packs}

        stale_key = (key is not None
                     and key_digest(key) != self._manifest["key_digest"])
        if graph is not None:
            live = graph_digest(graph)
            if live != self._manifest["graph_digest"]:
                report.packs.append(PackReport(
                    _MANIFEST, "stale",
                    f"graph digest {live[:12]} != stored "
                    f"{self._manifest['graph_digest'][:12]} (the data "
                    f"graph changed since the store was built)"))
        if radii is not None:
            wanted = tuple(sorted(set(radii)))
            if wanted != self.radii:
                report.packs.append(PackReport(
                    _MANIFEST, "stale",
                    f"radii {wanted} != stored {self.radii} (ball ids "
                    f"would not line up)"))
        if stale_key:
            report.packs.append(PackReport(
                _MANIFEST, "stale", "built under a different owner key"))

        sweepable = (key is not None and not stale_key
                     and by_name.get(_ENCRYPTED_PACK,
                                     PackReport("", "missing")).status
                     != "missing"
                     and by_name.get(_BALLS_PACK,
                                     PackReport("", "missing")).status
                     != "missing")
        if sweepable:
            cipher = key.cipher()
            auth = self._manifest.get("auth")
            vkey = auth_key(key) if auth is not None else None
            bad = 0
            first = ""
            for sl in self._slices.values():
                blob = self._encrypted_pack.slice(sl.enc_offset,
                                                  sl.enc_length)
                if auth is not None:
                    committed = auth["leaves"].get(str(sl.ball_id))
                    if committed != leaf_digest(vkey, sl.ball_id, blob):
                        bad += 1
                        first = first or (f"ball {sl.ball_id}: blob does "
                                          f"not match its committed "
                                          f"Merkle leaf")
                        continue
                try:
                    payload = cipher.decrypt(blob)
                except AuthenticationError as exc:
                    # The only failure decrypt raises: a truncated or
                    # MAC-failing blob.  Anything else (an injected
                    # tracer/chaos bug, a broken cipher) must propagate,
                    # not masquerade as tamper.
                    bad += 1
                    first = first or (f"ball {sl.ball_id} failed "
                                      f"authenticated decryption: {exc}")
                    continue
                if payload != self._balls_pack.slice(sl.offset, sl.length):
                    bad += 1
                    first = first or (f"ball {sl.ball_id}: encrypted and "
                                      f"plaintext packs disagree")
                    continue
                report.decrypted += 1
            if bad:
                entry = by_name[_ENCRYPTED_PACK]
                reason = f"{bad} blob(s) failed the keyed sweep; {first}"
                if entry.status == "ok":
                    report.packs[report.packs.index(entry)] = PackReport(
                        _ENCRYPTED_PACK, "tampered", reason)
                else:
                    report.packs.append(PackReport(
                        _ENCRYPTED_PACK, "tampered", reason))
        return report

    # ------------------------------------------------------------------
    # incremental maintenance (dynamic graphs)
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta, graph: LabeledGraph,
                    key: DataOwnerKey) -> DeltaApplyReport:
        """Apply one :class:`~repro.graph.delta.GraphDelta` to the live
        graph *and* this store, re-encrypting only the dirty balls.

        ``graph`` must be the store's parent graph (checked against the
        manifest digest before anything mutates) and is updated in
        place.  The dirty set is the sound overapproximation of
        :func:`~repro.graph.delta.dirty_ball_keys`: every ball whose
        center lies within its radius of a touched vertex on either side
        of the delta.  Clean balls keep their pack bytes, ball ids and
        Merkle leaves verbatim; dirty balls are re-extracted and
        re-encrypted; removed vertices drop their balls; added vertices
        get fresh ids past the historical maximum.  The auth block is
        patched by leaf replacement (:func:`updated_auth_block`) and the
        candidate catalog recommitted, so verified serving keeps working
        across updates under the new root.

        All artifact files are rewritten via temp-file + rename with the
        manifest last, so a crash mid-apply leaves either the parent or
        the child store, never a hybrid.
        """
        self.check(graph=graph, key=key)
        radii = self.radii
        if delta.is_empty:
            auth = self.auth or {}
            n = len(self._slices)
            return DeltaApplyReport(
                balls_before=n, balls_after=n, reused=n, reencrypted=0,
                dirty_ball_ids=(), added_ball_ids=(), removed_ball_ids=(),
                auth_root=auth.get("root", ""),
                graph_digest=self._manifest["graph_digest"])

        ids = self.ball_id_map(graph)
        if ids is None:
            ids = BallIndex(graph, radii).id_map()
        max_radius = max(radii)
        pre_alphabet = graph.alphabet
        touched = delta.touched_vertices()
        min_dists = touched_min_distances(graph, touched, max_radius)
        delta.apply(graph)
        touched_min_distances(graph, touched, max_radius, into=min_dists)

        removed_set = set(delta.removed_vertices)
        added_centers = [v for v, _ in delta.added_vertices]
        dirty_keys = dirty_ball_keys(
            min_dists, radii, exclude=removed_set | set(added_centers))
        removed_ids = sorted(ids[(v, r)] for v in removed_set
                             for r in radii)
        removed_id_set = set(removed_ids)
        next_id = max(ids.values(), default=-1) + 1
        new_ids = {k: v for k, v in ids.items() if k[0] not in removed_set}
        added_ball_ids: list[int] = []
        for v in added_centers:
            for r in radii:
                new_ids[(v, r)] = next_id
                added_ball_ids.append(next_id)
                next_id += 1
        key_by_id = {ball_id: k for k, ball_id in ids.items()}

        cipher = key.cipher()
        vkey = auth_key(key)
        old_auth = self.auth
        twiglet_h = self.twiglet_h
        bf_params = self._manifest.get("bf")
        bf_config = BFConfig(**bf_params) if bf_params else None
        codec = (LabelCodec.from_alphabet(graph.alphabet)
                 if bf_config is not None else None)
        # The tree artifacts encode under the graph-wide codec; label
        # churn in the alphabet invalidates every encoding, so only then
        # are clean balls' trees recomputed (plaintext work -- their
        # ciphertext still copies verbatim).
        recode_all_trees = (bf_config is not None
                            and graph.alphabet != pre_alphabet)

        twiglets_doc = json.loads(
            (self._root / _TWIGLETS).read_text(encoding="utf-8"))
        trees_doc = json.loads(
            (self._root / _TREES).read_text(encoding="utf-8"))
        twiglet_balls: dict[str, list] = dict(twiglets_doc.get("balls", {}))
        tree_balls: dict[str, dict] = dict(trees_doc.get("balls", {}))

        entries: list[dict] = []
        catalog_rows: list[tuple[int, int, object]] = []
        replaced_leaves: dict[int, str] = {}
        all_leaves: dict[int, str] = {}
        dirty_ball_ids: list[int] = []
        reused = 0

        def _refresh_artifacts(ball: Ball) -> None:
            sid = str(ball.ball_id)
            if twiglet_h is not None:
                features = twiglets_from(ball.graph, ball.center, twiglet_h)
                twiglet_balls[sid] = sorted(
                    twiglet_to_jsonable(t) for t in features)
            if bf_config is not None:
                tree_balls[sid] = self._tree_artifact(ball, codec, bf_config)

        tmp_plain = self._root / (_BALLS_PACK + ".tmp")
        tmp_enc = self._root / (_ENCRYPTED_PACK + ".tmp")
        with tmp_plain.open("wb") as plain, tmp_enc.open("wb") as enc:
            offset = enc_offset = 0

            def _emit(entry: dict, payload: bytes, blob: bytes) -> None:
                nonlocal offset, enc_offset
                plain.write(payload)
                enc.write(blob)
                entry["offset"] = offset
                entry["length"] = len(payload)
                entry["enc_offset"] = enc_offset
                entry["enc_length"] = len(blob)
                offset += len(payload)
                enc_offset += len(blob)
                entries.append(entry)

            for old in self._manifest["balls"]:
                ball_id = old["ball_id"]
                if ball_id in removed_id_set:
                    twiglet_balls.pop(str(ball_id), None)
                    tree_balls.pop(str(ball_id), None)
                    continue
                center, radius = key_by_id[ball_id]
                catalog_rows.append((ball_id, radius, graph.label(center)))
                if (center, radius) in dirty_keys:
                    ball = extract_ball(graph, center, radius,
                                        ball_id=ball_id)
                    payload = ball_to_bytes(ball)
                    blob = cipher.encrypt(payload)
                    leaf = leaf_digest(vkey, ball_id, blob)
                    replaced_leaves[ball_id] = leaf
                    all_leaves[ball_id] = leaf
                    dirty_ball_ids.append(ball_id)
                    _refresh_artifacts(ball)
                    _emit({"ball_id": ball_id, "center": old["center"],
                           "radius": radius, "vertices": ball.size},
                          payload, blob)
                else:
                    sl = self._slices[ball_id]
                    payload = self._balls_pack.slice(sl.offset, sl.length)
                    blob = self._encrypted_pack.slice(sl.enc_offset,
                                                      sl.enc_length)
                    if old_auth is None:
                        # Pre-auth store: no committed leaf table to
                        # patch, so digest the (unchanged) blob afresh.
                        all_leaves[ball_id] = leaf_digest(vkey, ball_id,
                                                          blob)
                    reused += 1
                    if recode_all_trees:
                        _ball = ball_from_bytes(payload)
                        tree_balls[str(ball_id)] = self._tree_artifact(
                            _ball, codec, bf_config)
                    _emit(dict(old), payload, blob)
            for center in added_centers:
                for radius in radii:
                    ball_id = new_ids[(center, radius)]
                    ball = extract_ball(graph, center, radius,
                                        ball_id=ball_id)
                    payload = ball_to_bytes(ball)
                    blob = cipher.encrypt(payload)
                    leaf = leaf_digest(vkey, ball_id, blob)
                    replaced_leaves[ball_id] = leaf
                    all_leaves[ball_id] = leaf
                    catalog_rows.append((ball_id, radius,
                                         graph.label(center)))
                    _refresh_artifacts(ball)
                    _emit({"ball_id": ball_id, "center": repr(center),
                           "radius": radius, "vertices": ball.size},
                          payload, blob)

        catalog = build_catalog(catalog_rows)
        if old_auth is not None:
            auth = updated_auth_block(key, old_auth,
                                      replaced=replaced_leaves,
                                      removed=removed_ids,
                                      catalog=catalog)
        else:
            auth = build_auth_block(key, all_leaves, catalog)

        ball_ids_table: dict[str, dict[str, int]] = {}
        for (center, radius), ball_id in new_ids.items():
            ball_ids_table.setdefault(repr(center), {})[str(radius)] = ball_id

        tmp_twiglets = self._root / (_TWIGLETS + ".tmp")
        tmp_trees = self._root / (_TREES + ".tmp")
        tmp_twiglets.write_text(
            json.dumps({"h": twiglets_doc.get("h"), "balls": twiglet_balls},
                       separators=(",", ":"), sort_keys=True),
            encoding="utf-8")
        tmp_trees.write_text(
            json.dumps({"bf": trees_doc.get("bf"), "balls": tree_balls},
                       separators=(",", ":"), sort_keys=True),
            encoding="utf-8")

        # Atomic turnover: packs/artifacts first, manifest (the commit
        # point) last.  Close the mmaps before replacing their files.
        self._balls_pack.close()
        self._encrypted_pack.close()
        os.replace(tmp_plain, self._root / _BALLS_PACK)
        os.replace(tmp_enc, self._root / _ENCRYPTED_PACK)
        os.replace(tmp_twiglets, self._root / _TWIGLETS)
        os.replace(tmp_trees, self._root / _TREES)

        manifest = dict(self._manifest)
        manifest["graph_digest"] = graph_digest(graph)
        manifest["balls"] = entries
        manifest["ball_ids"] = ball_ids_table
        manifest["auth"] = auth
        manifest["checksums"] = {
            name: _file_digest(self._root / name)
            for name in (_BALLS_PACK, _ENCRYPTED_PACK, _TWIGLETS, _TREES)
        }
        tmp_manifest = self._root / (_MANIFEST + ".tmp")
        tmp_manifest.write_text(
            json.dumps(manifest, indent=1, sort_keys=True),
            encoding="utf-8")
        os.replace(tmp_manifest, self._root / _MANIFEST)

        balls_before = len(self._slices)
        self._manifest = manifest
        self._slices = {entry["ball_id"]: PackSlice(**entry)
                        for entry in entries}
        self._balls_pack = _Pack(self._root / _BALLS_PACK)
        self._encrypted_pack = _Pack(self._root / _ENCRYPTED_PACK)
        self._twiglets = None
        self._trees = None

        report = DeltaApplyReport(
            balls_before=balls_before,
            balls_after=len(entries),
            reused=reused,
            reencrypted=len(dirty_ball_ids) + len(added_ball_ids),
            dirty_ball_ids=tuple(sorted(dirty_ball_ids)),
            added_ball_ids=tuple(added_ball_ids),
            removed_ball_ids=tuple(removed_ids),
            auth_root=auth["root"],
            graph_digest=manifest["graph_digest"])
        if self._tracer.enabled:
            self._tracer.event("delta_apply", "sp",
                               balls=report.balls_after,
                               dirty=report.dirty,
                               reencrypted=report.reencrypted)
        return report

    # ------------------------------------------------------------------
    # artifact access
    # ------------------------------------------------------------------
    def load_ball(self, ball_id: int) -> Ball:
        sl = self._slices.get(ball_id)
        if sl is None:
            raise StoreMiss(f"ball {ball_id} not in store")
        payload = self._served_bytes(f"store:ball:{ball_id}",
                                     self._balls_pack.slice(sl.offset,
                                                            sl.length))
        return ball_from_bytes(payload)

    def load_encrypted(self, ball_id: int) -> bytes:
        sl = self._slices.get(ball_id)
        if sl is None:
            raise StoreMiss(f"ball {ball_id} not in store")
        return self._served_bytes(
            f"store:enc:{ball_id}",
            self._encrypted_pack.slice(sl.enc_offset, sl.enc_length))

    def ball_id_map(self, graph: LabeledGraph
                    ) -> dict[tuple, int] | None:
        """The manifest's ``(center, radius) -> ball id`` table, keyed by
        live vertex objects; ``None`` for stores built before the table
        existed (callers then use the positional assignment, which is
        what the table recorded at create time anyway)."""
        table = self._manifest.get("ball_ids")
        if table is None:
            return None
        by_repr = {repr(v): v for v in graph.vertices()}
        ids: dict[tuple, int] = {}
        for center_repr, per_radius in table.items():
            center = by_repr.get(center_repr)
            if center is None:
                raise StoreError(
                    f"store is stale: ball-id table names vertex "
                    f"{center_repr} which the live graph does not have")
            for radius, ball_id in per_radius.items():
                ids[(center, int(radius))] = int(ball_id)
        return ids

    def ball_index(self, graph: LabeledGraph) -> StoreBallIndex:
        """The Players' ball index, loading from the pack (cold-start
        path).  ``graph`` must be the store's graph (:meth:`check`)."""
        return StoreBallIndex(graph, self.radii, self)

    def encrypted_store(self,
                        key: DataOwnerKey | None = None,
                        fallback_index=None) -> StoreEncryptedBalls:
        """The Dealer's blob source (no re-encryption at startup).  With
        ``key`` the source can re-encrypt from the plaintext pack when a
        served blob turns out tampered; ``fallback_index`` additionally
        lets a shard store serve re-placed orphan balls its pack never
        held (encrypted on the fly from the live graph)."""
        return StoreEncryptedBalls(self, key=key,
                                   fallback_index=fallback_index)

    def twiglet_features(self) -> dict[int, frozenset]:
        """Per-ball full-alphabet twiglet sets (lazy-loaded once)."""
        if self._twiglets is None:
            path = self._root / _TWIGLETS
            if not path.is_file():
                raise StoreError(f"store has no twiglet artifact at {path}")
            payload = json.loads(path.read_text(encoding="utf-8"))
            self._twiglets = {
                int(ball_id): frozenset(twiglet_from_jsonable(item)
                                        for item in items)
                for ball_id, items in payload["balls"].items()
            }
        return self._twiglets

    def tree_artifacts(self) -> dict:
        """Per-ball tree/BF artifacts (inspect & integrity use)."""
        if self._trees is None:
            path = self._root / _TREES
            if not path.is_file():
                raise StoreError(f"store has no tree artifact at {path}")
            self._trees = json.loads(path.read_text(encoding="utf-8"))
        return self._trees

    def ball_ids(self) -> list[int]:
        """All stored ball ids, in pack (= generation) order."""
        return [entry["ball_id"] for entry in self._manifest["balls"]]

    def describe(self) -> dict:
        """The ``store inspect`` payload: manifest metadata + totals."""
        sizes = {name: (self._root / name).stat().st_size
                 for name in self._manifest["checksums"]
                 if (self._root / name).is_file()}
        per_radius: dict[int, int] = {}
        for sl in self._slices.values():
            per_radius[sl.radius] = per_radius.get(sl.radius, 0) + 1
        return {
            "root": str(self._root),
            "version": self._manifest["version"],
            "graph_digest": self._manifest["graph_digest"],
            "key_digest": self._manifest["key_digest"],
            "radii": list(self.radii),
            "twiglet_h": self.twiglet_h,
            "bf": self._manifest.get("bf"),
            "balls": len(self._slices),
            "balls_per_radius": {str(r): n
                                 for r, n in sorted(per_radius.items())},
            "file_bytes": sizes,
        }


def shard_split(root: str | Path, out_root: str | Path, shards: int, *,
                vnodes: int | None = None, salt: str | None = None) -> dict:
    """Cut one store into per-shard packs under a consistent-hash ring.

    ``out_root/shard-<i>/`` becomes a fully valid, independently
    verifiable :class:`ArtifactStore` holding exactly shard ``i``'s
    placement slice (both packs re-packed with fresh offsets, twiglet and
    tree artifacts subset, checksums recomputed); ``out_root/placement.json``
    records the ring parameters and per-shard counts
    (:class:`repro.framework.placement.PlacementManifest`).

    The manifests inherit the source's ``graph_digest``/``key_digest``/
    ``radii``, so each shard store passes :meth:`ArtifactStore.check`
    against the *full* live graph -- a shard engine keeps global ball
    ids and simply misses (-> live-graph fallback) on balls outside its
    slice.

    Returns the placement summary (the manifest's jsonable form).
    """
    from repro.framework.placement import (
        DEFAULT_SALT,
        DEFAULT_VNODES,
        HashRing,
        PlacementManifest,
    )

    if shards < 1:
        raise StoreError("shard count must be positive")
    vnodes = DEFAULT_VNODES if vnodes is None else vnodes
    salt = DEFAULT_SALT if salt is None else salt
    src = ArtifactStore.open(root)
    out_root = Path(out_root)
    if out_root.exists() and any(out_root.iterdir()):
        raise StoreError(f"refusing to overwrite non-empty {out_root}")
    out_root.mkdir(parents=True, exist_ok=True)

    manifest = src._manifest
    ring = HashRing(range(shards), vnodes=vnodes, salt=salt)
    by_shard: dict[int, list[dict]] = {m: [] for m in ring.members}
    for entry in manifest["balls"]:
        by_shard[ring.owner_of(entry["ball_id"])].append(entry)

    twiglets = json.loads((src.root / _TWIGLETS).read_text(encoding="utf-8"))
    trees = json.loads((src.root / _TREES).read_text(encoding="utf-8"))

    shard_dirs: dict[int, str] = {}
    shard_balls: dict[int, int] = {}
    for shard_id, entries in by_shard.items():
        shard_dir = out_root / f"shard-{shard_id}"
        shard_dir.mkdir()
        shard_entries: list[dict] = []
        with (shard_dir / _BALLS_PACK).open("wb") as plain, \
                (shard_dir / _ENCRYPTED_PACK).open("wb") as enc:
            offset = enc_offset = 0
            for entry in entries:
                sl = src._slices[entry["ball_id"]]
                payload = src._balls_pack.slice(sl.offset, sl.length)
                blob = src._encrypted_pack.slice(sl.enc_offset,
                                                 sl.enc_length)
                plain.write(payload)
                enc.write(blob)
                shard_entries.append({**entry, "offset": offset,
                                      "enc_offset": enc_offset})
                offset += sl.length
                enc_offset += sl.enc_length
        owned = {str(e["ball_id"]) for e in entries}
        (shard_dir / _TWIGLETS).write_text(
            json.dumps({"h": twiglets.get("h"),
                        "balls": {k: v
                                  for k, v in twiglets["balls"].items()
                                  if k in owned}},
                       separators=(",", ":"), sort_keys=True),
            encoding="utf-8")
        (shard_dir / _TREES).write_text(
            json.dumps({"bf": trees.get("bf"),
                        "balls": {k: v for k, v in trees["balls"].items()
                                  if k in owned}},
                       separators=(",", ":"), sort_keys=True),
            encoding="utf-8")
        shard_manifest = {
            "version": _VERSION,
            "graph_digest": manifest["graph_digest"],
            "key_digest": manifest["key_digest"],
            "radii": manifest["radii"],
            "twiglet_h": manifest.get("twiglet_h"),
            "bf": manifest.get("bf"),
            "balls": shard_entries,
            # The *global* auth block, verbatim: a shard proves its
            # slice against the owner's pack-wide root, and orphaned
            # balls (served after a re-placement) still have committed
            # leaves even though this shard's pack never held them.
            "auth": manifest.get("auth"),
            # Likewise the global ball-id table: shard engines keep
            # global ids, including ids for balls outside their slice.
            "ball_ids": manifest.get("ball_ids"),
            "checksums": {
                name: _file_digest(shard_dir / name)
                for name in (_BALLS_PACK, _ENCRYPTED_PACK, _TWIGLETS,
                             _TREES)
            },
        }
        (shard_dir / _MANIFEST).write_text(
            json.dumps(shard_manifest, indent=1, sort_keys=True),
            encoding="utf-8")
        shard_dirs[shard_id] = shard_dir.name
        shard_balls[shard_id] = len(entries)

    auth = manifest.get("auth") or {}
    placement = PlacementManifest(
        members=ring.members, vnodes=vnodes, salt=salt,
        graph_digest=manifest["graph_digest"],
        radii=tuple(manifest["radii"]),
        balls=len(manifest["balls"]),
        shard_dirs=shard_dirs, shard_balls=shard_balls,
        auth_root=auth.get("root", ""),
        catalog=auth.get("catalog", {}),
        catalog_digest=auth.get("catalog_digest", ""))
    placement.write(out_root)
    src.close()
    return placement.to_jsonable()


__all__ = [
    "ArtifactStore",
    "DeltaApplyReport",
    "PackReport",
    "PackSlice",
    "StoreBallIndex",
    "StoreEncryptedBalls",
    "StoreError",
    "StoreMiss",
    "VerifyReport",
    "graph_digest",
    "key_digest",
    "shard_split",
]
