"""Keyed Merkle accumulator over encrypted ball packs.

The store's tamper sweep (PR 2) already walks every encrypted blob with a
keyed digest; this module turns those per-ball digests into *leaves* of a
Merkle tree whose root is committed into the :class:`ArtifactStore`
manifest and the :class:`~repro.framework.placement.PlacementManifest`.
With the root in hand, a user (or the gateway acting on the user's
behalf) can check two things about any shard's answer slice without
trusting the shard:

* **membership** -- a multiproof that every ball id the shard claims to
  have evaluated is a leaf of the owner's committed pack, and
* **absence** -- an adjacency proof that a given ball id has *no* leaf
  (the pack was built sorted by ball id, so two neighboring leaves
  bracketing the id prove it was never outsourced).

Key separation mirrors the rest of the storage layer: the verification
key is derived from the owner's ball key with its own domain prefix
(:func:`auth_key`), so holding pack bytes (the SP does) never yields the
digesting key, and holding the verification key never yields the
encryption key.  Leaves are *committed at build time*: encryption is
nonce-randomized, so a later re-encryption of the same plaintext would
hash differently -- the manifest's leaf table is the source of truth,
and the tamper sweep cross-checks the pack bytes against it.

Alongside the tree, :func:`build_catalog` commits the *candidate
catalog*: for every (radius, center label) pair, the sorted ball ids
whose center carries that label.  Candidate selection in the engine is
exactly "all balls of the query's diameter centered on a vertex with the
chosen label" (Sec. 4.1's label-based localization), so the catalog lets
a verifier recompute the complete candidate set a shard *should* have
evaluated -- the completeness half of the certificate story in
:mod:`repro.framework.verify` -- without ever seeing the graph.

The tree is binary with an odd-node promotion rule (a lone last node is
carried up unchanged); leaf and interior hashes use distinct domain
prefixes so neither can be confused for the other.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left

from repro.crypto.keys import DataOwnerKey

#: Versioned scheme tag stamped into manifests and certificates.
AUTH_SCHEME = "prilo-auth/1"

_KEY_PREFIX = b"prilo-auth-key:"
_LEAF_PREFIX = b"prilo-auth-leaf:"
_NODE_PREFIX = b"prilo-auth-node:"
_CATALOG_PREFIX = b"prilo-auth-catalog:"


class AuthError(RuntimeError):
    """A proof failed to verify or an auth block is malformed."""


def auth_key(key: DataOwnerKey) -> bytes:
    """The verification key: owner-derived, never shipped to the SP.

    Domain-separated from both the cipher keys and the store digest key,
    so a compromise of any one derivation leaks nothing about the
    others.
    """
    return hashlib.sha256(_KEY_PREFIX + key.ball_key).digest()


def leaf_digest(vkey: bytes, ball_id: int, blob: bytes) -> str:
    """The per-ball leaf: keyed over the *encrypted* blob.

    Binding the ball id into the preimage stops a leaf-swap (serving
    ball A's bytes under ball B's id) from re-validating.
    """
    ident = int(ball_id).to_bytes(8, "big")
    return hashlib.sha256(_LEAF_PREFIX + vkey + ident + blob).hexdigest()


def catalog_digest(vkey: bytes, catalog: dict) -> str:
    """Keyed digest of the candidate catalog (committed next to the
    root so a malicious coordinator cannot shrink a label's ball list)."""
    blob = json.dumps(catalog, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    return hashlib.sha256(_CATALOG_PREFIX + vkey + blob).hexdigest()


def _node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


class MerkleTree:
    """The accumulator: leaves sorted by ball id, odd nodes promoted.

    Built either from ``(ball_id, leaf_hex)`` pairs freshly digested at
    pack-build time, or re-hydrated from a manifest's committed leaf
    table (:meth:`from_leaf_hexes`) on the verifying side.
    """

    def __init__(self, leaves: dict[int, str]) -> None:
        if not leaves:
            raise AuthError("cannot build a Merkle tree over zero leaves")
        self._ids = sorted(int(b) for b in leaves)
        self._leaf_hex = {int(b): str(h) for b, h in leaves.items()}
        self._index = {b: i for i, b in enumerate(self._ids)}
        level = [bytes.fromhex(self._leaf_hex[b]) for b in self._ids]
        self._levels = [level]
        while len(level) > 1:
            nxt = [_node(level[i], level[i + 1])
                   for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                nxt.append(level[-1])
            self._levels.append(nxt)
            level = nxt

    @classmethod
    def from_leaf_hexes(cls, leaves: dict) -> "MerkleTree":
        return cls({int(b): str(h) for b, h in leaves.items()})

    @property
    def root_hex(self) -> str:
        return self._levels[-1][0].hex()

    @property
    def ball_ids(self) -> tuple[int, ...]:
        return tuple(self._ids)

    def __contains__(self, ball_id: int) -> bool:
        return int(ball_id) in self._index

    def prove(self, ball_ids) -> dict:
        """A multiproof for ``ball_ids``: their leaves + positions and
        the minimal sibling set needed to re-derive the root.

        Proofs are public data -- anyone holding the (public) manifest
        can build one; what they cannot do is mint a *leaf* without the
        verification key or find a second preimage for the root.
        """
        ids = sorted({int(b) for b in ball_ids})
        missing = [b for b in ids if b not in self._index]
        if missing:
            raise AuthError(f"no leaf for ball id(s) {missing}")
        known = {self._index[b] for b in ids}
        siblings: dict[str, str] = {}
        for lvl in range(len(self._levels) - 1):
            width = len(self._levels[lvl])
            nxt: set[int] = set()
            for idx in known:
                sib = idx ^ 1
                if sib < width and sib not in known:
                    siblings[f"{lvl}:{sib}"] = self._levels[lvl][sib].hex()
                nxt.add(idx // 2)
            known = nxt
        return {
            "scheme": AUTH_SCHEME,
            "width": len(self._ids),
            "leaves": {str(b): self._leaf_hex[b] for b in ids},
            "positions": {str(b): self._index[b] for b in ids},
            "siblings": siblings,
        }

    def prove_absent(self, ball_id: int) -> dict:
        """An absence proof: the (at most two) leaves bracketing
        ``ball_id`` in sorted order, with their positions.  Adjacent
        positions (or a boundary position) prove no leaf fits between."""
        ball_id = int(ball_id)
        if ball_id in self._index:
            raise AuthError(f"ball {ball_id} is present; no absence proof")
        i = bisect_left(self._ids, ball_id)
        witnesses = [self._ids[j] for j in (i - 1, i)
                     if 0 <= j < len(self._ids)]
        proof = self.prove(witnesses)
        proof["absent"] = ball_id
        return proof


def _level_widths(width: int) -> list[int]:
    widths = [width]
    while widths[-1] > 1:
        widths.append((widths[-1] + 1) // 2)
    return widths


def verify_multiproof(root_hex: str, proof: dict) -> dict[int, str]:
    """Re-derive the root from a multiproof; return the proven
    ``{ball_id: leaf_hex}`` map or raise :class:`AuthError`.

    The caller still owns the *semantic* checks (do the proven ids cover
    the claimed candidate set, are the leaf digests the committed ones)
    -- this function only establishes membership under ``root_hex``.
    """
    try:
        width = int(proof["width"])
        leaves = {int(b): str(h) for b, h in proof["leaves"].items()}
        positions = {int(b): int(i) for b, i in proof["positions"].items()}
        siblings = dict(proof["siblings"])
    except (KeyError, TypeError, ValueError) as exc:
        raise AuthError(f"malformed multiproof: {exc}") from exc
    if width <= 0 or set(leaves) != set(positions):
        raise AuthError("multiproof leaves/positions disagree")
    if not leaves:
        raise AuthError("empty multiproof")
    widths = _level_widths(width)
    nodes: dict[int, bytes] = {}
    for ball_id, idx in positions.items():
        if not 0 <= idx < width:
            raise AuthError(f"leaf position {idx} outside width {width}")
        try:
            nodes[idx] = bytes.fromhex(leaves[ball_id])
        except ValueError as exc:
            raise AuthError(f"bad leaf hex for ball {ball_id}") from exc
    used = 0
    for lvl, lvl_width in enumerate(widths[:-1]):
        nxt: dict[int, bytes] = {}
        for idx in sorted(nodes):
            if idx // 2 in nxt:
                continue
            sib = idx ^ 1
            if sib >= lvl_width:
                # Odd promotion: lone last node carries up unchanged.
                nxt[idx // 2] = nodes[idx]
                continue
            if sib in nodes:
                other = nodes[sib]
            else:
                key = f"{lvl}:{sib}"
                if key not in siblings:
                    raise AuthError(f"multiproof missing sibling {key}")
                try:
                    other = bytes.fromhex(siblings[key])
                except ValueError as exc:
                    raise AuthError(f"bad sibling hex at {key}") from exc
                used += 1
            left, right = (nodes[idx], other) if idx % 2 == 0 \
                else (other, nodes[idx])
            nxt[idx // 2] = _node(left, right)
        nodes = nxt
    if used != len(siblings):
        raise AuthError("multiproof carries unused sibling nodes")
    derived = nodes.get(0)
    if derived is None or derived.hex() != str(root_hex):
        raise AuthError("multiproof does not derive the committed root")
    return leaves


def verify_absent(root_hex: str, proof: dict) -> int:
    """Check an absence proof; return the proven-absent ball id."""
    try:
        absent = int(proof["absent"])
        width = int(proof["width"])
        positions = {int(b): int(i) for b, i in proof["positions"].items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise AuthError(f"malformed absence proof: {exc}") from exc
    verify_multiproof(root_hex, proof)
    below = {b: i for b, i in positions.items() if b < absent}
    above = {b: i for b, i in positions.items() if b > absent}
    if set(positions) - set(below) - set(above):
        raise AuthError(f"ball {absent} appears among the witnesses")
    if not below and not above:
        raise AuthError("absence proof carries no bracketing witnesses")
    lo = max(below.values()) if below else -1
    hi = min(above.values()) if above else width
    if below and lo != (hi - 1 if above else width - 1):
        raise AuthError("left witness is not adjacent to the gap")
    if above and not below and hi != 0:
        raise AuthError("right witness is not the first leaf")
    return absent


def build_catalog(entries) -> dict:
    """The candidate catalog from ``(ball_id, radius, label)`` triples:
    ``{str(radius): {repr(label): [sorted ball ids]}}``.

    Labels are keyed by ``repr`` -- the same encoding the manifest uses
    for ball centers -- so the catalog round-trips through JSON for any
    hashable label type.
    """
    catalog: dict[str, dict[str, list[int]]] = {}
    for ball_id, radius, label in entries:
        per_radius = catalog.setdefault(str(int(radius)), {})
        per_radius.setdefault(repr(label), []).append(int(ball_id))
    for per_radius in catalog.values():
        for ids in per_radius.values():
            ids.sort()
    return catalog


def build_auth_block(key: DataOwnerKey, leaves: dict[int, str],
                     catalog: dict) -> dict:
    """The manifest's ``auth`` block: scheme, root, committed leaf
    table, and the keyed candidate catalog."""
    tree = MerkleTree(leaves)
    vkey = auth_key(key)
    return {
        "scheme": AUTH_SCHEME,
        "root": tree.root_hex,
        "leaves": {str(b): h for b, h in sorted(leaves.items())},
        "catalog": catalog,
        "catalog_digest": catalog_digest(vkey, catalog),
    }


def updated_auth_block(key: DataOwnerKey, auth: dict, *,
                       replaced: dict[int, str] | None = None,
                       removed=(), catalog: dict | None = None) -> dict:
    """Incrementally update a committed auth block after a delta.

    ``replaced`` maps ball ids to their fresh leaf digests (dirty balls
    re-encrypted, plus newly added balls); ``removed`` lists ball ids
    whose leaves drop.  Clean balls keep their committed leaves verbatim
    -- their pack bytes were copied, so the build-time digests still
    match -- which is what makes the accumulator update proportional to
    the delta: only the leaf *table* mutation and the O(n) tree re-fold
    happen here, never a re-digest of clean ciphertext.

    ``catalog`` replaces the candidate catalog (label churn cannot be
    patched locally: a relabeled or removed center moves ids between
    per-(radius, label) lists), and its keyed digest is recomputed.
    """
    if auth is None:
        raise AuthError("no auth block to update; rebuild the store")
    leaves = {int(b): str(h) for b, h in auth.get("leaves", {}).items()}
    for ball_id in removed:
        leaves.pop(int(ball_id), None)
    for ball_id, leaf_hex in (replaced or {}).items():
        leaves[int(ball_id)] = str(leaf_hex)
    if catalog is None:
        catalog = auth.get("catalog", {})
    return build_auth_block(key, leaves, catalog)


__all__ = [
    "AUTH_SCHEME",
    "AuthError",
    "MerkleTree",
    "auth_key",
    "build_auth_block",
    "build_catalog",
    "catalog_digest",
    "leaf_digest",
    "updated_auth_block",
    "verify_absent",
    "verify_multiproof",
]
