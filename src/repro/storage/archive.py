"""Directory-based encrypted ball archive.

Layout::

    <root>/
      manifest.json        # public metadata: version, ball entries
      balls/<ball_id>.bin  # StreamCipher blob of the serialized ball

The manifest contains only Dealer-visible information (identifiers,
centers by repr, radii, blob sizes); ball contents are authenticated
ciphertext under the data owner's ``sk``.  Reads are lazy and memoized.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.crypto.keys import DataOwnerKey
from repro.crypto.stream_cipher import AuthenticationError
from repro.framework.messages import EncryptedBallBlob
from repro.graph.ball import BallIndex
from repro.graph.io import ball_to_bytes

_MANIFEST = "manifest.json"
_BALL_DIR = "balls"
_VERSION = 1


class ArchiveError(RuntimeError):
    """Archive is missing, malformed, or inconsistent."""


class EncryptedBallArchive:
    """An on-disk encrypted ball store with the Dealer's ``get`` protocol."""

    def __init__(self, root: Path, manifest: dict) -> None:
        self._root = root
        self._manifest = manifest
        self._cache: dict[int, EncryptedBallBlob] = {}

    # ------------------------------------------------------------------
    # creation (data owner side)
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str | Path, index: BallIndex, key: DataOwnerKey,
               radii: tuple[int, ...] | None = None,
               ) -> "EncryptedBallArchive":
        """Materialize and encrypt every indexed ball into ``root``.

        ``radii`` restricts the export to a subset of the index's radii
        (a data owner may stage per-diameter archives).
        """
        root = Path(root)
        if root.exists() and any(root.iterdir()):
            raise ArchiveError(f"refusing to overwrite non-empty {root}")
        (root / _BALL_DIR).mkdir(parents=True, exist_ok=True)
        cipher = key.cipher()
        wanted = set(radii if radii is not None else index.radii)
        unknown = wanted - set(index.radii)
        if unknown:
            raise ArchiveError(f"radii {sorted(unknown)} not in the index")
        entries = []
        for center in index.graph.vertices():
            for radius in sorted(wanted):
                ball = index.ball(center, radius)
                blob = cipher.encrypt(ball_to_bytes(ball))
                path = root / _BALL_DIR / f"{ball.ball_id}.bin"
                path.write_bytes(blob)
                entries.append({
                    "ball_id": ball.ball_id,
                    "center": repr(center),
                    "radius": radius,
                    "vertices": ball.size,
                    "bytes": len(blob),
                })
        manifest = {"version": _VERSION, "balls": entries}
        (root / _MANIFEST).write_text(
            json.dumps(manifest, indent=1, sort_keys=True),
            encoding="utf-8")
        return cls(root, manifest)

    # ------------------------------------------------------------------
    # opening (dealer side)
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str | Path) -> "EncryptedBallArchive":
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.is_file():
            raise ArchiveError(f"no manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"malformed manifest: {exc}") from exc
        if manifest.get("version") != _VERSION:
            raise ArchiveError(
                f"unsupported archive version {manifest.get('version')!r}")
        return cls(root, manifest)

    # ------------------------------------------------------------------
    @property
    def ball_ids(self) -> list[int]:
        return [entry["ball_id"] for entry in self._manifest["balls"]]

    def __len__(self) -> int:
        return len(self._manifest["balls"])

    def entries(self) -> Iterator[dict]:
        """Public per-ball metadata (what the Dealer legitimately sees)."""
        return iter(self._manifest["balls"])

    def get(self, ball_id: int) -> EncryptedBallBlob:
        """The Dealer protocol: fetch one encrypted ball."""
        cached = self._cache.get(ball_id)
        if cached is not None:
            return cached
        path = self._root / _BALL_DIR / f"{ball_id}.bin"
        if not path.is_file():
            raise ArchiveError(f"ball {ball_id} not in archive")
        blob = EncryptedBallBlob(ball_id=ball_id, blob=path.read_bytes())
        self._cache[ball_id] = blob
        return blob

    def verify(self, key: DataOwnerKey) -> int:
        """Data-owner integrity sweep: decrypt-authenticate every blob.

        Returns the number of verified balls; raises
        :class:`ArchiveError` on the first tampered/corrupt one.
        """
        cipher = key.cipher()
        checked = 0
        for entry in self._manifest["balls"]:
            blob = self.get(entry["ball_id"])
            try:
                cipher.decrypt(blob.blob)
            except AuthenticationError as exc:
                # decrypt's one failure mode (truncation/MAC); genuine
                # code errors propagate instead of reading as tamper.
                raise ArchiveError(
                    f"ball {entry['ball_id']} failed verification: "
                    f"{exc}") from exc
            checked += 1
        return checked
