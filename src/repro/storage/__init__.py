"""Persistent storage for the data owner's offline artifacts.

Sec. 2.3: the data owner "generates ... all balls of graph G with various
diameters offline" and ships the encrypted copies to the Dealer.  This
subpackage provides the durable form of that hand-off: a directory-based
:class:`~repro.storage.archive.EncryptedBallArchive` holding one
authenticated ciphertext per ball plus a plaintext manifest of public
metadata (ball ids, centers, radii, sizes) -- exactly what the Dealer may
know.  The archive satisfies the same ``get(ball_id)`` protocol as the
in-memory store, so a :class:`repro.framework.roles.Dealer` can be backed
by either.

:class:`~repro.storage.store.ArtifactStore` generalizes the archive into
the *full* offline outsourcing output: plaintext + encrypted ball packs
(mmap cold start for Players and Dealer alike), per-ball twiglet feature
sets, tree/BF artifacts, all under a versioned manifest with staleness
and tamper detection.

:class:`~repro.storage.journal.RunJournal` is the *online* durability
counterpart: a write-ahead, CRC-framed, keyed-digest journal of batch
admissions and executor-share results, so a killed serving process
resumes from its last durable checkpoint re-evaluating only unjournaled
shares.
"""

from repro.storage.archive import ArchiveError, EncryptedBallArchive
from repro.storage.authenticate import (
    AUTH_SCHEME,
    AuthError,
    MerkleTree,
    auth_key,
    build_auth_block,
    build_catalog,
    catalog_digest,
    leaf_digest,
    updated_auth_block,
    verify_absent,
    verify_multiproof,
)
from repro.storage.delta import (
    DeltaError,
    DeltaLog,
    DeltaLogState,
    DeltaRecord,
    StaleDeltaError,
    TamperedDeltaError,
    apply_delta_log,
    delta_key,
)
from repro.storage.journal import (
    JournalError,
    JournalState,
    RecordType,
    RunJournal,
    config_fingerprint,
    journal_key,
    query_idempotency_key,
)
from repro.storage.store import (
    ArtifactStore,
    DeltaApplyReport,
    PackReport,
    StoreBallIndex,
    StoreEncryptedBalls,
    StoreError,
    StoreMiss,
    VerifyReport,
    graph_digest,
    key_digest,
    shard_split,
)

__all__ = [
    "ArchiveError",
    "ArtifactStore",
    "AUTH_SCHEME",
    "AuthError",
    "MerkleTree",
    "auth_key",
    "build_auth_block",
    "build_catalog",
    "catalog_digest",
    "leaf_digest",
    "updated_auth_block",
    "verify_absent",
    "verify_multiproof",
    "DeltaApplyReport",
    "DeltaError",
    "DeltaLog",
    "DeltaLogState",
    "DeltaRecord",
    "StaleDeltaError",
    "TamperedDeltaError",
    "apply_delta_log",
    "delta_key",
    "EncryptedBallArchive",
    "JournalError",
    "JournalState",
    "PackReport",
    "RecordType",
    "RunJournal",
    "config_fingerprint",
    "journal_key",
    "query_idempotency_key",
    "StoreBallIndex",
    "StoreEncryptedBalls",
    "StoreError",
    "StoreMiss",
    "VerifyReport",
    "graph_digest",
    "key_digest",
    "shard_split",
]
