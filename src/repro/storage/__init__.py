"""Persistent storage for the data owner's offline artifacts.

Sec. 2.3: the data owner "generates ... all balls of graph G with various
diameters offline" and ships the encrypted copies to the Dealer.  This
subpackage provides the durable form of that hand-off: a directory-based
:class:`~repro.storage.archive.EncryptedBallArchive` holding one
authenticated ciphertext per ball plus a plaintext manifest of public
metadata (ball ids, centers, radii, sizes) -- exactly what the Dealer may
know.  The archive satisfies the same ``get(ball_id)`` protocol as the
in-memory store, so a :class:`repro.framework.roles.Dealer` can be backed
by either.

:class:`~repro.storage.store.ArtifactStore` generalizes the archive into
the *full* offline outsourcing output: plaintext + encrypted ball packs
(mmap cold start for Players and Dealer alike), per-ball twiglet feature
sets, tree/BF artifacts, all under a versioned manifest with staleness
and tamper detection.
"""

from repro.storage.archive import ArchiveError, EncryptedBallArchive
from repro.storage.store import (
    ArtifactStore,
    PackReport,
    StoreBallIndex,
    StoreEncryptedBalls,
    StoreError,
    VerifyReport,
    graph_digest,
    key_digest,
)

__all__ = [
    "ArchiveError",
    "ArtifactStore",
    "EncryptedBallArchive",
    "PackReport",
    "StoreBallIndex",
    "StoreEncryptedBalls",
    "StoreError",
    "VerifyReport",
    "graph_digest",
    "key_digest",
]
