"""The durable delta log -- dynamic updates as an authenticated journal.

A dynamic graph's update stream gets the same durability discipline the
run journal (PR 4) gives queries: every :class:`~repro.graph.delta.GraphDelta`
is appended as one CRC-framed, fsync'd record riding the journal's frame
layout, and every record carries a **keyed** sha256 digest binding the
delta bytes to the graph digests it chains between::

    +----+------+---------+----------------------+-----------+
    | A5 | 0x07 | len:u32 | payload              | crc32:u32 |
    +----+------+---------+----------------------+-----------+

    payload = meta_len:u32 | meta (canonical JSON) | blob (delta JSON)
    meta    = {v, seq, parent, result, digest}

``parent``/``result`` are the whole-graph digests before/after the delta
(the same :func:`~repro.storage.store.graph_digest` the artifact-store
manifest pins), so the log is a hash chain over graph states.  The keyed
digest covers ``seq | parent | result | blob``: flipping any of them
without the owner key is detected and the record is **tampered** (exit 3
at the CLI), while a structurally intact record whose parent digest does
not match the graph at hand is merely **stale**/out-of-order (exit 2) --
the same severity split the store's ``verify`` applies, where tampered
wins over stale.

The log leaks exactly what an SP applying updates must observe anyway:
update cardinalities and which graph states chain to which.  Vertex and
label payloads inside the blob are the *plaintext owner-side* delta --
the log lives with the data owner next to the edge lists, not on the SP;
what the SP sees is the re-encrypted dirty packs.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.graph.delta import GraphDelta
from repro.storage.journal import (
    MAX_PAYLOAD_BYTES,
    _CRC,
    _HEADER,
    _META_LEN,
    _REC_MAGIC,
)

#: Versioned scheme tag every record's meta carries.
DELTA_SCHEME = "prilo-delta/1"

#: Frame record type -- outside the run journal's vocabulary, so neither
#: log can replay the other's frames.
DELTA_RECORD = 0x07


class DeltaError(RuntimeError):
    """The delta log cannot be used (bad key, malformed frame stream)."""


class StaleDeltaError(DeltaError):
    """A structurally intact record does not chain onto the graph at hand
    (its parent digest mismatches).  The log and the graph have diverged:
    re-sync or rebuild.  CLI exit 2."""


class TamperedDeltaError(DeltaError):
    """A record's keyed digest fails, or an applied delta does not
    reproduce its recorded result digest.  Hostile or corrupt -- never
    apply.  CLI exit 3."""


def delta_key(seed: int) -> bytes:
    """Keyed-digest key for a delta log, derived from the owner seed like
    :func:`~repro.storage.journal.journal_key` (no key material on disk)."""
    return hashlib.sha256(f"prilo-delta-key:{seed}"
                          .encode("utf-8")).digest()


def delta_digest(key: bytes, seq: int, parent: str, result: str,
                 blob: bytes) -> str:
    """Keyed digest over everything a record asserts: its chain position
    (``seq``), both graph digests, and the delta bytes."""
    h = hashlib.sha256()
    h.update(b"prilo-delta-rec:")
    h.update(key)
    h.update(seq.to_bytes(8, "big"))
    h.update(parent.encode("utf-8"))
    h.update(result.encode("utf-8"))
    h.update(blob)
    return h.hexdigest()


@dataclass(frozen=True)
class DeltaRecord:
    """One replayed, digest-verified record."""

    seq: int
    parent: str
    result: str
    delta: GraphDelta


@dataclass
class DeltaLogState:
    """The replayed picture of one delta log file."""

    records: list[DeltaRecord] = field(default_factory=list)
    #: Records whose keyed digest failed or whose blob is undecodable.
    tampered_records: int = 0
    #: Bytes discarded from the tail (torn final write), 0 when clean.
    truncated_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "scheme": DELTA_SCHEME,
            "records": len(self.records),
            "mutations": sum(rec.delta.size for rec in self.records),
            "tampered_records": self.tampered_records,
            "truncated_bytes": self.truncated_bytes,
            "head": self.records[0].parent if self.records else "",
            "tip": self.records[-1].result if self.records else "",
        }


class DeltaLog:
    """Append-only, fsync'd, CRC-framed, keyed-digest delta log."""

    def __init__(self, path: str | Path, key: bytes, *,
                 fsync: bool = True) -> None:
        if not isinstance(key, bytes) or not key:
            raise DeltaError("delta log key must be non-empty bytes")
        self.path = Path(path)
        self.key = key
        self.fsync = fsync
        self._fh: io.BufferedWriter | None = None
        self._next_seq: int | None = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _handle(self) -> io.BufferedWriter:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("ab")
        return self._fh

    def append(self, delta: GraphDelta, *, parent: str,
               result: str) -> DeltaRecord:
        """Durably append one delta chaining ``parent -> result``."""
        if self._next_seq is None:
            state = self.replay(truncate=False)
            self._next_seq = (state.records[-1].seq + 1
                              if state.records else 0)
        seq = self._next_seq
        blob = delta.to_bytes()
        meta = {
            "v": DELTA_SCHEME,
            "seq": seq,
            "parent": parent,
            "result": result,
            "digest": delta_digest(self.key, seq, parent, result, blob),
        }
        meta_bytes = json.dumps(meta, sort_keys=True,
                                separators=(",", ":")).encode("utf-8")
        payload = _META_LEN.pack(len(meta_bytes)) + meta_bytes + blob
        header = _HEADER.pack(_REC_MAGIC, DELTA_RECORD, len(payload))
        crc = zlib.crc32(header + payload) & 0xFFFFFFFF
        fh = self._handle()
        fh.write(header + payload + _CRC.pack(crc))
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self._next_seq = seq + 1
        return DeltaRecord(seq=seq, parent=parent, result=result,
                           delta=delta)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, *, truncate: bool = True) -> DeltaLogState:
        """Rebuild the record list from disk.

        Framing mirrors the run journal: replay stops at the first torn
        frame and (with ``truncate``) cuts the file back to the last
        intact record.  Records that frame correctly but fail the keyed
        digest -- or whose blob does not decode as a delta -- are hostile,
        not torn: dropped and counted in ``tampered_records``.
        """
        state = DeltaLogState()
        if not self.path.is_file():
            return state
        data = self.path.read_bytes()
        offset = 0
        good_end = 0
        while offset < len(data):
            frame = self._read_frame(data, offset)
            if frame is None:
                break
            payload, next_offset = frame
            record = self._decode(payload, state)
            if record is not None:
                state.records.append(record)
            offset = good_end = next_offset
        state.truncated_bytes = len(data) - good_end
        if truncate and state.truncated_bytes:
            self.close()
            with self.path.open("r+b") as fh:
                fh.truncate(good_end)
        return state

    @staticmethod
    def _read_frame(data: bytes, offset: int):
        end = offset + _HEADER.size
        if end > len(data):
            return None
        magic, rtype, length = _HEADER.unpack_from(data, offset)
        if magic != _REC_MAGIC or rtype != DELTA_RECORD:
            return None
        if length > MAX_PAYLOAD_BYTES:
            return None
        payload_end = end + length
        crc_end = payload_end + _CRC.size
        if crc_end > len(data):
            return None
        expected = _CRC.unpack_from(data, payload_end)[0]
        if zlib.crc32(data[offset:payload_end]) & 0xFFFFFFFF != expected:
            return None
        return data[end:payload_end], crc_end

    def _decode(self, payload: bytes,
                state: DeltaLogState) -> DeltaRecord | None:
        try:
            meta_len = _META_LEN.unpack_from(payload, 0)[0]
            meta_end = _META_LEN.size + meta_len
            meta = json.loads(payload[_META_LEN.size:meta_end]
                              .decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError,
                IndexError):
            state.tampered_records += 1
            return None
        blob = payload[meta_end:]
        seq = meta.get("seq", -1)
        parent = meta.get("parent", "")
        result = meta.get("result", "")
        if (meta.get("v") != DELTA_SCHEME or not isinstance(seq, int)
                or meta.get("digest") != delta_digest(
                    self.key, seq, parent, result, blob)):
            state.tampered_records += 1
            return None
        try:
            delta = GraphDelta.from_bytes(blob)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError,
                SyntaxError):
            # An authenticated-yet-undecodable blob cannot happen under
            # an honest key; treat it as tamper, never as torn tail.
            state.tampered_records += 1
            return None
        return DeltaRecord(seq=seq, parent=parent, result=result,
                           delta=delta)

    # ------------------------------------------------------------------
    # inspection (``repro store apply-delta --inspect`` style summaries)
    # ------------------------------------------------------------------
    def inspect(self) -> dict:
        """Non-destructive summary (torn bytes left in place)."""
        summary = self.replay(truncate=False).as_dict()
        summary["path"] = str(self.path)
        summary["file_bytes"] = (self.path.stat().st_size
                                 if self.path.is_file() else 0)
        return summary


def apply_delta_log(store, state: DeltaLogState, graph, key) -> list:
    """Chain every applicable record of ``state`` into ``store``/``graph``.

    Records whose ``result`` already equals the current graph digest are
    skipped as applied (idempotent re-runs); a record whose ``parent``
    matches is applied via :meth:`ArtifactStore.apply_delta`; anything
    else means the log and the graph diverged -> :class:`StaleDeltaError`.
    Any tampered record in the replayed state -- and any applied delta
    that fails to reproduce its recorded result digest -- raises
    :class:`TamperedDeltaError`; tampered wins over stale.

    Returns the list of per-record
    :class:`~repro.storage.store.DeltaApplyReport` objects.
    """
    from repro.storage.store import graph_digest

    if state.tampered_records:
        raise TamperedDeltaError(
            f"delta log carries {state.tampered_records} tampered "
            f"record(s); refusing to apply any of it")
    reports = []
    current = graph_digest(graph)
    for record in state.records:
        if record.result == current:
            continue
        if record.parent != current:
            raise StaleDeltaError(
                f"delta record seq={record.seq} chains from "
                f"{record.parent[:12]} but the graph is at "
                f"{current[:12]}; log and graph diverged")
        reports.append(store.apply_delta(record.delta, graph, key))
        current = graph_digest(graph)
        if current != record.result:
            raise TamperedDeltaError(
                f"delta record seq={record.seq} promised result "
                f"{record.result[:12]} but applying it produced "
                f"{current[:12]}")
    return reports


__all__ = [
    "DELTA_RECORD",
    "DELTA_SCHEME",
    "DeltaError",
    "DeltaLog",
    "DeltaLogState",
    "DeltaRecord",
    "StaleDeltaError",
    "TamperedDeltaError",
    "apply_delta_log",
    "delta_digest",
    "delta_key",
]
