"""The write-ahead run journal -- crash-safe durable serving.

PR 3 made a single run survive *transient* faults; a ``kill -9``, an OOM
kill or a host restart still lost every in-flight query.  The
:class:`RunJournal` closes that gap: the serving layer appends one
durable record per protocol milestone (batch admission, query begin,
executor-share completion, query commit, drain), each record fsync'd
before the milestone is considered to have happened.  A restarted
``serve-batch``/``run`` replays the journal and re-evaluates only the
shares that never reached the journal -- per-ball evaluation is a pure
function of ``(message, ball)`` and the CGBE randomness stream is a pure
function of ``(seed, query order)``, so a resumed run reproduces the
uninterrupted run's messages bit-for-bit and its answers exactly.

Record format (little-endian)::

    +----+------+---------+----------------+-----------+
    | A5 | type | len:u32 | payload        | crc32:u32 |
    +----+------+---------+----------------+-----------+

    payload = meta_len:u32 | meta (canonical JSON) | blob (pickle)

The CRC frames every record against *torn writes*: replay stops at the
first record whose frame is incomplete or whose CRC mismatches and
truncates the tail (a crash mid-``write`` must lose at most the record
being written, never a prefix).  Independently of the CRC, every record
that carries protocol state (share outcomes, commits) embeds a **keyed**
sha256 digest over its blob -- the same keyed-hash discipline
:mod:`repro.storage.store` applies to ball packs -- so a *tampered*
record is distinguishable from a torn one: tampering is detected,
reported, and the share is re-evaluated from the live pipeline rather
than trusted.

What is deliberately **not** persisted (leakage argument, DESIGN.md
section 9): decrypted pruning bits, plaintext matches, and any user-side
secret.  The journal holds only what the SP already observes during an
uninterrupted run -- ball/share identifiers, ciphertext verdicts and
public scheduling metadata -- so crash recovery never widens the leakage
surface beyond what the access-pattern analysis already admits.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

_REC_MAGIC = 0xA5
_HEADER = struct.Struct("<BBI")   # magic, type, payload length
_CRC = struct.Struct("<I")
_META_LEN = struct.Struct("<I")

#: Hard per-record payload bound: a length field corrupted into the
#: gigabytes must read as a torn tail, not an allocation attempt.
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024

#: Everything ``pickle.loads`` raises on a malformed-but-authenticated
#: share payload (garbage stream, truncated stream, references to names
#: this build does not define).  Deliberately *not* a bare ``Exception``:
#: a KeyboardInterrupt, a tracer bug or an injected fault inside
#: unpickling must propagate, never be silently counted as tamper.
_UNPICKLE_ERRORS = (pickle.UnpicklingError, AttributeError, EOFError,
                    ImportError, IndexError, TypeError, ValueError)


class RecordType:
    """The journal's record vocabulary."""

    #: A ``serve`` call was admitted: config fingerprint + query keys.
    BATCH_ADMIT = 1
    #: One query started executing.
    QUERY_BEGIN = 2
    #: One executor share finished: ciphertext verdicts + fault events.
    SHARE_RESULT = 3
    #: One query finished: keyed answer digest + metrics snapshot.
    QUERY_COMMIT = 4
    #: Graceful drain: the process checkpointed and stopped admitting.
    DRAIN = 5


_TYPE_NAMES = {
    RecordType.BATCH_ADMIT: "batch_admit",
    RecordType.QUERY_BEGIN: "query_begin",
    RecordType.SHARE_RESULT: "share_result",
    RecordType.QUERY_COMMIT: "query_commit",
    RecordType.DRAIN: "drain",
}


class JournalError(RuntimeError):
    """The journal cannot be used (fingerprint mismatch, bad path,
    integrity violation on a committed answer)."""


def journal_key(seed: int) -> bytes:
    """The keyed-digest key for a journal, derived from the owner seed
    exactly like the store's key fingerprint discipline: the digest keys
    durable state without ever writing key material to disk."""
    return hashlib.sha256(f"prilo-journal-key:{seed}"
                          .encode("utf-8")).digest()


def keyed_digest(key: bytes, blob: bytes) -> str:
    """Tamper-evidence digest over one record blob (hex)."""
    return hashlib.sha256(b"prilo-journal-rec:" + key + blob).hexdigest()


def config_fingerprint(config, graph_digest: str = "") -> str:
    """A stable digest of every config field that shapes answers or the
    share partition.  A journal written under one fingerprint must never
    be replayed into an engine with another: ball ids, share keys and the
    randomness stream would all silently diverge.

    Scheduling-only knobs (executor backend, parallelism, chaos,
    recovery, deadlines) are deliberately excluded -- resuming on a
    different backend, or with the kill schedule disabled, is exactly the
    recovery scenario the journal exists for.
    """
    fields = {
        "k_players": config.k_players,
        "modulus_bits": config.modulus_bits,
        "q_bits": config.q_bits,
        "r_bits": config.r_bits,
        "radii": list(config.radii),
        "use_bf": config.use_bf,
        "use_twiglet": config.use_twiglet,
        "use_path": config.use_path,
        "use_neighbor": config.use_neighbor,
        "use_ssg": config.use_ssg,
        "twiglet_h": config.twiglet_h,
        "enumeration_limit": config.enumeration_limit,
        "cmm_bound_bypass": config.cmm_bound_bypass,
        "label_strategy": config.label_strategy,
        "seed": config.seed,
        "graph": graph_digest,
    }
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def query_idempotency_key(key: bytes, query, index: int) -> str:
    """The per-submission idempotency key: a keyed digest of the query's
    canonical form plus its submission index.

    Replaying the same batch after a crash reproduces the same keys, so
    journaled work dedupes; two *identical* queries at different batch
    positions stay distinct (each consumes its own randomness slice).
    """
    row = {v: i for i, v in enumerate(query.vertex_order)}
    canonical = {
        "semantics": query.semantics.value,
        "diameter": query.diameter,
        "labels": [repr(query.label(u)) for u in query.vertex_order],
        "edges": sorted(sorted((row[u], row[v]))
                        for u, v in query.pattern.edges()),
        "index": index,
    }
    blob = json.dumps(canonical, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(b"prilo-journal-query:" + key + blob).hexdigest()


@dataclass
class JournaledShare:
    """One replayed share: the pickled outcome plus the fault events that
    were recorded (and journaled) while it was first computed."""

    outcome: object
    events: list[dict] = field(default_factory=list)


@dataclass
class QueryJournalState:
    """Everything the journal knows about one query."""

    key: str
    index: int = -1
    shares: dict[str, JournaledShare] = field(default_factory=dict)
    committed: bool = False
    answer_digest: str = ""
    fault_counts: dict = field(default_factory=dict)


@dataclass
class JournalState:
    """The replayed picture of one journal file."""

    fingerprint: str = ""
    batches: int = 0
    queries: dict[str, QueryJournalState] = field(default_factory=dict)
    record_counts: dict[str, int] = field(default_factory=dict)
    records: int = 0
    #: Bytes discarded from the tail (torn final write), 0 when clean.
    truncated_bytes: int = 0
    #: Records whose keyed digest failed -- dropped, counted, re-evaluated.
    tampered_records: int = 0
    drained: bool = False

    def query(self, key: str) -> QueryJournalState:
        state = self.queries.get(key)
        if state is None:
            state = QueryJournalState(key=key)
            self.queries[key] = state
        return state

    @property
    def journaled_shares(self) -> int:
        return sum(len(q.shares) for q in self.queries.values())

    @property
    def committed_queries(self) -> int:
        return sum(1 for q in self.queries.values() if q.committed)

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "records": self.records,
            "record_counts": dict(self.record_counts),
            "batches": self.batches,
            "queries": len(self.queries),
            "committed_queries": self.committed_queries,
            "journaled_shares": self.journaled_shares,
            "truncated_bytes": self.truncated_bytes,
            "tampered_records": self.tampered_records,
            "drained": self.drained,
        }


class RunJournal:
    """An append-only, fsync'd, CRC-framed write-ahead journal.

    ``append`` is the durability point: when it returns, the record
    survives ``kill -9`` (the file is opened with explicit ``fsync`` per
    record; ``fsync=False`` trades durability for speed in benchmarks
    that only measure steady-state overhead).
    """

    def __init__(self, path: str | Path, key: bytes, *,
                 fsync: bool = True) -> None:
        if not isinstance(key, bytes) or not key:
            raise JournalError("journal key must be non-empty bytes")
        self.path = Path(path)
        self.key = key
        self.fsync = fsync
        self.records_written = 0
        self._fh: io.BufferedWriter | None = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _handle(self) -> io.BufferedWriter:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("ab")
        return self._fh

    def append(self, rtype: int, meta: dict, blob: bytes = b"") -> None:
        """Durably append one record (framed, CRC'd, fsync'd)."""
        if rtype not in _TYPE_NAMES:
            raise JournalError(f"unknown record type {rtype!r}")
        if blob:
            meta = dict(meta)
            meta["digest"] = keyed_digest(self.key, blob)
        meta_bytes = json.dumps(meta, sort_keys=True,
                                separators=(",", ":")).encode("utf-8")
        payload = _META_LEN.pack(len(meta_bytes)) + meta_bytes + blob
        header = _HEADER.pack(_REC_MAGIC, rtype, len(payload))
        crc = zlib.crc32(header + payload) & 0xFFFFFFFF
        fh = self._handle()
        fh.write(header + payload + _CRC.pack(crc))
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self.records_written += 1

    def append_share(self, query_key: str, share_key: str, outcome: object,
                     events: list[dict] | None = None) -> None:
        """Checkpoint one completed executor share."""
        self.append(RecordType.SHARE_RESULT,
                    {"query": query_key, "share": share_key,
                     "events": events or []},
                    pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL))

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, *, truncate: bool = True) -> JournalState:
        """Rebuild the durable state from disk.

        Stops at the first torn record (incomplete frame or CRC mismatch)
        and -- with ``truncate`` -- cuts the file back to the last intact
        record, so a crash mid-write self-heals on restart.  Records with
        a failing *keyed* digest are not torn but hostile: they are
        dropped, counted in ``tampered_records``, and their shares are
        re-evaluated instead of trusted.
        """
        state = JournalState()
        if not self.path.is_file():
            return state
        data = self.path.read_bytes()
        offset = 0
        good_end = 0
        while offset < len(data):
            frame = self._read_frame(data, offset)
            if frame is None:
                break
            rtype, payload, next_offset = frame
            self._apply(state, rtype, payload)
            state.records += 1
            name = _TYPE_NAMES[rtype]
            state.record_counts[name] = state.record_counts.get(name, 0) + 1
            offset = good_end = next_offset
        state.truncated_bytes = len(data) - good_end
        if truncate and state.truncated_bytes:
            self.close()
            with self.path.open("r+b") as fh:
                fh.truncate(good_end)
        return state

    @staticmethod
    def _read_frame(data: bytes, offset: int):
        """One framed record at ``offset``; None on any torn/corrupt
        frame (replay treats everything from there on as lost tail)."""
        end = offset + _HEADER.size
        if end > len(data):
            return None
        magic, rtype, length = _HEADER.unpack_from(data, offset)
        if magic != _REC_MAGIC or rtype not in _TYPE_NAMES:
            return None
        if length > MAX_PAYLOAD_BYTES:
            return None
        payload_end = end + length
        crc_end = payload_end + _CRC.size
        if crc_end > len(data):
            return None
        expected = _CRC.unpack_from(data, payload_end)[0]
        if zlib.crc32(data[offset:payload_end]) & 0xFFFFFFFF != expected:
            return None
        return rtype, data[end:payload_end], crc_end

    def _apply(self, state: JournalState, rtype: int,
               payload: bytes) -> None:
        meta_len = _META_LEN.unpack_from(payload, 0)[0]
        meta_end = _META_LEN.size + meta_len
        meta = json.loads(payload[_META_LEN.size:meta_end].decode("utf-8"))
        blob = payload[meta_end:]
        if rtype == RecordType.BATCH_ADMIT:
            fingerprint = meta.get("fingerprint", "")
            if state.fingerprint and fingerprint != state.fingerprint:
                raise JournalError(
                    f"journal {self.path} mixes config fingerprints "
                    f"({state.fingerprint[:12]} vs {fingerprint[:12]}); "
                    f"one journal serves one engine configuration")
            state.fingerprint = fingerprint
            state.batches += 1
        elif rtype == RecordType.QUERY_BEGIN:
            query = state.query(meta["query"])
            query.index = meta.get("index", -1)
        elif rtype == RecordType.SHARE_RESULT:
            if meta.get("digest") != keyed_digest(self.key, blob):
                state.tampered_records += 1
                return
            try:
                outcome = pickle.loads(blob)
            except _UNPICKLE_ERRORS:
                # A digest collision cannot happen under an honest key;
                # treat an unpicklable-yet-authenticated blob as tamper.
                state.tampered_records += 1
                return
            state.query(meta["query"]).shares[meta["share"]] = (
                JournaledShare(outcome=outcome,
                               events=meta.get("events", [])))
        elif rtype == RecordType.QUERY_COMMIT:
            query = state.query(meta["query"])
            query.committed = True
            query.answer_digest = meta.get("answer_digest", "")
            query.fault_counts = meta.get("faults", {})
        elif rtype == RecordType.DRAIN:
            state.drained = True

    # ------------------------------------------------------------------
    # inspection (``repro journal inspect``)
    # ------------------------------------------------------------------
    def inspect(self) -> dict:
        """Non-destructive summary: record counts, last checkpoint, and a
        truncated-tail report (the torn bytes are left in place)."""
        state = self.replay(truncate=False)
        last = ""
        for query in state.queries.values():
            if query.committed:
                last = f"query_commit:{query.key[:12]}"
            elif query.shares:
                last = f"share_result:{query.key[:12]}"
        summary = state.as_dict()
        summary["path"] = str(self.path)
        summary["file_bytes"] = (self.path.stat().st_size
                                 if self.path.is_file() else 0)
        summary["last_checkpoint"] = last
        return summary


def answer_digest(key: bytes, verified_ids, match_ball_ids,
                  num_matches: int) -> str:
    """The keyed digest a ``QUERY_COMMIT`` records: the query's durable
    answer identity (ids and counts only -- no plaintext subgraphs touch
    the journal).  A resumed run recomputes it and any mismatch against
    the committed digest is an integrity violation, not a recovery."""
    payload = json.dumps({
        "verified": sorted(verified_ids),
        "matches": sorted(match_ball_ids),
        "count": num_matches,
    }, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(b"prilo-journal-answer:" + key + payload
                          ).hexdigest()


__all__ = [
    "JournalError",
    "JournalState",
    "JournaledShare",
    "QueryJournalState",
    "RecordType",
    "RunJournal",
    "answer_digest",
    "config_fingerprint",
    "journal_key",
    "keyed_digest",
    "query_idempotency_key",
]
