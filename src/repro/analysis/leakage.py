"""SP-observable leakage accounting.

Everything the service provider can observe about a run -- counts, sizes,
orderings, bypass flags -- gathered into one comparable record.  The
access-pattern privacy claim (Sec. 2.3) says these observables must be a
function of *public* inputs (graph, labels, diameter, parameters) only;
:func:`assert_query_independent` operationalizes that as an equality check
between runs of structurally different queries with the same public view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.prilo import QueryResult


@dataclass(frozen=True)
class LeakageProfile:
    """The SP's complete observable view of one query run."""

    chosen_label_repr: str
    diameter: int
    vertex_labels: tuple[str, ...]
    num_candidates: int
    sequence_lengths: tuple[int, ...]
    evaluations: int
    result_ciphertexts: int
    pm_message_bytes: int
    bypassed_balls: int

    @classmethod
    def of(cls, result: QueryResult) -> "LeakageProfile":
        return cls(
            chosen_label_repr=repr(result.chosen_label),
            diameter=result.query.diameter,
            vertex_labels=tuple(
                repr(result.query.label(u))
                for u in result.query.vertex_order),
            num_candidates=len(result.candidate_ids),
            sequence_lengths=tuple(len(s) for s in result.sequences),
            evaluations=result.schedule.evaluations,
            result_ciphertexts=result.metrics.sizes.ciphertext_results,
            pm_message_bytes=result.metrics.sizes.pruning_messages,
            bypassed_balls=result.metrics.bypassed_balls,
        )

    def public_view(self) -> dict:
        """The fields a privacy audit compares."""
        return {
            "chosen_label": self.chosen_label_repr,
            "diameter": self.diameter,
            "vertex_labels": self.vertex_labels,
            "num_candidates": self.num_candidates,
            "sequence_lengths": self.sequence_lengths,
            "evaluations": self.evaluations,
            "result_ciphertexts": self.result_ciphertexts,
            "pm_message_bytes": self.pm_message_bytes,
            "bypassed_balls": self.bypassed_balls,
        }


def diff_profiles(a: LeakageProfile, b: LeakageProfile) -> dict[str, tuple]:
    """The observables on which two runs differ (empty = indistinguishable
    up to ciphertext randomness)."""
    differences: dict[str, tuple] = {}
    for key, value_a in a.public_view().items():
        value_b = b.public_view()[key]
        if value_a != value_b:
            differences[key] = (value_a, value_b)
    return differences


#: Observables that legitimately vary with the user's *deliberate* step-4
#: disclosure (the decrypted positive/negative split drives SSG's early vs
#: normal mode, hence sequence lengths and total evaluation counts).
DISCLOSURE_DEPENDENT = frozenset({"sequence_lengths", "evaluations"})


# ---------------------------------------------------------------------------
# The allowed-observation model for trace spans
# ---------------------------------------------------------------------------
#: Span-attribute vocabulary of the paper's access-pattern bound: every
#: attribute a restricted-scope (``dealer``/``player``/``enclave``/``sp``)
#: trace span may carry.  It is the :class:`LeakageProfile` fields recast
#: per protocol step -- counts, sizes, orderings and public protocol
#: coordinates; nothing here is a function of the query's *edge structure*
#: beyond what steps 4-9 already reveal (candidate counts, the user's
#: deliberate positive/negative disclosure, and schedule geometry).
#: :class:`repro.observability.spans.RedactionPolicy` enforces this set at
#: span construction; :func:`repro.observability.audit.audit_spans`
#: re-checks serialized traces against it (``repro run --leakage-audit``).
SPAN_OBSERVABLE_KEYS = frozenset({
    # protocol cardinalities (LeakageProfile: num_candidates,
    # sequence_lengths, evaluations, bypassed_balls)
    "candidates", "positives", "balls", "cmms", "bypassed", "sequences",
    "evaluations", "queries", "index",
    # message/boundary sizes (LeakageProfile: pm_message_bytes,
    # result_ciphertexts; EnclaveMetrics byte meters)
    "bytes", "bytes_in", "bytes_out", "ecalls",
    # public protocol coordinates and engine topology
    "share_key", "mode", "backend", "kind", "semantics", "diameter",
    "workers", "attempt",
    # serving/journal machinery (already operator-visible state)
    "replayed", "records", "tampered", "truncated_bytes", "checkpoints",
    "submitted", "admitted", "shed", "drained", "committed",
    # cache counters (functions of public label views and ball ids)
    "hits", "misses", "evictions", "entries", "weight",
    # crypto op counters (operation-sequence cardinalities; the op
    # *sequence* is position-independent by Alg. 2's construction, so its
    # length reveals nothing beyond the candidate/CMM counts above)
    "modmuls", "modexps", "table_builds",
    # sharded-gateway topology (member ids, ring epochs, death and
    # re-dispatch counts are cluster facts the operator configures or
    # already observes at the process level; consistent-hash placement is
    # a public function of public ball ids, so ownership reveals nothing
    # the access-pattern bound does not)
    "shard", "shards", "deaths", "re_dispatches", "epoch", "pool",
    "window",
    # dynamic-update machinery (``delta_apply`` spans): dirty/re-encrypted
    # ball counts are sizes of public ball-id sets the SP derives itself
    # from the (public) delta's touched vertices; standing/notified are
    # registration and change-flag cardinalities -- none is a function of
    # query structure or match content
    "dirty", "reencrypted", "standing", "notified",
})

#: The subset of :data:`SPAN_OBSERVABLE_KEYS` whose values may be strings
#: -- each names a public coordinate with a closed vocabulary (a share
#: key like ``eval:0:p1``, a sequence mode, a backend or artifact-kind
#: name).  Every other allowed key must carry a number or bool, so
#: plaintext cannot ride along in a value.
SPAN_STRING_KEYS = frozenset({
    "share_key", "mode", "backend", "kind", "semantics",
})


def assert_query_independent(a: QueryResult, b: QueryResult,
                             ignore: frozenset[str] = frozenset()) -> None:
    """Raise AssertionError naming any observable that distinguishes two
    runs whose queries share labels/diameter but differ in structure.

    For the baseline Prilo (no pruning, RSG) every field must match.  For
    Prilo\\* pass ``ignore=DISCLOSURE_DEPENDENT``: the user's step-4
    disclosure of positive/negative bits is its own choice, not an SP
    inference, and SSG's geometry follows from it; everything the SP
    derives *without* that disclosure still may not differ.
    """
    differences = diff_profiles(LeakageProfile.of(a), LeakageProfile.of(b))
    relevant = {key: value for key, value in differences.items()
                if key not in ignore}
    if relevant:
        raise AssertionError(
            "SP-observable difference between label-equal queries: "
            + ", ".join(f"{key}: {va!r} != {vb!r}"
                        for key, (va, vb) in relevant.items()))
