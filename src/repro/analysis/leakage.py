"""SP-observable leakage accounting.

Everything the service provider can observe about a run -- counts, sizes,
orderings, bypass flags -- gathered into one comparable record.  The
access-pattern privacy claim (Sec. 2.3) says these observables must be a
function of *public* inputs (graph, labels, diameter, parameters) only;
:func:`assert_query_independent` operationalizes that as an equality check
between runs of structurally different queries with the same public view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.prilo import QueryResult


@dataclass(frozen=True)
class LeakageProfile:
    """The SP's complete observable view of one query run."""

    chosen_label_repr: str
    diameter: int
    vertex_labels: tuple[str, ...]
    num_candidates: int
    sequence_lengths: tuple[int, ...]
    evaluations: int
    result_ciphertexts: int
    pm_message_bytes: int
    bypassed_balls: int

    @classmethod
    def of(cls, result: QueryResult) -> "LeakageProfile":
        return cls(
            chosen_label_repr=repr(result.chosen_label),
            diameter=result.query.diameter,
            vertex_labels=tuple(
                repr(result.query.label(u))
                for u in result.query.vertex_order),
            num_candidates=len(result.candidate_ids),
            sequence_lengths=tuple(len(s) for s in result.sequences),
            evaluations=result.schedule.evaluations,
            result_ciphertexts=result.metrics.sizes.ciphertext_results,
            pm_message_bytes=result.metrics.sizes.pruning_messages,
            bypassed_balls=result.metrics.bypassed_balls,
        )

    def public_view(self) -> dict:
        """The fields a privacy audit compares."""
        return {
            "chosen_label": self.chosen_label_repr,
            "diameter": self.diameter,
            "vertex_labels": self.vertex_labels,
            "num_candidates": self.num_candidates,
            "sequence_lengths": self.sequence_lengths,
            "evaluations": self.evaluations,
            "result_ciphertexts": self.result_ciphertexts,
            "pm_message_bytes": self.pm_message_bytes,
            "bypassed_balls": self.bypassed_balls,
        }


def diff_profiles(a: LeakageProfile, b: LeakageProfile) -> dict[str, tuple]:
    """The observables on which two runs differ (empty = indistinguishable
    up to ciphertext randomness)."""
    differences: dict[str, tuple] = {}
    for key, value_a in a.public_view().items():
        value_b = b.public_view()[key]
        if value_a != value_b:
            differences[key] = (value_a, value_b)
    return differences


#: Observables that legitimately vary with the user's *deliberate* step-4
#: disclosure (the decrypted positive/negative split drives SSG's early vs
#: normal mode, hence sequence lengths and total evaluation counts).
DISCLOSURE_DEPENDENT = frozenset({"sequence_lengths", "evaluations"})


def assert_query_independent(a: QueryResult, b: QueryResult,
                             ignore: frozenset[str] = frozenset()) -> None:
    """Raise AssertionError naming any observable that distinguishes two
    runs whose queries share labels/diameter but differ in structure.

    For the baseline Prilo (no pruning, RSG) every field must match.  For
    Prilo\\* pass ``ignore=DISCLOSURE_DEPENDENT``: the user's step-4
    disclosure of positive/negative bits is its own choice, not an SP
    inference, and SSG's geometry follows from it; everything the SP
    derives *without* that disclosure still may not differ.
    """
    differences = diff_profiles(LeakageProfile.of(a), LeakageProfile.of(b))
    relevant = {key: value for key, value in differences.items()
                if key not in ignore}
    if relevant:
        raise AssertionError(
            "SP-observable difference between label-equal queries: "
            + ", ".join(f"{key}: {va!r} != {vb!r}"
                        for key, (va, vb) in relevant.items()))
