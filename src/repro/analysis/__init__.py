"""Privacy analysis as executable artifacts (Sec. 5, App. B).

The paper's privacy analysis consists of probability bounds and
obliviousness arguments.  This subpackage turns them into things you can
*run*:

* :mod:`~repro.analysis.bounds` -- the closed-form bounds: Prop. 8's
  twiglet-attack probability, App. B.4's per-position guessing
  probabilities for SSG (Eqs. 2-5), and the CGBE false-violation rate.
* :mod:`~repro.analysis.adversary` -- empirical adversary games: a Player
  that tries to pick out the positives from its SSG sequence, and a CPA
  distinguisher against CGBE ciphertexts; both should do no better than
  chance, which the tests assert statistically.
* :mod:`~repro.analysis.traces` -- operation-trace recording for the SP
  algorithms: two queries with equal label multisets must induce
  *identical* traces (the operational meaning of query-obliviousness,
  checked instruction-by-instruction rather than by argument).
* :mod:`~repro.analysis.leakage` -- whole-run SP-observable profiles and
  the audit asserting they are determined by public inputs alone.
"""

from repro.analysis.adversary import (
    CGBEDistinguisher,
    SequenceAdversary,
    cpa_game,
    sequence_guessing_game,
    within_front_accuracy,
)
from repro.analysis.leakage import (
    SPAN_OBSERVABLE_KEYS,
    SPAN_STRING_KEYS,
    LeakageProfile,
    assert_query_independent,
    diff_profiles,
)
from repro.analysis.bounds import (
    cgbe_false_violation_rate,
    ssg_guess_probability,
    twiglet_attack_probability,
)
from repro.analysis.traces import (
    enumeration_trace,
    traces_identical,
    verification_trace,
)

__all__ = [
    "CGBEDistinguisher",
    "LeakageProfile",
    "SPAN_OBSERVABLE_KEYS",
    "SPAN_STRING_KEYS",
    "SequenceAdversary",
    "assert_query_independent",
    "cgbe_false_violation_rate",
    "cpa_game",
    "diff_profiles",
    "enumeration_trace",
    "sequence_guessing_game",
    "ssg_guess_probability",
    "traces_identical",
    "twiglet_attack_probability",
    "verification_trace",
    "within_front_accuracy",
]
