"""Closed-form privacy and correctness bounds from Sec. 5 / App. B.

These implement the paper's probability statements so the benchmarks and
tests can compare empirical adversaries against the analytical ceilings.
"""

from __future__ import annotations


def twiglet_attack_probability(num_aggregated: int,
                               epsilon: float = 0.0) -> float:
    """Prop. 8: ``Pr[G(r) = 1] <= 1/2^n + eps``.

    ``num_aggregated`` is the number of twiglet ciphertexts ``c_t``
    multiplied into the pruning message ``r`` (Alg. 5 line 10).  The SP
    must break *every* independently-encrypted factor to learn ``r``'s
    plaintext, and CGBE's CPA security caps each at 1/2 + eps'.
    """
    if num_aggregated < 0:
        raise ValueError("num_aggregated must be non-negative")
    return min(1.0, 0.5 ** num_aggregated + epsilon)


def ssg_guess_probability(position: int, sequence_length: int,
                          scp: int | None) -> float:
    """App. B.4 (Eqs. 2-5): the probability cap on a Player correctly
    deciding whether the ball at ``position`` (0-based) is spurious.

    Every case reduces to random guessing from the Player's view: the
    Player does not know theta, so it cannot even tell the early case
    from the normal case (each has prior 1/2 per the Shannon-maxim
    argument), and within either case positions carry no signal.  The
    function returns the 1/2 ceiling and exists so the empirical game in
    :mod:`repro.analysis.adversary` has an analytical line to compare
    against; it also validates the inputs' consistency.
    """
    if not 0 <= position < sequence_length:
        raise ValueError("position out of range")
    if scp is not None and not 0 <= scp <= sequence_length:
        raise ValueError("scp out of range")
    return 0.5


def cgbe_false_violation_rate(q: int) -> float:
    """The probability a *blinded non-violating* aggregate decrypts to a
    multiple of q by chance -- approximately 1/q per decryption.

    With the paper's 32-bit q this is ~2.3e-10; with a 16-bit test q it
    is ~1.5e-5, which a full benchmark sweep can actually hit (see
    EXPERIMENTS.md, crypto ablation).
    """
    if q < 2:
        raise ValueError("q must be a prime >= 2")
    return 1.0 / q


def expected_false_violations(q: int, decryptions: int) -> float:
    """Expected number of spurious factor-q hits over a workload."""
    if decryptions < 0:
        raise ValueError("decryptions must be non-negative")
    return cgbe_false_violation_rate(q) * decryptions
