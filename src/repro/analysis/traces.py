"""Operation-trace recording: obliviousness checked instruction-by-step.

The paper's query-obliviousness proofs (App. A.2) argue that the SP-side
algorithms "execute the same lines of code" for any two queries agreeing
on labels.  This module makes that checkable: it replays the enumeration
and verification algorithms while recording an abstract *trace* -- the
sequence of data-dependent decisions an observer co-located with the SP
could time or count -- and compares traces across queries.

A trace event is a small tuple; two queries are oblivious-equivalent on a
ball iff their traces are identical element-for-element.  The recorded
events deliberately include everything observable (which candidate-set
entries are touched, which matrix cells are loaded, product lengths) and
exclude ciphertext *values* (random blinds differ by construction).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.enumeration import candidate_vertices, iter_cmms
from repro.graph.ball import Ball
from repro.graph.query import Query

TraceEvent = tuple[Hashable, ...]


def enumeration_trace(query: Query, ball: Ball,
                      limit: int | None = None) -> list[TraceEvent]:
    """The observable event stream of Alg. 1 on one ball.

    Events: the CV-set sizes probed per row, then one event per emitted
    CMM carrying only its assignment (ball-side data).
    """
    trace: list[TraceEvent] = []
    cv = candidate_vertices(query, ball)
    for u in query.vertex_order:
        trace.append(("cv", len(cv[u])))
    count = 0
    for cmm in iter_cmms(query, ball):
        trace.append(("cmm", cmm.assignment))
        count += 1
        if limit is not None and count >= limit:
            trace.append(("truncated",))
            break
    return trace


def verification_trace(query: Query, ball: Ball,
                       limit: int | None = None) -> list[TraceEvent]:
    """The observable event stream of Alg. 2 over a ball's CMMs.

    Per CMM: the sequence of (i, j, projected-bit) cell accesses in the
    fixed row-major order, i.e. everything a memory-access observer sees.
    The *choice* of multiplying M^E_Qe[i][j] versus c_one depends only on
    the projected bit -- ball-side data -- so the trace is fully
    determined by (labels, ball), never by E_Q.
    """
    trace: list[TraceEvent] = []
    n = query.size
    count = 0
    for cmm in iter_cmms(query, ball):
        projected = cmm.project(ball.graph)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                trace.append(("cell", i, j, int(projected[i, j])))
        trace.append(("product", n * (n - 1)))
        count += 1
        if limit is not None and count >= limit:
            break
    return trace


def traces_identical(a: list[TraceEvent], b: list[TraceEvent]) -> bool:
    """Element-wise equality; trivially, but named for call-site clarity."""
    return a == b
