"""Empirical adversary games.

Two attack surfaces from the security model (Sec. 2.3):

* **Access-pattern attack on SSG** (:func:`sequence_guessing_game`): a
  semi-honest Player sees only its ball-id sequence and tries to decide,
  per ball, whether it is a positive.  App. B.4 caps the success
  probability at 1/2 + eps; the game measures the advantage of the best
  simple strategies (position-based, frequency-based) over many fresh
  SSG runs.

* **CPA game against CGBE** (:func:`cpa_game`): the adversary picks two
  plaintexts, receives the encryption of one, and guesses which.  CGBE's
  multiplicative blinding should reduce any efficient distinguisher to
  chance.  The distinguishers implemented here are the natural ones
  (magnitude, parity, residue tests); the game quantifies their advantage.

These games cannot *prove* security, but they operationalize the paper's
claims: the tests assert the measured advantages stay within statistical
noise of zero, so a regression that leaks (say, sorting positives first
without dummies, or forgetting a blinding factor) fails loudly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.retrieval import ssg_sequences
from repro.crypto.cgbe import CGBE


# ----------------------------------------------------------------------
# SSG sequence-position adversary
# ----------------------------------------------------------------------
@dataclass
class SequenceAdversary:
    """A Player-side adversary guessing positives from sequence positions.

    ``strategy`` maps (position, sequence_length) -> guess (True =
    positive).  The obvious attack is "early positions are positives"
    (front-guessing); SSG defeats it by mixing negatives into the front
    section and duplicating every ball as a dummy elsewhere.
    """

    strategy: Callable[[int, int], bool]
    name: str = "adversary"

    @classmethod
    def front_guesser(cls, fraction: float = 0.25) -> "SequenceAdversary":
        """Guess positive iff the ball sits in the leading ``fraction``."""
        return cls(strategy=lambda pos, n: pos < max(1, int(n * fraction)),
                   name=f"front-{fraction}")

    @classmethod
    def coin_flipper(cls, seed: int = 0) -> "SequenceAdversary":
        rng = random.Random(seed)
        return cls(strategy=lambda pos, n: rng.random() < 0.5,
                   name="coin")


@dataclass
class GameOutcome:
    """Accuracy bookkeeping of one adversary over one game."""

    name: str
    correct: int = 0
    trials: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    @property
    def advantage(self) -> float:
        """|accuracy - 1/2|, the quantity the analysis bounds."""
        return abs(self.accuracy - 0.5)


def sequence_guessing_game(
    adversaries: Sequence[SequenceAdversary],
    num_balls: int = 60,
    theta: float = 0.15,
    k: int = 4,
    rounds: int = 50,
    seed: int = 0,
) -> list[GameOutcome]:
    """Run ``rounds`` fresh SSG generations and score each adversary.

    Per ball occurrence the adversary guesses positive/negative from the
    position alone; balanced scoring (equal weight on positives and
    negatives) so "always guess negative" gains nothing from the skewed
    base rate: accuracy = (TPR + TNR) / 2, whose ceiling for a blind
    adversary is 1/2.
    """
    rng = random.Random(seed)
    ids = list(range(num_balls))
    num_positives = max(1, int(num_balls * theta))
    outcomes = [GameOutcome(name=a.name) for a in adversaries]
    for round_index in range(rounds):
        positives = set(rng.sample(ids, num_positives))
        sequences, mode = ssg_sequences(ids, positives, k,
                                        seed=rng.randrange(1 << 30))
        for adversary, outcome in zip(adversaries, outcomes):
            tp = tn = fp = fn = 0
            for seq in sequences:
                n = len(seq.sequence)
                for pos, ball in enumerate(seq.sequence):
                    guess = adversary.strategy(pos, n)
                    actual = ball in positives
                    if guess and actual:
                        tp += 1
                    elif guess:
                        fp += 1
                    elif actual:
                        fn += 1
                    else:
                        tn += 1
            tpr = tp / (tp + fn) if tp + fn else 0.5
            tnr = tn / (tn + fp) if tn + fp else 0.5
            balanced = (tpr + tnr) / 2
            # Score one balanced-accuracy Bernoulli trial per round.
            outcome.trials += 1
            outcome.correct += 1 if rng.random() < balanced else 0
    return outcomes


def sequence_balanced_accuracy(
    adversary: SequenceAdversary,
    num_balls: int = 60,
    theta: float = 0.15,
    k: int = 4,
    rounds: int = 50,
    seed: int = 0,
) -> float:
    """The adversary's mean balanced accuracy over fresh SSG runs.

    NOTE on interpretation: App. B.4 bounds the probability of identifying
    *which* ball is positive given its position; it does **not** claim the
    positional *prior* is flat -- its own Eq. 4 computes a distinct tail
    prior.  A front-guesser therefore legitimately scores above 1/2 on
    balanced accuracy (the front section is ~50% positives, the tail ~theta/2);
    what must stay at 1/2 is the within-front game below
    (:func:`within_front_accuracy`).  EXPERIMENTS.md discusses this
    reproduction finding.
    """
    rng = random.Random(seed)
    ids = list(range(num_balls))
    num_positives = max(1, int(num_balls * theta))
    total = 0.0
    for _ in range(rounds):
        positives = set(rng.sample(ids, num_positives))
        sequences, _ = ssg_sequences(ids, positives, k,
                                     seed=rng.randrange(1 << 30))
        tp = tn = fp = fn = 0
        for seq in sequences:
            n = len(seq.sequence)
            for pos, ball in enumerate(seq.sequence):
                guess = adversary.strategy(pos, n)
                actual = ball in positives
                if guess and actual:
                    tp += 1
                elif guess:
                    fp += 1
                elif actual:
                    fn += 1
                else:
                    tn += 1
        tpr = tp / (tp + fn) if tp + fn else 0.5
        tnr = tn / (tn + fp) if tn + fp else 0.5
        total += (tpr + tnr) / 2
    return total / rounds


def within_front_accuracy(
    num_balls: int = 60,
    theta: float = 0.15,
    k: int = 4,
    rounds: int = 50,
    seed: int = 0,
) -> float:
    """The paper's exact Eq. 3 game: *among the balls before the SCP*,
    guess which are positive.

    The front is a random permutation of equally many positives and
    negatives (SSG's set construction), so any position-based rule within
    it succeeds with probability 1/2 -- this is what the tests pin down.
    The adversary here uses the strongest positional rule available:
    "the earliest half of the front is positive".
    """
    rng = random.Random(seed)
    ids = list(range(num_balls))
    num_positives = max(1, int(num_balls * theta))
    correct = 0
    scored = 0
    for _ in range(rounds):
        positives = set(rng.sample(ids, num_positives))
        sequences, mode = ssg_sequences(ids, positives, k,
                                        seed=rng.randrange(1 << 30))
        if mode != "early":
            continue
        for seq in sequences:
            front = seq.sequence[:seq.scp or 0]
            half = len(front) // 2
            for pos, ball in enumerate(front):
                guess = pos < half
                correct += 1 if guess == (ball in positives) else 0
                scored += 1
    return correct / scored if scored else 0.5


# ----------------------------------------------------------------------
# CPA game against CGBE
# ----------------------------------------------------------------------
@dataclass
class CGBEDistinguisher:
    """A ciphertext distinguisher: value -> guess of which plaintext."""

    decide: Callable[[int, int], bool]  # (ciphertext value, modulus) -> m1?
    name: str = "distinguisher"

    @classmethod
    def magnitude(cls) -> "CGBEDistinguisher":
        """Guess the larger plaintext for larger ciphertext values."""
        return cls(decide=lambda value, modulus: value > modulus // 2,
                   name="magnitude")

    @classmethod
    def parity(cls) -> "CGBEDistinguisher":
        return cls(decide=lambda value, modulus: value % 2 == 1,
                   name="parity")

    @classmethod
    def low_bits(cls) -> "CGBEDistinguisher":
        return cls(decide=lambda value, modulus: (value & 0xFF) > 127,
                   name="low-bits")


def cpa_game(distinguisher: CGBEDistinguisher,
             trials: int = 400, seed: int = 0,
             modulus_bits: int = 512) -> GameOutcome:
    """The CPA indistinguishability game: E(1) vs E(q), fresh blinds.

    The pair (1, q) is exactly the distinction the protocol must hide
    (edge vs non-edge in ``M^E_Qe``, exists vs not in twiglet tables).
    """
    scheme = CGBE.generate(modulus_bits=modulus_bits, q_bits=24, r_bits=24,
                           seed=seed)
    rng = random.Random(seed + 1)
    outcome = GameOutcome(name=distinguisher.name)
    for _ in range(trials):
        encrypt_q = rng.random() < 0.5
        ciphertext = (scheme.encrypt_q() if encrypt_q
                      else scheme.encrypt(1))
        guess = distinguisher.decide(ciphertext.value,
                                     scheme.params.modulus)
        outcome.trials += 1
        outcome.correct += 1 if guess == encrypt_q else 0
    return outcome
