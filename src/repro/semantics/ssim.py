"""Strong simulation on balls (Def. 4, App. A.1).

Strong simulation requires, for a ball ``B = G[v_s, d_Q]``, a binary
relation ``S`` over ``V_Q x V_B`` such that (1) every query vertex has a
match, (2) some query vertex matches the ball center, and (3) every pair is
label-consistent and child/parent-closed (the *dual simulation* conditions).

There is a unique maximal relation satisfying (3a-c): the greatest fixpoint
of the dual-simulation refinement operator, computed here by iterated
pruning.  Conditions (1)-(2) are then checked on that maximal relation --
if it fails them, no sub-relation can satisfy them either, because adding
pairs is impossible and every satisfying relation is contained in the
maximal one.
"""

from __future__ import annotations

from repro.graph.ball import Ball
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.query import Query


def reference_dual_simulation(query: Query, graph: LabeledGraph,
                              ) -> dict[Vertex, set[Vertex]]:
    """Set-based fixpoint -- the literal transcription of Def. 4 (3).

    Kept as the differential-test oracle for the bitset implementation
    below; both compute the same unique greatest fixpoint.
    """
    sim: dict[Vertex, set[Vertex]] = {
        u: set(graph.vertices_with_label(query.label(u)))
        for u in query.vertex_order
    }
    changed = True
    while changed:
        changed = False
        for u in query.vertex_order:
            survivors = set()
            for v in sim[u]:
                ok = True
                # (3b) every query child of u needs a simulated graph child.
                for u_child in query.pattern.successors(u):
                    if not (graph.successors(v) & sim[u_child]):
                        ok = False
                        break
                # (3c) every query parent of u needs a simulated graph parent.
                if ok:
                    for u_parent in query.pattern.predecessors(u):
                        if not (graph.predecessors(v) & sim[u_parent]):
                            ok = False
                            break
                if ok:
                    survivors.add(v)
            if survivors != sim[u]:
                sim[u] = survivors
                changed = True
    return sim


def maximal_dual_simulation(query: Query, graph: LabeledGraph,
                            ) -> dict[Vertex, set[Vertex]]:
    """The greatest relation satisfying Def. 4 condition (3).

    Returned as ``sim[u] = set of graph vertices simulating u``.  Empty sets
    mean condition (1) fails for that query vertex.

    Implementation: packed-bitset fixpoint.  Graph vertices are indexed
    once; candidate sets and per-vertex successor/predecessor sets become
    int bitmaps, so the inner survivor test (3b/3c) is one AND per query
    edge instead of a set intersection, and the convergence check is an
    int comparison.  Output is identical to
    :func:`reference_dual_simulation` (the property tests assert it).
    """
    order = sorted(graph.vertices(), key=repr)
    index = {v: i for i, v in enumerate(order)}
    succ = [0] * len(order)
    pred = [0] * len(order)
    for i, v in enumerate(order):
        mask = 0
        for w in graph.successors(v):
            mask |= 1 << index[w]
        succ[i] = mask
        mask = 0
        for w in graph.predecessors(v):
            mask |= 1 << index[w]
        pred[i] = mask
    sim_bits: dict[Vertex, int] = {}
    for u in query.vertex_order:
        mask = 0
        for v in graph.vertices_with_label(query.label(u)):
            mask |= 1 << index[v]
        sim_bits[u] = mask
    changed = True
    while changed:
        changed = False
        for u in query.vertex_order:
            children = [sim_bits[c] for c in query.pattern.successors(u)]
            parents = [sim_bits[p] for p in query.pattern.predecessors(u)]
            survivors = 0
            remaining = sim_bits[u]
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                i = low.bit_length() - 1
                if all(succ[i] & c for c in children) \
                        and all(pred[i] & p for p in parents):
                    survivors |= low
            if survivors != sim_bits[u]:
                sim_bits[u] = survivors
                changed = True
    return {
        u: {order[i] for i in range(len(order)) if (bits >> i) & 1}
        for u, bits in sim_bits.items()
    }


def strong_simulation(query: Query, ball: Ball,
                      ) -> dict[Vertex, set[Vertex]] | None:
    """The maximal strong-simulation relation of ``query`` in ``ball``.

    Returns None when the ball does not strongly simulate the query (some
    query vertex unmatched, or the center matched by no query vertex).
    """
    sim = maximal_dual_simulation(query, ball.graph)
    if any(not matches for matches in sim.values()):
        return None  # condition (1) fails
    if not any(ball.center in matches for matches in sim.values()):
        return None  # condition (2) fails
    return sim


def match_graph(query: Query, ball: Ball) -> LabeledGraph | None:
    """The matching subgraph under ssim: the induced subgraph of the ball
    over the image of the maximal relation (Ma et al.'s match graph)."""
    sim = strong_simulation(query, ball)
    if sim is None:
        return None
    image: set[Vertex] = set()
    for matches in sim.values():
        image |= matches
    return ball.graph.induced_subgraph(image)
