"""Subgraph homomorphism (Def. 1).

A match function ``H: V_Q -> V_G`` must preserve labels and map every query
edge onto a graph edge.  ``H`` need not be injective (Example 2 maps both u3
and u4 to v5).  The search is a standard backtracking join over per-vertex
candidate sets with neighborhood-label filtering, ordered smallest-candidate-
set-first; queries are small (|V_Q| <= ~10 in the paper) so this is fast.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.query import Query


def _candidate_sets(query: Query, graph: LabeledGraph,
                    injective: bool = False) -> dict[Vertex, list[Vertex]] | None:
    """Label + degree + neighbor-label candidate filtering (the opt() of
    Alg. 1 line 3, after [18]).

    Returns None when some query vertex has no candidates at all.
    """
    candidates: dict[Vertex, list[Vertex]] = {}
    for u in query.vertex_order:
        out_labels = {query.label(w) for w in query.pattern.successors(u)}
        in_labels = {query.label(w) for w in query.pattern.predecessors(u)}
        out_deg = query.pattern.out_degree(u)
        in_deg = query.pattern.in_degree(u)
        survivors = []
        for v in sorted(graph.vertices_with_label(query.label(u)), key=repr):
            if injective and (graph.out_degree(v) < out_deg
                              or graph.in_degree(v) < in_deg):
                continue
            succ_labels = {graph.label(w) for w in graph.successors(v)}
            pred_labels = {graph.label(w) for w in graph.predecessors(v)}
            if out_labels <= succ_labels and in_labels <= pred_labels:
                survivors.append(v)
        if not survivors:
            return None
        candidates[u] = survivors
    return candidates


def _search(query: Query, graph: LabeledGraph,
            candidates: dict[Vertex, list[Vertex]],
            injective: bool) -> Iterator[dict[Vertex, Vertex]]:
    """Backtracking over query vertices, smallest candidate set first."""
    order = sorted(query.vertex_order, key=lambda u: len(candidates[u]))
    assignment: dict[Vertex, Vertex] = {}
    used: set[Vertex] = set()

    def consistent(u: Vertex, v: Vertex) -> bool:
        for w in query.pattern.successors(u):
            if w in assignment and not graph.has_edge(v, assignment[w]):
                return False
        for w in query.pattern.predecessors(u):
            if w in assignment and not graph.has_edge(assignment[w], v):
                return False
        return True

    def extend(depth: int) -> Iterator[dict[Vertex, Vertex]]:
        if depth == len(order):
            yield dict(assignment)
            return
        u = order[depth]
        for v in candidates[u]:
            if injective and v in used:
                continue
            if not consistent(u, v):
                continue
            assignment[u] = v
            if injective:
                used.add(v)
            yield from extend(depth + 1)
            del assignment[u]
            if injective:
                used.discard(v)

    yield from extend(0)


def iter_homomorphisms(query: Query, graph: LabeledGraph,
                       require_vertex: Vertex | None = None,
                       ) -> Iterator[dict[Vertex, Vertex]]:
    """All subgraph homomorphisms of ``query`` in ``graph``.

    ``require_vertex`` restricts results to matches whose image contains
    that vertex -- Prop. 2's "candidate subgraphs that contain the ball's
    center" filter.
    """
    candidates = _candidate_sets(query, graph)
    if candidates is None:
        return
    for match in _search(query, graph, candidates, injective=False):
        if require_vertex is None or require_vertex in match.values():
            yield match


def find_homomorphisms(query: Query, graph: LabeledGraph,
                       require_vertex: Vertex | None = None,
                       limit: int | None = None,
                       ) -> list[dict[Vertex, Vertex]]:
    """Materialized :func:`iter_homomorphisms`, optionally truncated."""
    matches: list[dict[Vertex, Vertex]] = []
    for match in iter_homomorphisms(query, graph, require_vertex):
        matches.append(match)
        if limit is not None and len(matches) >= limit:
            break
    return matches


def has_homomorphism(query: Query, graph: LabeledGraph,
                     require_vertex: Vertex | None = None) -> bool:
    return bool(find_homomorphisms(query, graph, require_vertex, limit=1))
