"""Re-export of the semantics enum.

:class:`repro.graph.query.Semantics` lives next to :class:`Query` to avoid
an import cycle; this module keeps the name importable from the semantics
package as well.
"""

from repro.graph.query import Semantics

__all__ = ["Semantics"]
