"""Subgraph isomorphism: Def. 1 with an injective match function.

The paper treats sub-iso as hom plus injectivity (Sec. 2.1, footnote 2) --
exactly how it is implemented here, sharing the backtracking engine of
:mod:`repro.semantics.hom` with injective bookkeeping and the degree filters
that injectivity makes sound.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.query import Query
from repro.semantics.hom import _candidate_sets, _search


def iter_isomorphisms(query: Query, graph: LabeledGraph,
                      require_vertex: Vertex | None = None,
                      ) -> Iterator[dict[Vertex, Vertex]]:
    """All injective matches of ``query`` in ``graph`` (subgraph, not
    induced-subgraph, isomorphism: extra graph edges are allowed)."""
    candidates = _candidate_sets(query, graph, injective=True)
    if candidates is None:
        return
    for match in _search(query, graph, candidates, injective=True):
        if require_vertex is None or require_vertex in match.values():
            yield match


def find_isomorphisms(query: Query, graph: LabeledGraph,
                      require_vertex: Vertex | None = None,
                      limit: int | None = None,
                      ) -> list[dict[Vertex, Vertex]]:
    matches: list[dict[Vertex, Vertex]] = []
    for match in iter_isomorphisms(query, graph, require_vertex):
        matches.append(match)
        if limit is not None and len(matches) >= limit:
            break
    return matches


def has_isomorphism(query: Query, graph: LabeledGraph,
                    require_vertex: Vertex | None = None) -> bool:
    return bool(find_isomorphisms(query, graph, require_vertex, limit=1))
