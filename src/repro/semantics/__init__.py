"""Plaintext LGPQ semantics: hom, sub-iso, and strong simulation.

These matchers implement the definitions of Sec. 2.1 / App. A.1 directly.
They serve two roles in the reproduction:

* the user's final *query matching* step (Alg. 3 line 15 runs "any current
  state-of-the-art algorithm on plaintext" over retrieved balls), and
* ground truth for the tests and for classifying balls as true/false
  positives in the PPCR experiments (Sec. 6.3).
"""

from repro.semantics.evaluate import ball_contains_match, find_matches
from repro.semantics.hom import find_homomorphisms, has_homomorphism
from repro.semantics.ssim import strong_simulation
from repro.semantics.subiso import find_isomorphisms, has_isomorphism

__all__ = [
    "ball_contains_match",
    "find_homomorphisms",
    "find_isomorphisms",
    "find_matches",
    "has_homomorphism",
    "has_isomorphism",
    "strong_simulation",
]
