"""Semantics dispatch: evaluate any LGPQ semantics on a ball.

``ball_contains_match`` is the ground-truth predicate behind the paper's
true/false positive bookkeeping (PPCR, Sec. 6.3): for hom and sub-iso a ball
"contains a match" when a match function exists whose image includes the
ball center (Props. 1-2 make center-containing matches sufficient for
completeness across all balls); for ssim it is Def. 4 verbatim.
"""

from __future__ import annotations

from repro.graph.ball import Ball
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.query import Query, Semantics
from repro.semantics.hom import find_homomorphisms
from repro.semantics.ssim import match_graph, strong_simulation
from repro.semantics.subiso import find_isomorphisms


def ball_contains_match(query: Query, ball: Ball) -> bool:
    """Does this ball contribute at least one LGPQ answer?"""
    if query.semantics is Semantics.HOM:
        return bool(find_homomorphisms(query, ball.graph,
                                       require_vertex=ball.center, limit=1))
    if query.semantics is Semantics.SUB_ISO:
        return bool(find_isomorphisms(query, ball.graph,
                                      require_vertex=ball.center, limit=1))
    if query.semantics is Semantics.SSIM:
        return strong_simulation(query, ball) is not None
    raise ValueError(f"unknown semantics {query.semantics!r}")


def find_matches(query: Query, ball: Ball,
                 limit: int | None = None) -> list[LabeledGraph]:
    """The matching subgraphs of ``ball`` for ``query`` (Alg. 3 line 15).

    For hom/sub-iso each match function's image induces one matching
    subgraph (Sec. 2.1); duplicates from distinct functions with equal
    images are collapsed.  For ssim the result is the single match graph.
    """
    if query.semantics is Semantics.SSIM:
        graph = match_graph(query, ball)
        return [graph] if graph is not None else []
    if query.semantics is Semantics.HOM:
        functions = find_homomorphisms(query, ball.graph,
                                       require_vertex=ball.center,
                                       limit=limit)
    elif query.semantics is Semantics.SUB_ISO:
        functions = find_isomorphisms(query, ball.graph,
                                      require_vertex=ball.center,
                                      limit=limit)
    else:
        raise ValueError(f"unknown semantics {query.semantics!r}")
    seen: set[frozenset[Vertex]] = set()
    matches: list[LabeledGraph] = []
    for function in functions:
        image = frozenset(function.values())
        if image not in seen:
            seen.add(image)
            matches.append(ball.graph.induced_subgraph(image))
            if limit is not None and len(matches) >= limit:
                break
    return matches
