"""Ablation: how much does each pruning technique contribute?

Runs the four oblivious pruning techniques (neighbor labels [17], paths
[57], twiglets, and the TEE-backed bloom-filter trees) over the same
workload and reports per-technique pruning power, cost, and the soundness
invariant (no true positive is ever pruned).

Run:  python examples/pruning_ablation.py
"""

from repro import Semantics
from repro.framework import PriloConfig
from repro.workloads import load_dataset, pruning_study


def main() -> None:
    dataset = load_dataset("slashdot", scale=0.5)
    queries = dataset.random_queries(3, size=8, diameter=3,
                                     semantics=Semantics.HOM, seed=2)
    print(f"dataset: {dataset.graph}; workload: {len(queries)} "
          f"random queries (|V_Q|=8, d_Q=3)")

    config = PriloConfig(k_players=2, modulus_bits=1024, q_bits=16,
                         r_bits=16, seed=9)
    study = pruning_study(dataset, queries,
                          methods=("neighbor", "path", "twiglet", "bf"),
                          config=config, combine=("bf", "twiglet"))

    print(f"\ncandidate balls: {study.candidates}")
    print(f"{'method':<14} {'kept':>6} {'pruned':>7} {'PPCR':>6} "
          f"{'false-neg':>9} {'cost(s)':>9}")
    for method in ("neighbor", "path", "twiglet", "bf", "bf+twiglet"):
        counts = study.confusion[method]
        cost = study.total_cost.get(method, 0.0)
        print(f"{method:<14} {counts.tp + counts.fp:>6} "
              f"{counts.pruned:>7} {counts.ppcr:>6.2f} "
              f"{counts.fn:>9} {cost:>9.3f}")
        assert counts.fn == 0, "pruning must never drop a true positive"

    print("\ntake-aways (mirroring Figs. 2a/10):")
    print("  * neighbor labels are cheapest and weakest;")
    print("  * twiglets dominate paths at similar cost;")
    print("  * BF is weaker alone but its tree topology is orthogonal, so "
          "BF+twiglet prunes the most.")


if __name__ == "__main__":
    main()
