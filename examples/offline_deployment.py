"""Offline deployment: the data owner's step (1) with durable storage.

Shows the full ownership lifecycle of Sec. 2.3: the data owner extracts
and encrypts every ball offline, exports the encrypted archive the Dealer
will serve, verifies its integrity, grants the secret key to an
authorized user -- and an unauthorized user demonstrably cannot read a
thing.

Run:  python examples/offline_deployment.py
"""

import tempfile
from pathlib import Path

from repro.crypto.keys import UserKeyring
from repro.framework.roles import DataOwner, Dealer, User
from repro.graph.generators import social_graph
from repro.graph.io import ball_from_bytes
from repro.storage import EncryptedBallArchive


def main() -> None:
    graph = social_graph(num_vertices=300, lattice_neighbors=3,
                         rewire_probability=0.05, num_labels=10, seed=8)
    owner = DataOwner(graph, radii=(1, 2), seed=1)
    print(f"data owner's graph: {graph}")

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "balls-archive"

        # -- offline: extract, encrypt, persist --------------------------
        archive = owner.export_archive(root, radii=(2,))
        total_bytes = sum(entry["bytes"] for entry in archive.entries())
        print(f"exported {len(archive)} encrypted radius-2 balls "
              f"({total_bytes / 1024:.0f} KiB) to {root.name}/")

        # -- integrity sweep before shipping -----------------------------
        verified = archive.verify(owner.key)
        print(f"integrity verified for {verified} balls")

        # -- the Dealer serves the archive without reading it ------------
        dealer = Dealer(EncryptedBallArchive.open(root))
        some_id = archive.ball_ids[0]
        blob = dealer.fetch_encrypted_ball(some_id)
        print(f"dealer serves ball {some_id}: {blob.size} opaque bytes")

        # -- authorized user decrypts ------------------------------------
        user = User(UserKeyring.generate(modulus_bits=1024, seed=2))
        owner.grant_key(user)
        ball = ball_from_bytes(user.keyring.ball_cipher()
                               .decrypt(blob.blob))
        print(f"authorized user decrypted it: center={ball.center}, "
              f"|V_B|={ball.size}")

        # -- unauthorized user cannot ------------------------------------
        stranger = User(UserKeyring.generate(modulus_bits=1024, seed=3))
        try:
            stranger.keyring.ball_cipher()
        except PermissionError as exc:
            print(f"stranger without sk: {exc}")


if __name__ == "__main__":
    main()
