"""Edge-labeled patterns via the paper's footnote-2 reduction.

Some applications label relationships, not just entities ("phosphorylates"
vs "binds").  Footnote 2 of the paper handles this by turning each labeled
edge into an intermediate vertex carrying the edge's label; the whole
privacy framework then runs unchanged.  This example queries a small
interaction network where the *kind* of interaction matters.

Run:  python examples/edge_labeled_queries.py
"""

from repro.framework import PriloConfig, PriloStar
from repro.graph.edge_labels import (
    EdgeLabeledGraph,
    strip_match,
    transform_query,
)
from repro.semantics.hom import find_homomorphisms


def build_network() -> EdgeLabeledGraph:
    """Proteins with typed interactions."""
    vertices = {}
    edges = {}
    # A chain of kinases phosphorylating substrates, plus binding decoys.
    for i in range(40):
        vertices[f"k{i}"] = "kinase"
        vertices[f"s{i}"] = "substrate"
        edges[(f"k{i}", f"s{i}")] = ("phosphorylates" if i % 3 == 0
                                     else "binds")
        if i:
            edges[(f"s{i - 1}", f"k{i}")] = "activates"
    return EdgeLabeledGraph.from_edges(vertices, edges)


def main() -> None:
    network = build_network()
    print(f"network: {network.num_vertices} proteins, "
          f"{network.num_edges} typed interactions")

    # Private pattern: kinase --phosphorylates--> substrate.
    pattern = EdgeLabeledGraph.from_edges(
        {"enzyme": "kinase", "target": "substrate"},
        {("enzyme", "target"): "phosphorylates"})
    query = transform_query(pattern)
    print(f"pattern transformed to a {query.size}-vertex LGPQ "
          f"(d_Q={query.diameter})")

    transformed = network.transform()
    engine = PriloStar.setup(
        transformed,
        PriloConfig(k_players=2, modulus_bits=1024, q_bits=24, r_bits=24,
                    radii=(1, 2, 3, 4), seed=4))
    result = engine.run(query)
    print(f"candidates: {len(result.candidate_ids)}, "
          f"pruned to {len(result.pm_positive_ids)}, "
          f"matches: {result.num_matches}")

    # Project matches back to original vertices.
    sites = set()
    for found in result.matches.values():
        for match_graph in found:
            for raw in find_homomorphisms(query, match_graph):
                projected = strip_match(raw)
                sites.add((projected["enzyme"], projected["target"]))
    print("phosphorylation sites found:", sorted(sites)[:6], "...")
    expected = {(f"k{i}", f"s{i}") for i in range(40) if i % 3 == 0}
    assert sites == expected
    print(f"exactly the {len(expected)} phosphorylates-edges -- the "
          f"binds-typed decoys were correctly excluded")


if __name__ == "__main__":
    main()
