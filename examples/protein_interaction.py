"""The paper's motivating scenario (Example 1): protein-interaction search.

A biotechnology company has discovered a valuable *autophagy pattern* and
wants to find similar structures in a public protein-protein interaction
(PPI) network hosted by a cloud service provider -- without revealing the
pattern's structure to the provider.

This example builds a synthetic PPI-like network (protein families as
labels), expresses the autophagy pattern as an LGPQ under subgraph
isomorphism, and shows what each party observes during processing.

Run:  python examples/protein_interaction.py
"""

from repro import Semantics
from repro.framework import PriloConfig, PriloStar
from repro.graph import Query
from repro.graph.generators import social_graph


PROTEIN_FAMILIES = ["kinase", "ligase", "protease", "receptor",
                    "chaperone", "transporter", "phosphatase", "gtpase"]


def build_ppi_network(seed: int = 11):
    """A synthetic PPI network: locality + hub proteins, family labels."""
    graph = social_graph(num_vertices=900, lattice_neighbors=3,
                         rewire_probability=0.08,
                         num_labels=len(PROTEIN_FAMILIES), seed=seed,
                         hubs=4, hub_degree=25)
    # Relabel integer codes with family names for readability.
    from repro.graph.labeled_graph import LabeledGraph

    named = LabeledGraph()
    for v in graph.vertices():
        named.add_vertex(v, PROTEIN_FAMILIES[graph.label(v)])
    for u, v in graph.edges():
        named.add_edge(u, v)
    return named


def autophagy_pattern() -> Query:
    """A small interaction motif: a kinase activating a ligase that
    regulates two effectors (Fig. 1(a)'s role in the story)."""
    return Query.from_edges(
        labels={"k": "kinase", "l": "ligase",
                "p": "protease", "c": "chaperone"},
        edges=[("k", "l"), ("l", "p"), ("l", "c")],
        semantics=Semantics.SUB_ISO,  # distinct proteins per role
    )


def main() -> None:
    network = build_ppi_network()
    pattern = autophagy_pattern()
    print(f"public PPI network: {network}")
    print(f"private autophagy pattern: {pattern}")

    config = PriloConfig(k_players=4, modulus_bits=1024, q_bits=16,
                         r_bits=16, seed=23)
    engine = PriloStar.setup(network, config)
    result = engine.run(pattern)

    # ------------------------------------------------------------------
    # What the service provider observed (public/ciphertext only):
    # ------------------------------------------------------------------
    print("\n-- service provider's view ------------------------------")
    print(f"  query vertex labels: {sorted(pattern.alphabet)} "
          f"(labels are not a privacy target, Sec. 2.3)")
    print(f"  query diameter: {pattern.diameter}")
    print(f"  encrypted adjacency matrix: "
          f"{pattern.size}x{pattern.size} CGBE ciphertexts (opaque)")
    print(f"  evaluated {result.schedule.evaluations} ball evaluations "
          f"without learning which balls the user cares about")

    # ------------------------------------------------------------------
    # What the user obtained:
    # ------------------------------------------------------------------
    print("\n-- user's results ---------------------------------------")
    print(f"  candidate balls: {len(result.candidate_ids)}, "
          f"pruned to {len(result.pm_positive_ids)} positives, "
          f"{len(result.verified_ids)} verified")
    print(f"  matching interaction sites: {result.num_matches}")
    for ball_id, matches in sorted(result.matches.items())[:5]:
        for match in matches[:2]:
            roles = {v: match.label(v) for v in sorted(match.vertices())}
            print(f"    site around ball {ball_id}: {roles}")
    if result.num_matches == 0:
        print("    (no occurrence of the motif in this synthetic network;"
              " try another seed)")


if __name__ == "__main__":
    main()
