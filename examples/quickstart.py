"""Quickstart: privacy-preserving localized graph pattern querying.

Builds a small labeled data graph, outsources it (data owner -> service
provider), encrypts a query on the user side, and retrieves the matching
subgraphs without the service provider ever seeing the query's structure.

Run:  python examples/quickstart.py
"""

from repro import Semantics
from repro.framework import PriloConfig, PriloStar
from repro.graph import Query
from repro.graph.generators import social_graph


def main() -> None:
    # --- the (public) data graph: a small labeled social network -------
    graph = social_graph(num_vertices=600, lattice_neighbors=3,
                         rewire_probability=0.05, num_labels=12, seed=42)
    print(f"data graph: {graph}")

    # --- the user's private pattern: a labeled twig --------------------
    # Labels are integers 0..11 here; the *edges* below are the secret the
    # framework protects from the service provider.
    query = Query.from_edges(
        labels={"boss": 3, "dev1": 7, "dev2": 5, "intern": 1},
        edges=[("dev1", "boss"), ("dev2", "boss"), ("intern", "dev1")],
        semantics=Semantics.HOM,
    )
    print(f"query: {query} (structure stays encrypted)")

    # --- setup: data owner deploys balls, user gets keys ----------------
    config = PriloConfig(k_players=4, modulus_bits=1024, q_bits=16,
                         r_bits=16, seed=7)
    engine = PriloStar.setup(graph, config)

    # --- run: steps (1)-(9) of the protocol -----------------------------
    result = engine.run(query)

    print(f"\ncandidate balls (centers labeled {result.chosen_label!r}): "
          f"{len(result.candidate_ids)}")
    print(f"after pruning messages: {len(result.pm_positive_ids)} positives "
          f"(methods: {sorted(result.pm_per_method)})")
    print(f"balls verified to contain matches: {len(result.verified_ids)}")
    print(f"sequence mode: {result.sequence_mode}; Dealer held all "
          f"positives at t={result.schedule.all_positives:.4f}s "
          f"(full evaluation ran to t={result.schedule.makespan:.4f}s)")

    print(f"\nmatching subgraphs: {result.num_matches}")
    for ball_id, matches in sorted(result.matches.items()):
        for match in matches:
            print(f"  ball {ball_id}: vertices "
                  f"{sorted(match.vertices())}")

    timings = result.metrics.timings
    print(f"\nuser-side work: preprocess {timings.user_preprocessing:.3f}s, "
          f"decrypt {timings.user_pm_decryption + timings.user_result_decryption:.3f}s, "
          f"plaintext matching {timings.user_matching:.3f}s")


if __name__ == "__main__":
    main()
