"""LDBC-style business-intelligence workloads over an outsourced graph.

Reproduces the Sec. 6.4 scenario end to end: a social-network graph with
tag-class labels is outsourced; the analyst runs the Table 5 BI patterns
privately and compares Prilo (baseline ordering) against Prilo* (pruning +
secure early retrieval) per workload.

Run:  python examples/social_network_bi.py
"""

from repro import Semantics
from repro.framework import PriloConfig
from repro.workloads import ldbc_study, load_dataset


def main() -> None:
    dataset = load_dataset("ldbc", scale=0.5)
    print(f"LDBC-like social graph: {dataset.graph} "
          f"(stand-in for SNB SF1, see DESIGN.md)")

    config = PriloConfig(k_players=4, modulus_bits=1024, q_bits=16,
                         r_bits=16, seed=5)
    records = ldbc_study(dataset, Semantics.HOM, config=config)

    print(f"\n{'query':<6} {'candidates':>10} {'PPCR':>6} {'mode':>7} "
          f"{'SSG(s)':>9} {'RSG(s)':>9} {'speedup':>8} {'matches':>8}")
    for record in records:
        speedup = min(record.scheduling_speedup, 100.0)
        print(f"{record.workload:<6} {record.candidates:>10} "
              f"{record.ppcr:>6.2f} {record.mode:>7} "
              f"{record.ssg_seconds:>9.4f} {record.rsg_seconds:>9.4f} "
              f"{speedup:>7.1f}x {record.matches:>8}")

    improved = sum(1 for r in records if r.scheduling_speedup > 1.25)
    print(f"\nPrilo* clearly faster on {improved}/10 workloads; the "
          f"high-PPCR ones tie because SSG falls back to random ordering "
          f"(the paper observes the same 5/10 split).")


if __name__ == "__main__":
    main()
