"""Verified serving overhead: result certificates vs trusted shards.

Headline numbers for the verifiable-answers tier
(:mod:`repro.storage.authenticate` + :mod:`repro.framework.verify`):

(a) *Overhead*: the same zipf tenant trace served by a 2-shard gateway
    twice -- shards trusted (PR 7 behavior, ``verify_serving=False``, no
    merge-time verifier) vs untrusted (per-verdict certificates checked
    against the pack's committed Merkle root before any slice touches
    the merge).  Gates: byte-identical answers between the two runs, and
    verification adds <= 10% to the compute cost (shard busy seconds
    plus gateway verify seconds -- wall-clock on a shared runner
    measures the scheduler, same convention as the shard-scaling bench).
    Reported alongside: Merkle multiproof bytes per query and the
    per-certificate verify latency.

(b) *Detection*: the verified run repeated with one shard rogue
    (``forge_result``/``drop_ball``/``replay_stale`` at rate 1.0).  The
    gate is absolute: zero forged answers surfaced, the rogue member
    evicted, and the re-scattered answers byte-identical to the trusted
    baseline.

Scale: slashdot at 0.2x the registry default with a single radius ring
(the store-build convention of ``bench_batch_serving``); the numbers are
about relative overhead, not absolute paper figures.
"""

import argparse
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from _common import SCALE, bench_config, emit, format_row, write_bench_json

from repro.crypto.keys import DataOwnerKey
from repro.framework import wire
from repro.framework.faults import MALICIOUS_KINDS, ChaosPolicy
from repro.framework.gateway import Gateway
from repro.framework.placement import PlacementManifest
from repro.framework.prilo import Prilo
from repro.framework.shard import LocalCluster, make_shard_specs
from repro.framework.verify import AnswerVerifier
from repro.graph.query import Semantics
from repro.storage import ArtifactStore, shard_split
from repro.workloads.datasets import load_dataset
from repro.workloads.traffic import TrafficSpec, generate_traffic

BENCH_SCALE = 0.2 * SCALE
SHARDS = 2
QUERY_COUNT = 12
TENANTS = 4
QUERY_SIZE = 8
QUERY_DIAMETER = 3
MAX_OVERHEAD = 0.10


def _setup(seed: int):
    ds = load_dataset("slashdot", scale=BENCH_SCALE)
    graph = ds.graph_for(Semantics.HOM)
    config = bench_config(radii=(QUERY_DIAMETER,))
    spec = TrafficSpec(count=QUERY_COUNT, tenants=TENANTS,
                       size=QUERY_SIZE, diameter=QUERY_DIAMETER,
                       semantics=Semantics.HOM, seed=seed)
    queries, _ = generate_traffic(ds, spec)
    return graph, config, queries


def _serve(graph, config, queries, shards_dir, *, verified: bool,
           rogue=False):
    """One gateway run; returns ``(report, wall_seconds, answer_bytes)``."""
    cfg = replace(config, verify_serving=verified)
    verifier = None
    if verified:
        verifier = AnswerVerifier.from_placement(
            PlacementManifest.read(shards_dir), seed=cfg.seed,
            config=replace(cfg, **Prilo._OVERRIDES))
    specs = make_shard_specs(
        graph, cfg, SHARDS, engine="prilo", store_root=str(shards_dir),
        rogue_shards=(1,) if rogue else (),
        rogue_policy=ChaosPolicy(seed=5, fault_rate=1.0,
                                 kinds=MALICIOUS_KINDS) if rogue
        else None)
    started = time.perf_counter()
    with LocalCluster(specs) as cluster:
        report = Gateway(cluster.handles, verifier=verifier).run(queries)
    wall = time.perf_counter() - started
    blobs = [wire.answer_bytes(a) if a is not None else None
             for a in report.answers]
    return report, wall, blobs


def overhead_study(seed: int = 0) -> dict:
    graph, config, queries = _setup(seed)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        ArtifactStore.create(root / "src", graph, config.radii,
                             DataOwnerKey.generate(config.seed))
        shard_split(root / "src", root / "shards", SHARDS)
        shards_dir = root / "shards"

        trusted, trusted_wall, expected = _serve(
            graph, config, queries, shards_dir, verified=False)
        verified, verified_wall, got = _serve(
            graph, config, queries, shards_dir, verified=True)
        rogue, _, rogue_got = _serve(
            graph, config, queries, shards_dir, verified=True,
            rogue=True)

    assert expected == got, "verified answers diverge from trusted run"
    assert all(blob is not None for blob in expected), \
        "trusted baseline lost a query"

    # Compute-cost overhead: certification happens on the shards (busy
    # seconds) and proof checking at the gateway (verify seconds).
    trusted_cost = trusted.busy_seconds
    verified_cost = verified.busy_seconds + verified.verify_seconds
    overhead = verified_cost / trusted_cost - 1.0 if trusted_cost else 0.0

    assert rogue.forged == 0, "a forged answer was surfaced"
    assert rogue.forgeries_detected > 0, "the rogue shard went uncaught"
    assert rogue.evictions == [1], f"bad eviction set {rogue.evictions}"
    assert rogue_got == expected, \
        "post-eviction answers diverge from the trusted baseline"

    return {
        "dataset": "slashdot", "scale": BENCH_SCALE, "semantics": "hom",
        "seed": seed, "shards": SHARDS,
        "traffic": {"count": QUERY_COUNT, "tenants": TENANTS,
                    "size": QUERY_SIZE, "diameter": QUERY_DIAMETER},
        "trusted": {"wall_seconds": trusted_wall,
                    "busy_seconds": trusted.busy_seconds,
                    "critical_path_seconds":
                        trusted.critical_path_seconds},
        "verified": {"wall_seconds": verified_wall,
                     "busy_seconds": verified.busy_seconds,
                     "critical_path_seconds":
                         verified.critical_path_seconds,
                     "proofs_checked": verified.proofs_checked,
                     "proof_bytes": verified.proof_bytes,
                     "proof_bytes_per_query":
                         verified.proof_bytes / len(queries),
                     "verify_seconds": verified.verify_seconds,
                     "verify_seconds_per_proof":
                         verified.verify_seconds
                         / max(1, verified.proofs_checked)},
        "overhead_fraction": overhead,
        "answers_identical": True,
        "rogue": {"forgeries_detected": rogue.forgeries_detected,
                  "evicted": rogue.evictions,
                  "forged_answers_surfaced": rogue.forged,
                  "answers_identical": True},
    }


def _gate(study: dict) -> None:
    overhead = study["overhead_fraction"]
    assert overhead <= MAX_OVERHEAD, (
        f"verification overhead {overhead:.1%} > {MAX_OVERHEAD:.0%}")


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_verify_overhead(benchmark):
    study = benchmark.pedantic(overhead_study, rounds=1, iterations=1)
    assert study["answers_identical"]
    assert study["rogue"]["forged_answers_surfaced"] == 0
    _gate(study)


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_verify.json)
# ----------------------------------------------------------------------
def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Verified-serving overhead benchmark.")
    parser.add_argument(
        "--json", action="store_true",
        help="also write benchmarks/out/BENCH_verify.json")
    parser.add_argument("--seed", type=int, default=0,
                        help="traffic seed")
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = parse_args(argv)
    study = overhead_study(seed=args.seed)

    widths = (10, 12, 12, 14, 12)
    v = study["verified"]
    lines = [format_row(("mode", "wall(s)", "busy(s)", "verify(s)",
                         "overhead"), widths),
             format_row(("trusted",
                         f"{study['trusted']['wall_seconds']:.3f}",
                         f"{study['trusted']['busy_seconds']:.3f}",
                         "-", "-"), widths),
             format_row(("verified", f"{v['wall_seconds']:.3f}",
                         f"{v['busy_seconds']:.3f}",
                         f"{v['verify_seconds']:.4f}",
                         f"{study['overhead_fraction']:.1%}"), widths),
             "",
             f"proof size: {v['proof_bytes_per_query']:.0f} bytes/query "
             f"({v['proofs_checked']} certificates, "
             f"{v['verify_seconds_per_proof'] * 1e3:.3f}ms each)",
             f"rogue shard: {study['rogue']['forgeries_detected']} "
             f"forgeries detected, evicted {study['rogue']['evicted']}, "
             f"{study['rogue']['forged_answers_surfaced']} forged "
             f"answers surfaced, answers byte-identical"]
    emit("verify_overhead", lines)

    _gate(study)

    if args.json:
        write_bench_json("verify", study)


if __name__ == "__main__":
    main()
