"""Sharded serving gateway: multi-shard throughput scaling + chaos.

Two headline results for the sharded serving tier
(:mod:`repro.framework.gateway` + :mod:`repro.framework.shard`):

(a) *Scaling*: a fixed zipf tenant trace (see
    :mod:`repro.workloads.traffic`) served by 1/4/8-shard loopback
    clusters vs. a single :class:`QueryBatchEngine` baseline.  Answers
    must be byte-identical (``wire.answer_bytes``) at every shard count.
    The gate is on *critical-path* throughput -- baseline serve time over
    ``max(per-shard busy seconds)`` -- because the bench host is a
    single-core container: the shards' work is perfectly concurrent on
    real hardware but time-sliced here, so wall-clock cannot show the
    scaling (the same convention as PR 1's replay-speedup metric).
    Honest wall-clock makespans are reported alongside.  Gates:
    >= 2.5x at 4 shards, >= 4x at 8.

(b) *Chaos*: the 4-shard cluster re-run with a seeded mid-batch SIGKILL
    of one shard.  Zero lost queries, answers still byte-identical, and
    the re-placement pass (survivors evaluating exactly the dead shard's
    orphaned balls) is visible as ``re_dispatches``.

Scale: DBLP at 6x the registry default with a single radius ring -- the
numbers are about relative scaling, not absolute paper figures (DBLP's
near-uniform ball sizes keep the critical path a placement question
rather than a single-giant-ball question; see BENCH_SCALE below).
``--seed`` threads through the traffic generator and the chaos victim
draw, so two runs with equal seeds replay the identical trace and kill
schedule.
"""

import argparse
import time

from _common import SCALE, bench_config, emit, format_row, write_bench_json

from repro.framework import wire
from repro.framework.gateway import Gateway, GatewayChaos
from repro.framework.prilo import Prilo
from repro.framework.server import QueryBatchEngine
from repro.framework.shard import LocalCluster, make_shard_specs
from repro.graph.query import Semantics
from repro.workloads.datasets import load_dataset
from repro.workloads.traffic import TrafficSpec, generate_traffic

SHARD_COUNTS = (1, 4, 8)
# DBLP, not slashdot: the critical path is the *busiest* shard, and the
# slashdot stand-in plants degree-40 hubs whose radius-3 balls cover a
# large slice of the graph -- one such ball pins the critical path no
# matter how many members the ring has.  DBLP is sparse and local
# (Table 4: avg ball 25), so per-ball work is near-uniform and placement
# balance is what the benchmark actually measures.  6x the registry
# default: enough candidate balls per query that the divisible per-ball
# term dominates the per-query cost every shard replicates (CMM builds,
# enumeration), and enough of them per shard that the ring's ball-count
# balance carries over to work balance.
BENCH_SCALE = 6.0 * SCALE
QUERY_COUNT = 12
TENANTS = 4
QUERY_SIZE = 8
QUERY_DIAMETER = 3
CHAOS_SHARDS = 4
MIN_SPEEDUP = {4: 2.5, 8: 4.0}


def _setup(seed: int):
    ds = load_dataset("dblp", scale=BENCH_SCALE)
    graph = ds.graph_for(Semantics.HOM)
    # Single radius ring, matching the store/bench convention: ball ids
    # are a function of (vertex order, radii), and every shard's ring
    # partitions that one id space.
    config = bench_config(radii=(QUERY_DIAMETER,))
    spec = TrafficSpec(count=QUERY_COUNT, tenants=TENANTS,
                       size=QUERY_SIZE, diameter=QUERY_DIAMETER,
                       semantics=Semantics.HOM, seed=seed)
    queries, ranks = generate_traffic(ds, spec)
    return graph, config, queries, ranks


def _baseline(graph, config, queries):
    """Single-engine batch serving: the thing sharding must not change.

    Measured in CPU seconds (``process_time``) to match the shards'
    busy accounting -- both sides then exclude scheduler wait, so the
    speedup compares compute against compute.
    """
    engine = QueryBatchEngine(Prilo.setup(graph, config))
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    report = engine.serve(queries)
    cpu_seconds = time.process_time() - cpu_started
    wall_seconds = time.perf_counter() - wall_started
    answers = [wire.answer_bytes(wire.canonical_answer_of_result(r))
               for r in report.results]
    return cpu_seconds, wall_seconds, answers


def _check_identical(expected, report):
    assert report.completed == len(expected), (
        f"gateway lost queries: {report.completed}/{len(expected)}")
    for i, blob in enumerate(expected):
        answer = report.answers[i]
        assert answer is not None, f"query {i}: no merged answer"
        assert wire.answer_bytes(answer) == blob, (
            f"query {i}: sharded answer diverges from baseline")


def scaling_study(seed: int = 0, shard_counts=SHARD_COUNTS) -> dict:
    graph, config, queries, ranks = _setup(seed)
    baseline_cpu, baseline_wall, expected = _baseline(graph, config, queries)

    rows = []
    for shards in shard_counts:
        specs = make_shard_specs(graph, config, shards, engine="prilo")
        started = time.perf_counter()
        with LocalCluster(specs) as cluster:
            report = Gateway(cluster.handles).run(queries)
        wall_seconds = time.perf_counter() - started
        _check_identical(expected, report)
        critical = report.critical_path_seconds
        rows.append({
            "shards": shards,
            "baseline_cpu_seconds": baseline_cpu,
            "baseline_wall_seconds": baseline_wall,
            "wall_seconds": wall_seconds,
            "makespan_seconds": report.makespan,
            "busy_seconds": report.busy_seconds,
            "critical_path_seconds": critical,
            "critical_path_speedup": baseline_cpu / critical
            if critical > 0 else 1.0,
            "per_shard_busy_seconds": {str(s): b for s, b
                                       in sorted(report.per_shard_busy.items())},
            "caches": {name: stats.as_dict() for name, stats
                       in sorted(report.metrics.cache_totals().items())},
            "identical_answers": True,
        })
    return {
        "dataset": "dblp", "scale": BENCH_SCALE, "semantics": "hom",
        "seed": seed,
        "traffic": {"count": QUERY_COUNT, "tenants": TENANTS,
                    "size": QUERY_SIZE, "diameter": QUERY_DIAMETER,
                    "ranks": ranks},
        "rows": rows,
    }


def chaos_study(seed: int = 0) -> dict:
    """Kill one shard mid-batch; nothing may be lost or wrong."""
    graph, config, queries, _ = _setup(seed)
    _, _, expected = _baseline(graph, config, queries)

    specs = make_shard_specs(graph, config, CHAOS_SHARDS,
                             engine="prilo")
    with LocalCluster(specs) as cluster:
        gateway = Gateway(cluster.handles,
                          chaos=GatewayChaos(seed=seed,
                                             kill_after_verdicts=2))
        report = gateway.run(queries)
    _check_identical(expected, report)
    assert report.deaths, "chaos did not kill a shard"
    return {
        "shards": CHAOS_SHARDS,
        "killed": report.deaths,
        "survivors": list(report.final_members),
        "re_dispatches": report.re_dispatches,
        "completed": report.completed,
        "lost": len(queries) - report.completed,
        "identical_answers": True,
    }


def _gate(rows) -> None:
    for row in rows:
        floor = MIN_SPEEDUP.get(row["shards"])
        if floor is not None:
            assert row["critical_path_speedup"] >= floor, (
                f"{row['shards']}-shard critical-path speedup "
                f"{row['critical_path_speedup']:.2f}x < {floor}x")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_shard_scaling(benchmark):
    study = benchmark.pedantic(scaling_study, rounds=1, iterations=1)
    assert all(row["identical_answers"] for row in study["rows"])
    _gate(study["rows"])


def test_shard_death_loses_nothing(benchmark):
    chaos = benchmark.pedantic(chaos_study, rounds=1, iterations=1)
    assert chaos["lost"] == 0
    assert chaos["re_dispatches"] > 0


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_shard.json)
# ----------------------------------------------------------------------
def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Sharded-gateway scaling benchmark.")
    parser.add_argument(
        "--json", action="store_true",
        help="also write benchmarks/out/BENCH_shard.json")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="traffic + chaos seed (same seed => identical trace)")
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = parse_args(argv)
    study = scaling_study(seed=args.seed)
    chaos = chaos_study(seed=args.seed)

    widths = (8, 14, 10, 14, 14, 10)
    lines = [format_row(("shards", "baseline-cpu(s)", "wall(s)",
                         "busy-total(s)", "critical(s)", "speedup"),
                        widths)]
    for row in study["rows"]:
        lines.append(format_row(
            (row["shards"], f"{row['baseline_cpu_seconds']:.3f}",
             f"{row['wall_seconds']:.3f}", f"{row['busy_seconds']:.3f}",
             f"{row['critical_path_seconds']:.3f}",
             f"{row['critical_path_speedup']:.2f}x"), widths))
    lines.append("")
    lines.append(f"chaos: shard {chaos['killed']} killed mid-batch, "
                 f"{chaos['re_dispatches']} re-placement tasks, "
                 f"{chaos['completed']} completed, {chaos['lost']} lost")
    emit("shard_scaling", lines)

    _gate(study["rows"])
    assert chaos["lost"] == 0, "chaos run lost queries"

    if args.json:
        write_bench_json("shard", {**study, "chaos": chaos})


if __name__ == "__main__":
    main()
