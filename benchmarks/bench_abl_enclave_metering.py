"""Ablation: enclave boundary traffic (Sec. 2.2's cost model).

"The cost of interaction with the enclave is huge" -- the BF design pays
one filter transfer per ball plus one sealed encodings transfer per query.
This bench reads the simulated enclave's meters after a real workload and
relates them to Eq. 1's filter sizing, confirming the paper's 4 KB-class
per-ball footprint at the default p = 0.3.
"""

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.workloads.experiments import pruning_study


def test_ablation_enclave_metering(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=14)
    config = bench_config()

    def run():
        return pruning_study(ds, queries, methods=("bf",), config=config,
                             combine=())

    study = benchmark.pedantic(run, rounds=1, iterations=1)

    # The study drives players round-robin; collect their enclave meters.
    from repro.framework.prilo import Prilo

    # pruning_study builds its own engine internally; re-run one player's
    # worth of work against a fresh engine to read meters deterministically.
    engine = Prilo(ds.graph, config)
    player = engine.players[0]
    from repro.framework.messages import PruningMessages
    from repro.framework.metrics import MessageSizes, PhaseTimings

    message, _ = engine.user.prepare_query(
        queries[0], use_bf=True, use_twiglet=False, use_path=False,
        use_neighbor=False, twiglet_h=config.twiglet_h, bf_config=config.bf,
        enclaves=[p.enclave for p in engine.players],
        sizes=MessageSizes(), timings=PhaseTimings())
    _, balls = engine.candidate_balls(queries[0])
    pms = PruningMessages()
    player.compute_pms(message, balls, bf_config=config.bf,
                       twiglet_h=config.twiglet_h, pms=pms, pm_costs={},
                       timings=PhaseTimings())
    meters = player.enclave.metrics

    widths = (28, 16)
    per_ball = meters.bytes_in / max(len(balls), 1)
    lines = [
        format_row(("meter", "value"), widths),
        format_row(("balls processed", len(balls)), widths),
        format_row(("ecalls", meters.ecalls), widths),
        format_row(("bytes into enclave", meters.bytes_in), widths),
        format_row(("bytes out of enclave", meters.bytes_out), widths),
        format_row(("peak enclave memory (B)", meters.peak_memory), widths),
        format_row(("avg bytes/ball", f"{per_ball:.0f}"), widths),
        format_row(("filter bits (Eq. 1)", config.bf.filter_bits()),
                   widths),
    ]
    emit("abl_enclave_metering", lines)

    # Shape: the per-ball boundary cost is the filter transfer (plus the
    # small header), i.e. on the order of Eq. 1's m bits / 8.
    assert per_ball <= config.bf.filter_bits() // 8 + 4096
    assert meters.peak_memory < player.enclave.memory_limit_bytes
    assert study.confusion["bf"].fn == 0
