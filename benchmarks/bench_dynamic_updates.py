"""Incremental delta maintenance vs from-scratch pack rebuild.

The dynamic-graph contract (DESIGN.md section 14): when a small delta
(here <= 1% of slashdot's edges rewired, no vertex removals) hits an
outsourced pack, ``ArtifactStore.apply_delta`` must

(a) re-encrypt **only** the dirty balls -- the balls whose radius-r
    neighborhood intersects the delta's touched vertices -- and reuse
    every other ciphertext byte-for-byte, making the update cost
    proportional to the delta, not the graph: gated at **>= 5x**
    faster than ``ArtifactStore.create`` on the post-delta graph;

(b) leave a store that answers **identically** to the rebuilt one --
    the match multiset of a store-backed engine on the incrementally
    maintained pack equals the rebuilt pack's on the same queries.

The dirty-ball fraction is reported alongside so a regression in the
touched-vertex BFS (suddenly marking everything dirty) shows up as a
coverage diff even when wall-clock noise hides the slowdown.

Scale: slashdot at 0.05x the registry default -- pack creation is the
expensive denominator and the numbers are relative costs of the
maintenance layer, not paper figures.
"""

import time

from _common import (
    SCALE,
    bench_config,
    emit,
    format_row,
    parse_cli,
    write_bench_json,
)

from repro.core.bf_pruning import BFConfig
from repro.crypto.keys import DataOwnerKey
from repro.framework.prilo import Prilo
from repro.framework.wire import canonical_answer_of_result
from repro.graph.delta import random_delta
from repro.storage import ArtifactStore
from repro.workloads.datasets import load_dataset

BENCH_SCALE = 0.1 * SCALE
#: Radius-1 balls: on the scaled-down slashdot the radius-2
#: neighborhood of any touched vertex reaches a hub and through it
#: most of the graph (~70% of balls dirty from a single rewire), so
#: radius 1 is where "update cost proportional to delta size" is
#: actually observable at this scale.  The dirty-set math is identical
#: at every radius; only the reach differs.
RADII = (1,)
#: Well under the <= 1%-of-edges headline workload (one rewired edge
#: at this scale); no vertex removals, so the label alphabet -- and
#: with it the tree encoding -- stays fixed and the rebuild-scale
#: ``recode_all_trees`` escape hatch never fires.
EDGE_FRACTION = 0.0005
DELTA_SEED = 17
NUM_QUERIES = 2
QUERY_SIZE = 4
MIN_SPEEDUP = 5.0
BF = BFConfig(eta=16, expected_trees=200)


def _flat_answers(engine, queries):
    """Ball-id-erased answers: incremental and rebuilt stores number
    surviving balls differently (survivors keep their historical ids),
    so equality is over match content, not coordinates."""
    out = []
    for query in queries:
        answer = canonical_answer_of_result(engine.run(query))
        out.append((sorted(m for ms in answer["matches"].values()
                           for m in ms),
                    answer["num_matches"]))
    return out


def dynamic_update_study(tmp_dir) -> dict:
    from pathlib import Path

    tmp = Path(tmp_dir)
    ds = load_dataset("slashdot", scale=BENCH_SCALE)
    config = bench_config(radii=RADII)
    key = DataOwnerKey.generate(config.seed)

    # The pre-delta pack: built once, then incrementally maintained.
    graph = ds.graph.copy()
    store = ArtifactStore.create(tmp / "incremental", graph, RADII, key,
                                 twiglet_h=3, bf_config=BF)
    balls_before = len(store.ball_id_map(graph))

    delta = random_delta(graph, edge_fraction=EDGE_FRACTION,
                         seed=DELTA_SEED)
    edges_touched = len(delta.added_edges) + len(delta.removed_edges)

    started = time.perf_counter()
    report = store.apply_delta(delta, graph, key)
    apply_seconds = time.perf_counter() - started

    # The alternative the delta log exists to avoid: rebuild the whole
    # pack from the post-delta graph.
    rebuilt_graph = graph.copy()
    started = time.perf_counter()
    rebuilt = ArtifactStore.create(tmp / "rebuilt", rebuilt_graph, RADII,
                                   key, twiglet_h=3, bf_config=BF)
    rebuild_seconds = time.perf_counter() - started

    store.check(graph=graph, key=key)
    speedup = (rebuild_seconds / apply_seconds
               if apply_seconds > 0 else float("inf"))

    queries = ds.random_queries(NUM_QUERIES, size=QUERY_SIZE,
                                diameter=RADII[0], seed=13)
    incremental_engine = Prilo.setup(graph, config, store=store)
    rebuilt_engine = Prilo.setup(rebuilt_graph, config, store=rebuilt)
    try:
        incremental_answers = _flat_answers(incremental_engine, queries)
        rebuilt_answers = _flat_answers(rebuilt_engine, queries)
    finally:
        incremental_engine.close()
        rebuilt_engine.close()

    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "balls": balls_before,
        "edge_fraction": EDGE_FRACTION,
        "edges_touched": edges_touched,
        "dirty_balls": report.dirty,
        "reencrypted": report.reencrypted,
        "reused": report.reused,
        "dirty_fraction": (report.dirty / balls_before
                           if balls_before else 0.0),
        "apply_seconds": apply_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": speedup,
        "answers_identical": incremental_answers == rebuilt_answers,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_dynamic_updates(benchmark, tmp_path):
    study = benchmark.pedantic(dynamic_update_study, args=(tmp_path,),
                               rounds=1, iterations=1)
    assert study["answers_identical"], (
        "incrementally maintained store diverged from the rebuilt one")
    assert study["speedup"] >= MIN_SPEEDUP, (
        f"apply_delta only {study['speedup']:.2f}x faster than a "
        f"rebuild (< {MIN_SPEEDUP:.0f}x)")
    assert study["reencrypted"] <= study["dirty_balls"] + len(RADII), (
        "re-encrypted more balls than the delta dirtied")


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_dynamic.json)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    import tempfile

    args = parse_cli(argv)
    with tempfile.TemporaryDirectory() as tmp:
        study = dynamic_update_study(tmp)

    widths = (24, 12, 12)
    lines = [format_row(("operation", "seconds", "relative"), widths)]
    lines.append(format_row(
        ("full rebuild", f"{study['rebuild_seconds']:.2f}", "-"), widths))
    lines.append(format_row(
        ("apply_delta", f"{study['apply_seconds']:.2f}",
         f"{study['speedup']:.2f}x"), widths))
    lines.append("")
    lines.append(
        f"delta touched {study['edges_touched']} edges "
        f"({study['edge_fraction']:.2%} of {study['edges']}): "
        f"{study['dirty_balls']}/{study['balls']} balls dirty "
        f"({study['dirty_fraction']:.1%}), {study['reencrypted']} "
        f"re-encrypted, {study['reused']} ciphertexts reused")
    lines.append(
        "answers identical to rebuild: "
        + ("yes" if study["answers_identical"] else "NO"))
    emit("dynamic_updates", lines)

    assert study["answers_identical"], (
        "incrementally maintained store diverged from the rebuilt one")
    assert study["speedup"] >= MIN_SPEEDUP, (
        f"apply_delta only {study['speedup']:.2f}x faster than a rebuild")

    if args.json:
        write_bench_json("dynamic", {
            "dataset": "slashdot", "scale": BENCH_SCALE,
            "gates": {"speedup_min": MIN_SPEEDUP,
                      "answers_identical": True},
            **study})


if __name__ == "__main__":
    main()
