"""Multi-query batch serving and the persistent artifact store.

Two headline comparisons for the serving layer
(:mod:`repro.framework.server` + :mod:`repro.storage.store`):

(a) *Batch serving*: batches of 1/4/16 homomorphism queries (4 distinct
    query patterns, cycled) served through :class:`QueryBatchEngine` --
    per-query latency, batch makespan and CMM-cache hit rate -- against
    the sequential replay baseline (a fresh engine answering the same
    queries one by one with no CMM cache).  Answers must be identical;
    the batch-16 makespan must beat sequential replay by >= 2x.

(b) *Store cold start*: recomputing the data owner's offline outsourcing
    output (extract every ball, encrypt every blob -- what the Dealer
    must hold before serving) vs. opening a persisted
    :class:`ArtifactStore` and materializing the same encrypted hand-off
    from the mmap'd pack.  The store path must be >= 5x faster.  The
    plaintext-ball full materialization (the Players' lazily-touched
    side) is reported alongside for transparency.

Scale: slashdot at 0.2x the registry default (the serving-layer numbers
are about relative speedups, not absolute paper figures; the smaller
graph keeps the sequential-replay baseline affordable in CI).
"""

import tempfile
import time

from _common import (
    SCALE,
    bench_config,
    emit,
    format_row,
    parse_cli,
    write_bench_json,
)

from repro.crypto.keys import DataOwnerKey
from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine
from repro.graph.ball import BallIndex
from repro.graph.io import ball_to_bytes
from repro.graph.query import Semantics
from repro.storage import ArtifactStore
from repro.workloads.datasets import load_dataset

BATCH_SIZES = (1, 4, 16)
DISTINCT_QUERIES = 4
QUERY_SIZE = 8
QUERY_DIAMETER = 3
BENCH_SCALE = 0.2 * SCALE


def _setup():
    ds = load_dataset("slashdot", scale=BENCH_SCALE)
    graph = ds.graph_for(Semantics.HOM)
    # One radius ring keeps the store build proportional to the graph; the
    # engine's radii must equal the store's (ball ids are a function of
    # (vertex order, radii) -- ArtifactStore.check enforces the match).
    config = bench_config(radii=(QUERY_DIAMETER,))
    distinct = ds.random_queries(DISTINCT_QUERIES, size=QUERY_SIZE,
                                 diameter=QUERY_DIAMETER,
                                 semantics=Semantics.HOM, seed=5)
    return graph, config, distinct


def batch_study() -> dict:
    """Compare batch serving against sequential replay per batch size."""
    graph, config, distinct = _setup()
    rows = []
    for size in BATCH_SIZES:
        queries = [distinct[i % DISTINCT_QUERIES] for i in range(size)]

        sequential_engine = PriloStar.setup(graph, config)
        started = time.perf_counter()
        sequential = [sequential_engine.run(q) for q in queries]
        sequential_seconds = time.perf_counter() - started

        batch_engine = QueryBatchEngine(PriloStar.setup(graph, config))
        report = batch_engine.serve(queries)

        # Value-identical to N independent answer() calls -- asserted on
        # every row, recorded in the payload.
        identical = all(
            seq.match_ball_ids == bat.match_ball_ids
            and seq.verified_ids == bat.verified_ids
            and seq.candidate_ids == bat.candidate_ids
            for seq, bat in zip(sequential, report.results))
        assert identical, f"batch-{size} diverged from sequential replay"

        stats = report.cache_stats
        rows.append({
            "batch": size,
            "distinct_signatures": len(report.signature_groups),
            "sequential_seconds": sequential_seconds,
            "makespan_seconds": report.makespan,
            "mean_latency_seconds": sum(report.latencies) / size,
            "speedup": sequential_seconds / report.makespan
            if report.makespan > 0 else 1.0,
            "cmm_cache": stats.as_dict(),
            "identical_answers": identical,
        })
    return {"query_size": QUERY_SIZE, "query_diameter": QUERY_DIAMETER,
            "distinct_queries": DISTINCT_QUERIES, "rows": rows}


def store_study() -> dict:
    """Compare store-backed cold start against offline recomputation."""
    graph, config, _ = _setup()
    key = DataOwnerKey.generate(config.seed)

    # Recompute: the full offline outsourcing step -- every ball extracted
    # and its plaintext encrypted for the Dealer (in-memory; no file I/O
    # charged to this side).
    started = time.perf_counter()
    index = BallIndex(graph, config.radii)
    cipher = key.cipher()
    ball_count = 0
    for center in graph.vertices():
        for radius in index.radii:
            cipher.encrypt(ball_to_bytes(index.ball(center, radius)))
            ball_count += 1
    recompute_seconds = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as tmp:
        root = tmp + "/store"
        started = time.perf_counter()
        ArtifactStore.create(root, graph, config.radii, key,
                             twiglet_h=None, bf_config=None)
        build_seconds = time.perf_counter() - started

        # Cold start: open, staleness-check, and materialize the Dealer's
        # complete encrypted hand-off from the mmap'd pack.
        started = time.perf_counter()
        store = ArtifactStore.open(root)
        store.check(graph=graph, radii=config.radii, key=key)
        for ball_id in store.ball_ids():
            store.load_encrypted(ball_id)
        cold_seconds = time.perf_counter() - started

        # Transparency: the Players' plaintext side, fully materialized
        # (normally touched lazily, one candidate ball at a time).
        started = time.perf_counter()
        for ball_id in store.ball_ids():
            store.load_ball(ball_id)
        plaintext_seconds = time.perf_counter() - started
        store.close()

    return {
        "balls": ball_count,
        "recompute_seconds": recompute_seconds,
        "store_build_seconds": build_seconds,
        "cold_start_seconds": cold_seconds,
        "plaintext_load_all_seconds": plaintext_seconds,
        "cold_start_speedup": recompute_seconds / cold_seconds
        if cold_seconds > 0 else 1.0,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_batch_beats_sequential(benchmark):
    study = benchmark.pedantic(batch_study, rounds=1, iterations=1)
    largest = study["rows"][-1]
    assert largest["batch"] == max(BATCH_SIZES)
    assert largest["identical_answers"]
    assert largest["speedup"] >= 2.0, (
        f"batch-{largest['batch']} speedup {largest['speedup']:.2f}x < 2x")
    # Grouping exists: 16 queries collapse onto 4 signatures.
    assert largest["distinct_signatures"] == DISTINCT_QUERIES


def test_store_cold_start(benchmark):
    study = benchmark.pedantic(store_study, rounds=1, iterations=1)
    assert study["cold_start_speedup"] >= 5.0, (
        f"store cold start only {study['cold_start_speedup']:.1f}x faster "
        "than recompute")


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_batch.json)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    args = parse_cli(argv)
    batches = batch_study()
    store = store_study()

    widths = (8, 12, 14, 14, 14, 10, 10)
    lines = [format_row(("batch", "signatures", "sequential(s)",
                         "makespan(s)", "mean-lat(s)", "hit-rate",
                         "speedup"), widths)]
    for row in batches["rows"]:
        lines.append(format_row(
            (row["batch"], row["distinct_signatures"],
             f"{row['sequential_seconds']:.3f}",
             f"{row['makespan_seconds']:.3f}",
             f"{row['mean_latency_seconds']:.3f}",
             f"{row['cmm_cache']['hit_rate']:.2f}",
             f"{row['speedup']:.2f}x"), widths))
    lines.append("")
    lines.append(f"store: {store['balls']} balls  "
                 f"recompute={store['recompute_seconds']:.2f}s  "
                 f"build={store['store_build_seconds']:.2f}s  "
                 f"cold-start={store['cold_start_seconds']:.3f}s  "
                 f"plaintext-all={store['plaintext_load_all_seconds']:.2f}s  "
                 f"speedup={store['cold_start_speedup']:.0f}x")
    emit("batch_serving", lines)

    largest = batches["rows"][-1]
    assert largest["speedup"] >= 2.0, (
        f"batch-{largest['batch']} speedup {largest['speedup']:.2f}x < 2x")
    assert store["cold_start_speedup"] >= 5.0, (
        f"store cold start only {store['cold_start_speedup']:.1f}x faster")

    if args.json:
        write_bench_json("batch", {
            "dataset": "slashdot", "scale": BENCH_SCALE, "semantics": "hom",
            "batches": batches, "store": store})


if __name__ == "__main__":
    main()
