"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures and
(a) exercises the relevant code path under pytest-benchmark, and
(b) prints + persists the reproduced rows/series under ``benchmarks/out/``
    so the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed.

Scale: the datasets are the synthetic stand-ins of
:mod:`repro.workloads.datasets` (about 1/20 of the SNAP graphs); CGBE runs
with the paper's 32-bit q/r over a 2048-bit modulus (the 32-bit q keeps
the q-divisibility test's false-violation probability at ~2^-32 -- with a
smaller test-size q the thousands of aggregates a full sweep decrypts
would occasionally misfire).  Set ``REPRO_BENCH_SCALE`` /
``REPRO_BENCH_QUERIES`` to trade fidelity for time.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
from pathlib import Path

from repro.core.bf_pruning import BFConfig
from repro.framework.prilo import PriloConfig
from repro.workloads.datasets import Dataset, load_dataset

OUT_DIR = Path(__file__).parent / "out"

#: Dataset scale relative to the (already scaled) registry defaults.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: Queries per workload (the paper uses 10).
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "3"))

SNAP_DATASETS = ("slashdot", "dblp", "twitter")


def bench_config(**overrides) -> PriloConfig:
    """The benchmark engine configuration (see module docstring)."""
    defaults = dict(
        k_players=4,
        modulus_bits=2048,
        q_bits=32,
        r_bits=32,
        radii=(1, 2, 3, 4),
        seed=17,
        bf=BFConfig(eta=64, expected_trees=2_000,
                    false_positive_rate=0.3, threshold_t=15),
    )
    defaults.update(overrides)
    return PriloConfig(**defaults)


@functools.lru_cache(maxsize=None)
def dataset(name: str) -> Dataset:
    return load_dataset(name, scale=SCALE)


def emit(name: str, lines: list[str]) -> None:
    """Print a reproduced table/series and persist it for EXPERIMENTS.md."""
    OUT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def format_row(values, widths) -> str:
    return "  ".join(str(v).ljust(w) for v, w in zip(values, widths))


def parse_cli(argv=None) -> argparse.Namespace:
    """CLI for benchmarks run as scripts (``python bench_*.py [--json]``)."""
    parser = argparse.ArgumentParser(
        description="Reproduce one benchmark outside pytest-benchmark.")
    parser.add_argument(
        "--json", action="store_true",
        help="also write the machine-readable headline numbers to "
             "benchmarks/out/BENCH_headline.json")
    return parser.parse_args(argv)


#: Version tag of the shared ``--json`` payload envelope.  Every
#: machine-readable benchmark file carries it plus the run's scale knobs,
#: so CI gates and regression diffs parse one shape across all scripts.
BENCH_SCHEMA = "repro-bench/1"


def ops_summary(*results) -> dict:
    """The uniform crypto-op block for benchmark payloads.

    Merges the :class:`~repro.crypto.ops.OpCounter` of every given
    engine result; ``by_phase_role`` keeps the full attribution,
    the top-level totals are what regression gates compare.
    """
    from repro.crypto.ops import OpCounter

    merged = OpCounter()
    for result in results:
        merged.merge(getattr(result.metrics, "ops", None))
    totals = merged.totals()
    return {"modmul": totals.modmul, "modexp": totals.modexp,
            "table_build": totals.table_build,
            "by_phase_role": merged.as_dict()}


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's numbers as ``benchmarks/out/BENCH_<name>.json``
    under the shared :data:`BENCH_SCHEMA` envelope."""
    OUT_DIR.mkdir(exist_ok=True)
    envelope = {"schema": BENCH_SCHEMA, "benchmark": name,
                "env_scale": SCALE, "env_num_queries": NUM_QUERIES}
    envelope.update(payload)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")
    return path


def write_headline_json(payload: dict) -> Path:
    """Persist the headline numbers for CI artifacts / regression tracking."""
    return write_bench_json("headline", payload)
