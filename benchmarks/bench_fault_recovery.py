"""Fault-recovery overhead of the chaos-hardened execution path.

The robustness contract (DESIGN.md "Fault model and recovery") has a
performance half: surviving faults must be *cheap*.  This benchmark runs
the same homomorphism queries three ways --

(a) serial, fault-free: the ground-truth answers;
(b) process pool, fault-free: the parallel baseline wall-clock;
(c) process pool under a seeded 10% fault schedule (worker crashes via
    ``os._exit`` in the pool worker, enclave ECALL aborts with one
    retry): the recovery path, pool respawns and all

-- and asserts that (c)'s match sets are identical to (a)'s for every
query while (c)'s wall-clock stays within 15% of (b)'s.  A serial-chaos
row is reported alongside: the same schedule driven through the in-process
retry loop, isolating recovery bookkeeping from pool-respawn cost.

Scale: slashdot at 0.2x the registry default -- the numbers here are a
relative overhead, not a paper figure, and the smaller graph keeps three
full pipeline sweeps affordable in CI.
"""

import time

from _common import (
    SCALE,
    bench_config,
    emit,
    format_row,
    parse_cli,
    write_bench_json,
)

from repro.framework.faults import ChaosPolicy, FaultKind, RecoveryPolicy
from repro.framework.prilo_star import PriloStar
from repro.graph.query import Semantics
from repro.workloads.datasets import load_dataset

NUM_QUERIES = 3
QUERY_SIZE = 8
QUERY_DIAMETER = 3
BENCH_SCALE = 0.2 * SCALE
FAULT_RATE = 0.10
#: Seed 6's schedule crashes one PM share's worker on every query (a real
#: ``BrokenProcessPool`` + pool respawn + re-dispatch in the measured
#: wall-clock, not just bookkeeping) alongside enclave ECALL aborts.
#: Faults repeat per query -- chaos keys are protocol coordinates, not
#: query ids -- so the sweep pays the recovery cost three times over.
CHAOS_SEED = 6
MAX_OVERHEAD = 0.15

#: Crash/abort faults only: both are recovered by re-dispatch/retry, so
#: the answer assertion is pure (no degradation changes the PM sets) and
#: the measured overhead is the recovery machinery itself.
FAULT_KINDS = (FaultKind.WORKER_CRASH, FaultKind.ENCLAVE_MEMORY)


def _setup():
    ds = load_dataset("slashdot", scale=BENCH_SCALE)
    graph = ds.graph_for(Semantics.HOM)
    config = bench_config(
        radii=(QUERY_DIAMETER,),
        recovery=RecoveryPolicy(backoff_seconds=0.01))
    queries = ds.random_queries(NUM_QUERIES, size=QUERY_SIZE,
                                diameter=QUERY_DIAMETER,
                                semantics=Semantics.HOM, seed=5)
    return graph, config, queries


def _sweep(graph, config, queries):
    """Run every query on a fresh engine; return (results, seconds)."""
    with PriloStar.setup(graph, config) as engine:
        started = time.perf_counter()
        results = [engine.run(q) for q in queries]
        seconds = time.perf_counter() - started
    return results, seconds


def fault_recovery_study() -> dict:
    from dataclasses import replace

    graph, config, queries = _setup()
    chaos = ChaosPolicy(seed=CHAOS_SEED, fault_rate=FAULT_RATE,
                        kinds=FAULT_KINDS)

    truth, serial_seconds = _sweep(graph, config, queries)

    process = replace(config, executor="process", parallelism=2)
    base, base_seconds = _sweep(graph, process, queries)

    chaotic, chaos_seconds = _sweep(graph, replace(process, chaos=chaos),
                                    queries)
    serial_chaotic, serial_chaos_seconds = _sweep(
        graph, replace(config, chaos=chaos), queries)

    for label, run in (("process-chaos", chaotic),
                       ("serial-chaos", serial_chaotic),
                       ("process", base)):
        for reference, result in zip(truth, run):
            assert result.match_ball_ids == reference.match_ball_ids, (
                f"{label} diverged from the fault-free serial answers")
            assert result.verified_ids == reference.verified_ids

    injected = sum(r.metrics.faults.injected for r in chaotic)
    recovered = sum(r.metrics.faults.recovered for r in chaotic)
    overhead = ((chaos_seconds - base_seconds) / base_seconds
                if base_seconds > 0 else 0.0)
    serial_overhead = ((serial_chaos_seconds - serial_seconds)
                       / serial_seconds if serial_seconds > 0 else 0.0)
    return {
        "queries": NUM_QUERIES,
        "fault_rate": FAULT_RATE,
        "chaos_seed": CHAOS_SEED,
        "fault_kinds": list(FAULT_KINDS),
        "serial_seconds": serial_seconds,
        "serial_chaos_seconds": serial_chaos_seconds,
        "serial_overhead": serial_overhead,
        "process_seconds": base_seconds,
        "process_chaos_seconds": chaos_seconds,
        "recovery_overhead": overhead,
        "faults_injected": injected,
        "faults_recovered": recovered,
        "by_kind": _merge_by_kind(chaotic),
        "identical_answers": True,
    }


def _merge_by_kind(results) -> dict:
    merged: dict[str, int] = {}
    for result in results:
        for kind, count in result.metrics.faults.by_kind().items():
            merged[kind] = merged.get(kind, 0) + count
    return merged


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_fault_recovery_overhead(benchmark):
    study = benchmark.pedantic(fault_recovery_study, rounds=1, iterations=1)
    assert study["identical_answers"]
    assert study["faults_injected"] > 0, "the schedule never fired"
    assert study["recovery_overhead"] < MAX_OVERHEAD, (
        f"recovery overhead {study['recovery_overhead']:.1%} >= "
        f"{MAX_OVERHEAD:.0%} at a {FAULT_RATE:.0%} fault rate")


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_faults.json)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    args = parse_cli(argv)
    study = fault_recovery_study()

    widths = (16, 12, 12, 10)
    lines = [format_row(("configuration", "seconds", "overhead",
                         "faults"), widths)]
    lines.append(format_row(
        ("serial", f"{study['serial_seconds']:.3f}", "-", 0), widths))
    lines.append(format_row(
        ("serial+chaos", f"{study['serial_chaos_seconds']:.3f}",
         f"{study['serial_overhead']:.1%}",
         study["faults_injected"]), widths))
    lines.append(format_row(
        ("process", f"{study['process_seconds']:.3f}", "-", 0), widths))
    lines.append(format_row(
        ("process+chaos", f"{study['process_chaos_seconds']:.3f}",
         f"{study['recovery_overhead']:.1%}",
         study["faults_injected"]), widths))
    lines.append("")
    lines.append(f"injected={study['faults_injected']} "
                 f"recovered={study['faults_recovered']} "
                 f"by-kind={study['by_kind']} "
                 f"(rate={study['fault_rate']:.0%}, "
                 f"seed={study['chaos_seed']})")
    emit("fault_recovery", lines)

    assert study["recovery_overhead"] < MAX_OVERHEAD, (
        f"recovery overhead {study['recovery_overhead']:.1%} >= "
        f"{MAX_OVERHEAD:.0%}")

    if args.json:
        write_bench_json("faults", {
            "dataset": "slashdot", "scale": BENCH_SCALE,
            "semantics": "hom", **study})


if __name__ == "__main__":
    main()
