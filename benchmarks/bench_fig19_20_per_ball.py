"""Figs. 19-20: per-ball runtimes of BF15 and Twiglet3 by ball size.

The paper presents boxplots of per-ball pruning cost grouped by |V_B|;
here we emit the median per size bucket.  Shape: BF15's cost grows with
ball size on every dataset (subtree enumeration depends on degrees);
Twiglet3 grows mildly on the dense datasets and is flat on sparse DBLP.
"""

from _common import NUM_QUERIES, SNAP_DATASETS, bench_config, dataset, emit, format_row

from repro.workloads.experiments import pruning_study
from repro.workloads.stats import boxplot_summary


def bucket(size: int) -> str:
    if size < 50:
        return "<50"
    if size < 200:
        return "50-200"
    if size < 500:
        return "200-500"
    return ">=500"


BUCKETS = ("<50", "50-200", "200-500", ">=500")


def test_fig19_20_per_ball_runtimes(benchmark):
    config = bench_config()

    def collect():
        studies = {}
        for name in SNAP_DATASETS:
            ds = dataset(name)
            queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                        seed=10)
            studies[name] = pruning_study(ds, queries,
                                          methods=("bf", "twiglet"),
                                          config=config, combine=())
        return studies

    studies = benchmark.pedantic(collect, rounds=1, iterations=1)
    # Footnote-8 boxplot series: per size bucket, the five-number summary
    # (whisker / Q1 / median / Q3 / whisker) the paper plots.
    widths = (10, 10, 8, 10, 30, 30)
    lines = [format_row(("dataset", "|V_B|", "balls", "method",
                         "box (lo/Q1/med/Q3/hi) ms", "outliers"), widths)]
    for name, study in studies.items():
        grouped: dict[str, list] = {b: [] for b in BUCKETS}
        for record in study.balls:
            grouped[bucket(record.ball_size)].append(record)
        for b in BUCKETS:
            records = grouped[b]
            if not records:
                continue
            for method in ("bf", "twiglet"):
                box = boxplot_summary(
                    [r.costs[method] * 1e3 for r in records])
                lines.append(format_row(
                    (name, b, len(records), method,
                     f"{box.whisker_low:.2f}/{box.q1:.2f}/"
                     f"{box.median:.2f}/{box.q3:.2f}/"
                     f"{box.whisker_high:.2f}",
                     len(box.outliers)), widths))
    emit("fig19_20_per_ball_runtimes", lines)
    assert any(study.balls for study in studies.values())
