"""Fig. 10: average number of candidate balls after pruning negatives.

Bars per dataset and semantics: All (no pruning), BF15, Twiglet3, Path3,
and BF15 + Twiglet3.  Paper shape: BF prunes fewer than Twiglet/Path on
its own but strengthens Twiglet in combination; all methods are sound.
"""

import pytest

from _common import NUM_QUERIES, SNAP_DATASETS, bench_config, dataset, emit, format_row

from repro.graph.query import Semantics
from repro.workloads.experiments import pruning_study


@pytest.mark.parametrize("semantics", [Semantics.HOM, Semantics.SSIM])
def test_fig10_pruning_power(benchmark, semantics):
    config = bench_config()

    def collect():
        rows = []
        for name in SNAP_DATASETS:
            ds = dataset(name)
            queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                        semantics=semantics, seed=5)
            study = pruning_study(
                ds, queries, methods=("bf", "twiglet", "path"),
                config=config, combine=("bf", "twiglet"))
            rows.append((name, study))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (10, 8, 8, 10, 8, 14)
    lines = [format_row(("dataset", "All", "BF15", "Twiglet3", "Path3",
                         "BF15+Twiglet3"), widths)]
    for name, study in rows:
        lines.append(format_row(
            (name, study.candidates, study.remaining("bf"),
             study.remaining("twiglet"), study.remaining("path"),
             study.remaining("bf+twiglet")), widths))
        for method, counts in study.confusion.items():
            assert counts.fn == 0, f"{name}/{method} unsound"
        # Fig. 10 shape: the combination prunes at least as much as each
        # component, and every method prunes at least something... the
        # latter only when negatives exist at all.
        assert (study.remaining("bf+twiglet")
                <= min(study.remaining("bf"), study.remaining("twiglet")))
    emit(f"fig10_pruning_power_{semantics.value}", lines)
