"""Fig. 18: the LDBC business-intelligence workloads.

Per tested Table 5 workload: Prilo vs Prilo* time-to-all-positive-results
and the PPCR.  Paper shape: simple patterns (short paths) have PPCR >= 0.5
and the two frameworks tie (SSG degrades to RSG); selective patterns have
small PPCRs and Prilo* wins clearly -- "Prilo* further optimizes Prilo in
5 out of 10 queries".
"""

import pytest

from _common import bench_config, dataset, emit, format_row

from repro.graph.query import Semantics
from repro.workloads.experiments import ldbc_study


@pytest.mark.parametrize("semantics", [Semantics.HOM, Semantics.SSIM])
def test_fig18_ldbc_workloads(benchmark, semantics):
    ds = dataset("ldbc")
    config = bench_config()

    records = benchmark.pedantic(ldbc_study, args=(ds, semantics),
                                 kwargs={"config": config, "seed": 3},
                                 rounds=1, iterations=1)

    widths = (8, 8, 10, 10, 8, 12, 12, 12)
    lines = [format_row(("query", "cands", "positives", "PPCR", "mode",
                         "SSG(s)", "RSG(s)", "sched-spdup"), widths)]
    improved = 0
    for record in records:
        speedup = record.scheduling_speedup
        lines.append(format_row(
            (record.workload, record.candidates, record.positives,
             f"{record.ppcr:.2f}", record.mode,
             f"{record.ssg_seconds:.4f}", f"{record.rsg_seconds:.4f}",
             f"{min(speedup, 100):.1f}x"), widths))
        if speedup > 1.25:
            improved += 1
    lines.append(f"workloads clearly improved by Prilo*: {improved}/10 "
                 f"(paper: 5/10 under hom; the rest tie)")
    emit(f"fig18_ldbc_{semantics.value}", lines)

    assert len(records) == 10
    for record in records:
        # Shape: normal-case workloads (PPCR >= 0.5) use RSG ordering and
        # therefore tie; early-case ones are never slower.
        if record.ppcr >= 0.5:
            assert record.mode in ("normal", "rsg")
        if record.mode == "early" and record.positives:
            assert record.ssg_seconds <= record.rsg_seconds * 1.2 + 1e-9
