"""EXP-1 (Sec. 6.2): user-side costs.

The paper reports: preprocessing always < 0.25 s, total decryption < 0.5 s,
user -> SP messages of a few MB, SP -> user < 20 MB.  At our scale the
byte counts shrink with the candidate-ball counts; the shape to check is
preprocessing/decryption being a tiny fraction of the SP-side evaluation.
"""

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.workloads.experiments import user_side_costs


def test_exp1_user_side_costs(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=2)
    config = bench_config()

    records = benchmark.pedantic(user_side_costs, args=(ds, queries),
                                 kwargs={"config": config},
                                 rounds=1, iterations=1)

    widths = (8, 16, 16, 16, 16)
    lines = [format_row(("query", "preprocess(s)", "decrypt(s)",
                         "user->SP(B)", "SP->user(B)"), widths)]
    for i, record in enumerate(records):
        lines.append(format_row(
            (f"q{i}", f"{record.preprocessing_seconds:.4f}",
             f"{record.decryption_seconds:.4f}",
             record.user_to_sp_bytes, record.sp_to_user_bytes), widths))
        # Paper shape: both user-side phases stay sub-second.
        assert record.preprocessing_seconds < 1.0
        assert record.decryption_seconds < 1.0
    emit("exp1_user_side", lines)
