"""Table 4: candidate-ball statistics for random queries (default setting).

One row per (dataset, label alphabet) as in the paper; Slashdot_100 vs
Slashdot_64 etc.  The ssim variants use the 64-label graphs and produce
more candidate balls with larger sizes -- the shape the paper reports.
"""

from _common import NUM_QUERIES, SNAP_DATASETS, bench_config, dataset, emit, format_row

from repro.graph.query import Semantics
from repro.workloads.experiments import ball_statistics


def test_table4_ball_statistics(benchmark):
    config = bench_config()

    def collect():
        rows = []
        for name in SNAP_DATASETS:
            ds = dataset(name)
            for semantics in (Semantics.HOM, Semantics.SSIM):
                queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                            semantics=semantics, seed=1)
                row = ball_statistics(ds, queries, config)
                row["variant"] = f"{name}_{row['labels']}"
                rows.append(row)
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (14, 16, 10, 10, 10, 10, 10)
    lines = [format_row(("graph", "balls/query", "avg|V_B|", "std|V_B|",
                         "avg|E_B|", "std|E_B|", "maxdeg"), widths)]
    for row in rows:
        lines.append(format_row(
            (row["variant"], f"{row['avg_balls_per_query']:.0f}",
             f"{row['avg_ball_vertices']:.0f}",
             f"{row['std_ball_vertices']:.0f}",
             f"{row['avg_ball_edges']:.0f}",
             f"{row['std_ball_edges']:.0f}", row["max_degree"]), widths))
    emit("tab04_balls", lines)

    by_variant = {r["variant"]: r for r in rows}
    # Table 4 shape: the 64-label variants have more balls per query than
    # the |Sigma^H| variants (fewer labels -> more centers per label).
    for name in SNAP_DATASETS:
        hom_variant = next(v for v in by_variant if v.startswith(name)
                           and not v.endswith("_64"))
        assert (by_variant[f"{name}_64"]["avg_balls_per_query"]
                > by_variant[hom_variant]["avg_balls_per_query"])
