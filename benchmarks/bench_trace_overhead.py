"""Tracing overhead: the <3% bound behind ``--trace`` (DESIGN.md
section 10).

The observability layer's performance contract has two halves, both
measured on a PriloStar batch over slashdot:

(a) *Identity*: a traced run returns byte-identical answers to an
    untraced one -- spans observe the protocol, they never steer it.
(b) *Overhead*: the traced batch costs <= 3% more wall-clock than the
    untraced one (whose engine carries the inert ``NULL_TRACER``).  The
    per-span cost is one redaction check plus a list append, so the
    bound is generous; it exists to catch a future span landing inside
    a per-ball or per-CMM inner loop, where "one cheap append" times
    |balls| * |CMMs| stops being cheap.

Timings are min-of-N: the true tracing cost is milliseconds against a
multi-second batch, so single-shot numbers are scheduler noise.

Scale: slashdot at 0.2x the registry default, matching
``bench_batch_serving.py`` -- the numbers are relative costs of the
tracing layer, not paper figures.
"""

import time

from _common import (
    SCALE,
    bench_config,
    emit,
    format_row,
    parse_cli,
    write_bench_json,
)

from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine
from repro.graph.query import Semantics
from repro.observability import Tracer, audit_spans
from repro.workloads.datasets import load_dataset

BATCH = 8
DISTINCT_QUERIES = 4
QUERY_SIZE = 8
QUERY_DIAMETER = 3
BENCH_SCALE = 0.2 * SCALE
MAX_OVERHEAD = 0.03
REPEATS = 3


def _setup():
    ds = load_dataset("slashdot", scale=BENCH_SCALE)
    graph = ds.graph_for(Semantics.HOM)
    config = bench_config(radii=(QUERY_DIAMETER,))
    distinct = ds.random_queries(DISTINCT_QUERIES, size=QUERY_SIZE,
                                 diameter=QUERY_DIAMETER,
                                 semantics=Semantics.HOM, seed=5)
    queries = [distinct[i % DISTINCT_QUERIES] for i in range(BATCH)]
    return graph, config, queries


def _answer_key(result):
    return (result.candidate_ids,
            tuple(sorted(result.verified_ids)),
            tuple(sorted(result.match_ball_ids)),
            result.num_matches)


def _serve(graph, config, queries, tracer):
    """Serve the batch on a fresh engine; return (report, seconds).

    Engine setup is excluded from the clock: it is identical for the
    traced and untraced paths, and the bound is on the serving work the
    spans instrument."""
    engine = PriloStar.setup(graph, config, tracer=tracer)
    with QueryBatchEngine(engine) as server:
        started = time.perf_counter()
        report = server.serve(queries)
        seconds = time.perf_counter() - started
    return report, seconds


def trace_overhead_study() -> dict:
    graph, config, queries = _setup()

    untraced_times, traced_times = [], []
    for _ in range(REPEATS):
        untraced, seconds = _serve(graph, config, queries, None)
        untraced_times.append(seconds)
        tracer = Tracer()
        traced, seconds = _serve(graph, config, queries, tracer)
        traced_times.append(seconds)
        assert ([_answer_key(r) for r in traced.results]
                == [_answer_key(r) for r in untraced.results]), (
            "tracing changed the answers")

    assert tracer.spans, "traced batch produced no spans"
    audit = audit_spans(tracer.spans)
    assert audit.ok, [str(v) for v in audit.violations]

    untraced_seconds = min(untraced_times)
    traced_seconds = min(traced_times)
    overhead = ((traced_seconds - untraced_seconds) / untraced_seconds
                if untraced_seconds > 0 else 0.0)
    return {
        "batch": BATCH,
        "distinct_queries": DISTINCT_QUERIES,
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "trace_overhead": overhead,
        "spans": len(tracer.spans),
        "restricted_spans": audit.restricted_spans,
        "audit_ok": audit.ok,
        "identical_answers": True,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_trace_overhead(benchmark):
    study = benchmark.pedantic(trace_overhead_study, rounds=1,
                               iterations=1)
    assert study["identical_answers"]
    assert study["audit_ok"]
    assert study["trace_overhead"] <= MAX_OVERHEAD, (
        f"tracing overhead {study['trace_overhead']:.1%} > "
        f"{MAX_OVERHEAD:.0%}")


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_trace.json)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    args = parse_cli(argv)
    study = trace_overhead_study()

    widths = (22, 12, 12)
    lines = [format_row(("configuration", "seconds", "relative"), widths)]
    lines.append(format_row(
        ("batch (untraced)", f"{study['untraced_seconds']:.3f}", "-"),
        widths))
    lines.append(format_row(
        ("batch (traced)", f"{study['traced_seconds']:.3f}",
         f"+{study['trace_overhead']:.1%}"), widths))
    lines.append("")
    lines.append(
        f"{study['spans']} spans ({study['restricted_spans']} "
        f"restricted-scope), leakage audit ok, answers identical")
    emit("trace_overhead", lines)

    assert study["trace_overhead"] <= MAX_OVERHEAD, (
        f"tracing overhead {study['trace_overhead']:.1%} > "
        f"{MAX_OVERHEAD:.0%}")

    if args.json:
        write_bench_json("trace", {
            "dataset": "slashdot", "scale": BENCH_SCALE,
            "semantics": "hom", **study})


if __name__ == "__main__":
    main()
