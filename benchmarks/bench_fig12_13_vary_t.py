"""Figs. 12-13: BF_t with t in {5, 15, 25}.

Fig. 12: BF_t runtime grows with t until ~15 then saturates (fewer balls
bypass, more filters built).  Fig. 13: a larger t prunes more negatives
(bypassed balls are unprunable).
"""

from dataclasses import replace

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.workloads.experiments import pruning_study

T_VALUES = (5, 15, 25)


def test_fig12_13_vary_t(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=7)
    base = bench_config()

    def collect():
        outcomes = {}
        for t in T_VALUES:
            config = replace(base, bf=replace(base.bf, threshold_t=t))
            outcomes[t] = pruning_study(ds, queries, methods=("bf",),
                                        config=config, combine=())
        return outcomes

    outcomes = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (8, 14, 14)
    lines = [format_row(("t", "runtime(s)", "remaining"), widths)]
    remaining = {}
    for t in T_VALUES:
        study = outcomes[t]
        lines.append(format_row(
            (t, f"{study.total_cost['bf']:.3f}", study.remaining("bf")),
            widths))
        remaining[t] = study.remaining("bf")
        assert study.confusion["bf"].fn == 0
    emit("fig12_13_bf_vary_t", lines)

    # Fig. 13 shape: larger t never weakens pruning (fewer bypasses).
    assert remaining[25] <= remaining[15] <= remaining[5]
