"""Fig. 11: total runtimes of BF15 / Twiglet3 / Path3 and SSG vs RSG.

Paper shape: pruning-message runtimes are small; SSG's time for the Dealer
to hold all positives' results is up to an order of magnitude below RSG's;
Prilo* total (BF + Twiglet + SSG) beats Prilo (RSG).
"""

import pytest

from _common import NUM_QUERIES, SNAP_DATASETS, bench_config, dataset, emit, format_row

from repro.graph.query import Semantics
from repro.workloads.experiments import pruning_study, retrieval_study


@pytest.mark.parametrize("semantics", [Semantics.HOM, Semantics.SSIM])
def test_fig11_runtimes(benchmark, semantics):
    config = bench_config()

    def collect():
        rows = []
        for name in SNAP_DATASETS:
            ds = dataset(name)
            queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                        semantics=semantics, seed=6)
            prune = pruning_study(ds, queries,
                                  methods=("bf", "twiglet", "path"),
                                  config=config, combine=())
            sched = retrieval_study(ds, queries, k_values=(4,),
                                    config=config)
            rows.append((name, prune, sched))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (10, 10, 12, 10, 12, 12, 14, 12)
    lines = [format_row(("dataset", "BF15(s)", "Twiglet3(s)", "Path3(s)",
                         "SSG(s)", "RSG(s)", "Prilo*(s)", "Prilo(s)"),
                        widths)]
    for name, prune, sched in rows:
        ssg = sum(r.ssg_all_positives for r in sched.records)
        rsg = sum(r.rsg_all_positives for r in sched.records)
        bf = prune.total_cost["bf"]
        twiglet = prune.total_cost["twiglet"]
        path = prune.total_cost["path"]
        # Fig. 11's composition: Prilo* = BF + Twiglet + SSG; Prilo = RSG.
        prilo_star = bf + twiglet + ssg
        prilo = rsg
        lines.append(format_row(
            (name, f"{bf:.3f}", f"{twiglet:.3f}", f"{path:.3f}",
             f"{ssg:.4f}", f"{rsg:.4f}", f"{prilo_star:.3f}",
             f"{prilo:.3f}"), widths))
        # SSG wins on aggregate (individual queries can tie when a single
        # expensive positive dominates both schedules).
        assert ssg <= rsg * 1.2 + 1e-9
    emit(f"fig11_runtimes_{semantics.value}", lines)
