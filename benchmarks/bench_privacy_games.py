"""Empirical privacy games (Sec. 5 / App. B as measurements).

Quantifies adversary advantages against the deployed mechanisms:

* the paper's within-front SSG game (Eq. 3) -- must sit at 1/2;
* the positional-prior enrichment a front-guesser extracts (the paper's
  Eq. 4 tail prior made explicit) -- a documented reproduction finding;
* CPA distinguishers against CGBE ciphertexts -- must sit at 1/2.
"""

from _common import emit, format_row

from repro.analysis.adversary import (
    CGBEDistinguisher,
    SequenceAdversary,
    cpa_game,
    sequence_balanced_accuracy,
    within_front_accuracy,
)
from repro.analysis.bounds import twiglet_attack_probability


def test_privacy_games(benchmark):
    def run_games():
        rows = []
        rows.append(("ssg/within-front (Eq.3)", within_front_accuracy(
            num_balls=80, theta=0.15, k=4, rounds=60, seed=1), 0.5))
        rows.append(("ssg/front-guess-25%", sequence_balanced_accuracy(
            SequenceAdversary.front_guesser(0.25), num_balls=80,
            theta=0.15, k=4, rounds=60, seed=1), None))
        rows.append(("ssg/coin", sequence_balanced_accuracy(
            SequenceAdversary.coin_flipper(2), num_balls=80, theta=0.15,
            k=4, rounds=40, seed=2), 0.5))
        for distinguisher in (CGBEDistinguisher.magnitude(),
                              CGBEDistinguisher.parity(),
                              CGBEDistinguisher.low_bits()):
            outcome = cpa_game(distinguisher, trials=500, seed=5)
            rows.append((f"cgbe/{outcome.name}", outcome.accuracy, 0.5))
        return rows

    rows = benchmark.pedantic(run_games, rounds=1, iterations=1)
    widths = (26, 12, 22)
    lines = [format_row(("game", "accuracy", "analytical ceiling"),
                        widths)]
    for name, accuracy, ceiling in rows:
        ceiling_text = (f"{ceiling}" if ceiling is not None
                        else "enriched prior (Eq.4)")
        lines.append(format_row((name, f"{accuracy:.3f}", ceiling_text),
                                widths))
        if ceiling is not None:
            assert abs(accuracy - ceiling) < 0.09, f"{name} leaks"
    lines.append("")
    lines.append("Prop. 8 reference bounds: "
                 + ", ".join(f"n={n}: {twiglet_attack_probability(n):.2e}"
                             for n in (1, 8, 32)))
    emit("privacy_games", lines)
