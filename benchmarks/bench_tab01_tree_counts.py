"""Table 1: maximum numbers of 2-label binary trees per topology.

Regenerates the closed-form counts for kappa = min(|Sigma_Q|, d_max) and
cross-checks them against brute-force enumeration on a complete ball, then
benchmarks the enumeration itself.
"""

from _common import emit, format_row

from repro.core.encoding import LabelCodec
from repro.core.trees import (
    BF_TOPOLOGIES,
    enumerate_center_tree_encodings,
    max_tree_count,
)
from repro.graph.labeled_graph import LabeledGraph


def star_of_stars(kappa: int) -> tuple[LabeledGraph, int]:
    """A depth-2 complete labeled tree realizing the Table 1 maxima:
    a center connected to one vertex of each non-center label, each of
    which is connected to vertices of all remaining labels."""
    labels = {0: "L0"}
    edges = []
    next_id = 1
    children = {}
    for code in range(1, kappa):
        labels[next_id] = f"L{code}"
        edges.append((0, next_id))
        children[code] = next_id
        next_id += 1
    for code, child in children.items():
        for other in range(1, kappa):
            if other == code:
                continue
            labels[next_id] = f"L{other}"
            edges.append((child, next_id))
            next_id += 1
    return LabeledGraph.from_edges(labels, edges), 0


def test_table1_counts(benchmark):
    kappa = 7
    graph, center = star_of_stars(kappa)
    codec = LabelCodec.from_alphabet(graph.alphabet)

    def enumerate_all():
        return {
            topology.name: enumerate_center_tree_encodings(
                graph, center, codec, (topology,))[0]
            for topology in BF_TOPOLOGIES
        }

    observed = benchmark(enumerate_all)
    widths = (10, 26, 22)
    lines = [format_row(("topology", "Table 1 formula (k=7)",
                         "enumerated (complete)"), widths)]
    for topology in BF_TOPOLOGIES:
        formula = max_tree_count(topology, kappa)
        count = len(observed[topology.name])
        lines.append(format_row((topology.name, formula, count), widths))
        assert count == formula, (
            f"enumeration disagrees with Table 1 for {topology.name}")
    emit("tab01_tree_counts", lines)
