"""Ablation: sub-iso vs hom.

Sec. 6.1 omits sub-iso queries from the evaluation "as the performance is
similar to that of hom queries."  This ablation *tests* that omission:
identical query structures are run under both semantics and the candidate
counts, CMM counts, and evaluation times compared.  Sub-iso enumerates a
subset of hom's CMMs (injectivity filter), so it can only be equal or
slightly cheaper -- which is exactly what "similar" should mean.
"""

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.framework.prilo_star import PriloStar
from repro.graph.query import Query, Semantics


def test_ablation_subiso_vs_hom(benchmark):
    ds = dataset("slashdot")
    hom_queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                    seed=15, semantics=Semantics.HOM)
    iso_queries = [Query(pattern=q.pattern, semantics=Semantics.SUB_ISO,
                         vertex_order=q.vertex_order)
                   for q in hom_queries]
    config = bench_config()

    def run_both():
        engine = PriloStar.setup(ds.graph, config)
        return ([engine.run(q) for q in hom_queries],
                [engine.run(q) for q in iso_queries])

    hom_results, iso_results = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)

    widths = (10, 8, 12, 10, 12)
    lines = [format_row(("semantics", "query", "candidates", "cmms",
                         "eval(s)"), widths)]
    for name, results in (("hom", hom_results), ("sub-iso", iso_results)):
        for i, result in enumerate(results):
            lines.append(format_row(
                (name, f"q{i}", len(result.candidate_ids),
                 result.metrics.cmms_enumerated,
                 f"{result.metrics.timings.evaluation:.3f}"), widths))
    emit("abl_subiso_vs_hom", lines)

    for hom_result, iso_result in zip(hom_results, iso_results):
        # Same candidate balls (label selection is semantics-independent).
        assert hom_result.candidate_ids == iso_result.candidate_ids
        # Injectivity can only shrink the CMM space.
        assert (iso_result.metrics.cmms_enumerated
                <= hom_result.metrics.cmms_enumerated)
        # Sub-iso answers are a subset of hom answers per ball.
        for ball_id, found in iso_result.matches.items():
            assert ball_id in hom_result.matches or not found
