"""Figs. 14-15: Twiglet_h with h in {3, 4, 5}.

Fig. 14: runtime grows with h (deeper DFS, bigger tables).
Fig. 15: a larger h prunes at least as many negatives (the i-twiglet
families are nested), with diminishing returns in practice.

The paper runs this at d_Q = 4; at our scale the d_Q = 3 balls already
contain the depth needed by h <= 5 twiglets, so we keep the default
workload and note the substitution in EXPERIMENTS.md.
"""

from dataclasses import replace

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.workloads.experiments import pruning_study

H_VALUES = (3, 4, 5)


def test_fig14_15_vary_h(benchmark):
    ds = dataset("dblp")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=8)
    base = bench_config()

    def collect():
        outcomes = {}
        for h in H_VALUES:
            config = replace(base, twiglet_h=h)
            outcomes[h] = pruning_study(ds, queries, methods=("twiglet",),
                                        config=config, combine=())
        return outcomes

    outcomes = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (8, 14, 14)
    lines = [format_row(("h", "runtime(s)", "remaining"), widths)]
    runtime = {}
    remaining = {}
    for h in H_VALUES:
        study = outcomes[h]
        runtime[h] = study.total_cost["twiglet"]
        remaining[h] = study.remaining("twiglet")
        lines.append(format_row(
            (h, f"{runtime[h]:.3f}", remaining[h]), widths))
        assert study.confusion["twiglet"].fn == 0
    emit("fig14_15_twiglet_vary_h", lines)

    # Fig. 15 shape: larger h prunes at least as much.
    assert remaining[5] <= remaining[4] <= remaining[3]
    # Fig. 14 shape: larger h costs at least as much (with slack for noise).
    assert runtime[5] >= runtime[3] * 0.8
