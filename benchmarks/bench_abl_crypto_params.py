"""Ablation: CGBE parameter sizes.

The paper fixes a 4096-bit public value with 32-bit q/r (Sec. 6.1).  This
sweep measures what that costs relative to smaller moduli with identical
semantics, and shows the chunking machinery engaging when the overflow
budget no longer fits one Alg. 2 product per ciphertext.
"""

from _common import emit, format_row

from repro.core.encoding import encrypt_query_matrix
from repro.core.enumeration import enumerate_cmms
from repro.core.verification import decide_ball, verification_plan, verify_ball
from repro.crypto.cgbe import CGBE
from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_graph, fig3_query

PARAMS = ((512, 16), (1024, 32), (2048, 32), (4096, 32))


def test_ablation_crypto_params(benchmark):
    query = fig3_query()
    graph = fig3_graph()
    ball = extract_ball(graph, "v6", query.diameter, ball_id=0)
    cmms = enumerate_cmms(query, ball).cmms

    import time

    rows = []
    schemes = {}
    for modulus_bits, q_bits in PARAMS:
        # Key generation is a one-off cost; timed separately from the
        # per-ball verification it gates.
        schemes[modulus_bits] = CGBE.generate(
            modulus_bits=modulus_bits, q_bits=q_bits, r_bits=q_bits, seed=1)

    def verify_with(modulus_bits: int):
        cgbe = schemes[modulus_bits]
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        verdict = verify_ball(cgbe.params, enc, cgbe.encrypt_one(), ball,
                              cmms, plan)
        return cgbe, plan, verdict

    for modulus_bits, q_bits in PARAMS:
        start = time.perf_counter()
        cgbe, plan, verdict = verify_with(modulus_bits)
        elapsed = time.perf_counter() - start
        assert decide_ball(cgbe, verdict)  # same answer at every size
        rows.append((modulus_bits, q_bits, plan.summable,
                     plan.chunks_per_item, elapsed))

    # Benchmark the paper's exact parameter point.
    benchmark(lambda: verify_with(4096))

    widths = (10, 8, 10, 8, 12)
    lines = [format_row(("modulus", "q bits", "summable", "chunks",
                         "verify(s)"), widths)]
    for modulus_bits, q_bits, summable, chunks, elapsed in rows:
        lines.append(format_row(
            (modulus_bits, q_bits, summable, chunks, f"{elapsed:.4f}"),
            widths))
    emit("abl_crypto_params", lines)

    # The 512-bit point cannot hold 20 x 32-bit factors -> chunked mode.
    assert rows[0][2] is False or rows[0][3] >= 1
    assert rows[3][2] is True  # the paper's point sums exactly
