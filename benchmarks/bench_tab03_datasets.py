"""Table 3: dataset statistics (generated stand-ins vs paper figures)."""

from _common import SNAP_DATASETS, dataset, emit, format_row

from repro.workloads.experiments import dataset_statistics


def test_table3_dataset_statistics(benchmark):
    rows = benchmark(lambda: [dataset_statistics(dataset(name))
                              for name in SNAP_DATASETS])
    widths = (10, 10, 10, 8, 8, 14, 14)
    lines = [format_row(("graph", "|V_G|", "|E_G|", "|S^H|", "|S^S|",
                         "paper |V_G|", "paper |E_G|"), widths)]
    for row in rows:
        lines.append(format_row(
            (row["name"], row["vertices"], row["edges"],
             row["hom_labels"], row["ssim_labels"],
             row["paper_vertices"], row["paper_edges"]), widths))
        assert row["vertices"] > 0 and row["edges"] > 0
    # Table 3 shape: Twitter is the densest, DBLP the sparsest.
    by_name = {r["name"]: r["edge_vertex_ratio"] for r in rows}
    assert by_name["twitter"] > by_name["slashdot"] > by_name["dblp"]
    emit("tab03_datasets", lines)
