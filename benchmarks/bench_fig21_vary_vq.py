"""Fig. 21: BF15 and Twiglet3 runtimes on Twitter when |V_Q| varies.

Paper shape: BF15's runtime increases slightly with |V_Q| (larger Sigma_Q
means more distinct neighbor labels to enumerate); Twiglet3's increases
clearly (both |V_Q| and |Sigma_Q| enlarge the tables Alg. 5 aggregates).
"""

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.workloads.experiments import pruning_study

VQ_VALUES = (6, 8, 10)


def test_fig21_vary_vq(benchmark):
    ds = dataset("twitter")
    config = bench_config()

    def collect():
        outcomes = {}
        for size in VQ_VALUES:
            queries = ds.random_queries(NUM_QUERIES, size=size, diameter=3,
                                        seed=11)
            outcomes[size] = pruning_study(ds, queries,
                                           methods=("bf", "twiglet"),
                                           config=config, combine=())
        return outcomes

    outcomes = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (8, 10, 14, 18)
    lines = [format_row(("|V_Q|", "balls", "BF15 (s)", "Twiglet3 (s)"),
                        widths)]
    twiglet_cost = {}
    for size in VQ_VALUES:
        study = outcomes[size]
        twiglet_cost[size] = study.total_cost["twiglet"] / max(
            study.candidates, 1)
        lines.append(format_row(
            (size, study.candidates,
             f"{study.total_cost['bf']:.3f}",
             f"{study.total_cost['twiglet']:.3f}"), widths))
    emit("fig21_vary_vq", lines)

    # Shape: per-ball twiglet cost does not shrink as queries grow.
    assert twiglet_cost[10] >= twiglet_cost[6] * 0.5
