"""Figs. 16-17: SSG behaviour when the number of Players k varies.

Fig. 16: speedup (RSG/SSG, capped at 100 as in the paper) against PPCR for
k in {4, 8, 16} -- for small PPCRs the speedup *decreases* as k grows
(each player's share shrinks until the single positive's own cost
dominates), while at larger PPCRs it is insensitive to k.  Fig. 17: SSG's
absolute time never grows with k.

Both semantics run; the ssim workloads (64-label graphs, uniform per-ball
verification cost) exhibit the paper's shape most cleanly, exactly as the
paper's ssim panels do.
"""

from statistics import mean

import pytest

from _common import NUM_QUERIES, SNAP_DATASETS, bench_config, dataset, emit, format_row

from repro.graph.query import Semantics
from repro.workloads.experiments import retrieval_study

K_VALUES = (4, 8, 16)


@pytest.mark.parametrize("semantics", [Semantics.HOM, Semantics.SSIM])
def test_fig16_17_vary_k(benchmark, semantics):
    config = bench_config()

    def collect():
        studies = {}
        for name in SNAP_DATASETS:
            ds = dataset(name)
            queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                        semantics=semantics, seed=9)
            studies[name] = retrieval_study(ds, queries, k_values=K_VALUES,
                                            config=config)
        return studies

    studies = benchmark.pedantic(collect, rounds=1, iterations=1)
    widths = (10, 6, 8, 10, 12, 12)
    lines = [format_row(("dataset", "k", "PPCR", "speedup",
                         "SSG(s)", "RSG(s)"), widths)]
    speedup_by_k: dict[int, list[float]] = {k: [] for k in K_VALUES}
    ssg_by_k: dict[int, list[float]] = {k: [] for k in K_VALUES}
    for name, study in studies.items():
        for record in study.records:
            speedup = min(record.speedup, 100.0)  # the paper's cap
            lines.append(format_row(
                (name, record.k, f"{record.ppcr:.2f}", f"{speedup:.1f}x",
                 f"{record.ssg_all_positives:.4f}",
                 f"{record.rsg_all_positives:.4f}"), widths))
            if record.ppcr < 0.3:
                speedup_by_k[record.k].append(speedup)
            ssg_by_k[record.k].append(record.ssg_all_positives)
    lines.append("mean small-PPCR speedup per k: " + ", ".join(
        f"k={k}: {mean(v):.1f}x" if v else f"k={k}: n/a"
        for k, v in speedup_by_k.items()))
    emit(f"fig16_17_vary_k_{semantics.value}", lines)

    # Fig. 17 shape: more players never slow SSG down on average.
    means = {k: mean(v) for k, v in ssg_by_k.items()}
    assert means[16] <= means[4] * 1.1
    # Fig. 16 shape (ssim panel): small-PPCR speedup shrinks with k.
    if semantics is Semantics.SSIM and speedup_by_k[4]:
        assert mean(speedup_by_k[4]) >= mean(speedup_by_k[16]) * 0.9
