"""Ablation: candidate-label selection strategy (Alg. 3 line 2).

The paper's Player picks the query label *maximizing* the number of
candidate balls ("opt: choose label l").  Props. 1-2 make any label
choice correct, so the natural ablation is the opposite extreme: the
*least* frequent label, which minimizes SP work per query.  Both must
return identical answers; the trade-off is candidates-to-evaluate vs the
risk of a label so rare the workload degenerates.
"""

from dataclasses import replace

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.framework.prilo_star import PriloStar


def test_ablation_label_strategy(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=12)
    base = bench_config()

    def run_both():
        outcomes = {}
        for strategy in ("max", "min"):
            engine = PriloStar.setup(
                ds.graph, replace(base, label_strategy=strategy))
            outcomes[strategy] = [engine.run(q) for q in queries]
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    widths = (10, 8, 12, 12, 12)
    lines = [format_row(("strategy", "query", "candidates", "matches",
                         "eval(s)"), widths)]
    for strategy, results in outcomes.items():
        for i, result in enumerate(results):
            lines.append(format_row(
                (strategy, f"q{i}", len(result.candidate_ids),
                 result.num_matches,
                 f"{result.metrics.timings.evaluation:.3f}"), widths))
    emit("abl_label_strategy", lines)

    # Correctness is label-choice independent (Props. 1-2): the *set of
    # distinct matching subgraphs* is identical.  Per-ball counts may
    # differ because the same match can appear in several balls (the
    # paper's "duplicated matches").
    def images(result):
        return {frozenset(m.vertices())
                for found in result.matches.values() for m in found}

    for max_result, min_result in zip(outcomes["max"], outcomes["min"]):
        assert images(max_result) == images(min_result)
        # 'min' never inspects more balls than 'max'.
        assert (len(min_result.candidate_ids)
                <= len(max_result.candidate_ids))
