"""Table 2: the 3-twiglet table T(u1) of the Fig. 3 query.

Regenerates the table's rows (shape column + existence column) and
benchmarks the user-side encrypted-table construction.
"""

from _common import emit, format_row

from repro.core.twiglets import (
    all_twiglet_shapes,
    build_twiglet_tables,
    twiglets_from,
)
from repro.crypto.cgbe import CGBE
from repro.graph.generators import fig3_query


def test_table2_twiglet_table(benchmark):
    query = fig3_query()
    cgbe = CGBE.generate(modulus_bits=1024, q_bits=16, r_bits=16, seed=2)

    tables = benchmark(build_twiglet_tables, cgbe, query, 3)

    u1_table = next(t for t in tables if t.start_label == "B")
    present = twiglets_from(query.pattern, "u1", 3, query.alphabet)
    widths = (22, 12, 12)
    lines = [format_row(("3-twiglet t in T(u1)", "plaintext", "meaning"),
                        widths)]
    for key, ct in zip(u1_table.keys, u1_table.ciphertexts):
        exists = key in present
        # Table 2 encodes "exists" as plaintext 0 (the ciphertext carries
        # the factor q); "not exists" as 1.
        lines.append(format_row(
            (key.render().replace("'", ""), 0 if exists else 1,
             "exists" if exists else "not exists"), widths))
        assert cgbe.has_factor_q(ct) == exists
    emit("tab02_twiglet_table", lines)

    shapes = all_twiglet_shapes("B", query.alphabet, 3)
    assert len(shapes) == 9  # exactly Table 2's nine rows
